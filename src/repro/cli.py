"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``     -- build an index on a synthetic workload, run a query, show
                  the counted costs (the quickest way to see the library).
* ``stats``    -- Table 2-style statistics for one of the four workloads.
* ``compare``  -- build several indexes on one workload and print the
                  paper-style cost comparison for MRQ and MkNNQ.
* ``batch``    -- compare sequential vs batch (vectorized multi-query)
                  throughput for the table indexes on one workload.
* ``indexes``  -- list every available index with its category.
"""

from __future__ import annotations

import argparse
import sys

from . import ALL_INDEXES
from .bench import (
    BATCH_INDEX_NAMES,
    format_table,
    make_workload,
    measure_build,
    run_batch_comparison,
    run_knn_queries,
    run_range_queries,
    shared_pivots,
)
from .core.dataset import DATASET_FACTORIES, dataset_statistics

__all__ = ["main"]

_CATEGORIES = {
    "AESA": "table",
    "LAESA": "table",
    "EPT": "table",
    "EPT*": "table",
    "CPT": "table (disk objects)",
    "BKT": "tree (discrete)",
    "FQT": "tree (discrete)",
    "FQA": "tree (discrete)",
    "VPT": "tree",
    "MVPT": "tree",
    "PM-tree": "external",
    "Omni-seq": "external",
    "OmniB+": "external",
    "OmniR-tree": "external",
    "M-index": "external",
    "M-index*": "external",
    "SPB-tree": "external",
    "DEPT": "external (extension)",
    "M-tree": "external (compact baseline)",
}


def _cmd_indexes(args) -> int:
    rows = [
        {"Index": name, "Category": _CATEGORIES.get(name, "?")}
        for name in ALL_INDEXES
    ]
    print(format_table(rows, title="Available indexes", first_column="Index"))
    return 0


def _cmd_stats(args) -> int:
    workload = make_workload(args.dataset, n=args.n, n_queries=1)
    stats = dataset_statistics(workload.dataset)
    print(format_table([stats.row()], title="Dataset statistics"))
    return 0


def _cmd_demo(args) -> int:
    workload = make_workload(args.dataset, n=args.n, n_queries=1)
    pivots = shared_pivots(workload, args.pivots)
    result = measure_build(args.index, workload, pivots)
    print(
        f"built {args.index} on {args.dataset} (n={args.n}): "
        f"{result.compdists} compdists, {result.page_accesses} PA, "
        f"{result.seconds:.2f}s"
    )
    q = workload.queries[0]
    radius = workload.radius_for(0.16)
    cost = run_range_queries(result.index, [q], radius)
    hits = result.index.range_query(q, radius)
    print(
        f"MRQ(q, r=16%sel): {len(hits)} answers, "
        f"{cost.compdists:.0f} compdists, {cost.page_accesses:.0f} PA"
    )
    cost = run_knn_queries(result.index, [q], args.k)
    nearest = result.index.knn_query(q, args.k)
    print(
        f"MkNNQ(q, k={args.k}): nearest distance {nearest[0].distance:.3f}, "
        f"{cost.compdists:.0f} compdists, {cost.page_accesses:.0f} PA"
    )
    return 0


def _built_indexes_for(args, workload):
    """Validate the requested index names and build each one.

    Shared by ``compare`` and ``batch``: returns ``[(name, BuildResult)]``,
    printing a skip line for discrete-only indexes on continuous data, or
    ``None`` after reporting an unknown index name.
    """
    pivots = shared_pivots(workload, args.pivots)
    built = []
    for name in args.indexes:
        if name not in ALL_INDEXES:
            print(f"unknown index {name!r}; see `python -m repro indexes`")
            return None
        if name in ("BKT", "FQT", "FQA") and not workload.dataset.distance.is_discrete:
            print(f"skipping {name}: requires a discrete distance")
            continue
        built.append((name, measure_build(name, workload, pivots)))
    return built


def _cmd_compare(args) -> int:
    workload = make_workload(args.dataset, n=args.n, n_queries=args.queries)
    radius = workload.radius_for(0.16)
    built = _built_indexes_for(args, workload)
    if built is None:
        return 2
    rows = []
    for name, build in built:
        range_cost = run_range_queries(build.index, workload.queries, radius)
        knn_cost = run_knn_queries(build.index, workload.queries, args.k)
        rows.append(
            {
                "Index": name,
                "Build comp": build.compdists,
                "MRQ comp": round(range_cost.compdists, 1),
                "MRQ PA": round(range_cost.page_accesses, 1),
                "kNN comp": round(knn_cost.compdists, 1),
                "kNN PA": round(knn_cost.page_accesses, 1),
            }
        )
    print(
        format_table(
            rows,
            title=f"{args.dataset} (n={args.n}), r=16% selectivity, k={args.k}",
            first_column="Index",
        )
    )
    return 0


def _cmd_batch(args) -> int:
    workload = make_workload(args.dataset, n=args.n, n_queries=args.queries)
    radius = workload.radius_for(0.16)
    built = _built_indexes_for(args, workload)
    if built is None:
        return 2
    rows = []
    for _name, build in built:
        rows.append(
            run_batch_comparison(
                build.index, workload.queries, radius, args.k, repeats=args.repeats
            )
        )
    print(
        format_table(
            rows,
            title=(
                f"batch vs sequential, {args.dataset} (n={args.n}, "
                f"{len(workload.queries)} queries), r=16% sel, k={args.k}"
            ),
            first_column="Index",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Pivot-based metric indexing (VLDB 2017 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("indexes", help="list available indexes")
    p.set_defaults(func=_cmd_indexes)

    p = sub.add_parser("stats", help="dataset statistics (Table 2)")
    p.add_argument("dataset", choices=sorted(DATASET_FACTORIES))
    p.add_argument("--n", type=int, default=2000)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("demo", help="build one index and run queries")
    p.add_argument("--dataset", choices=sorted(DATASET_FACTORIES), default="Words")
    p.add_argument("--index", default="MVPT")
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--pivots", type=int, default=5)
    p.add_argument("--k", type=int, default=10)
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser("compare", help="compare indexes on one workload")
    p.add_argument("--dataset", choices=sorted(DATASET_FACTORIES), default="Words")
    p.add_argument(
        "--indexes",
        nargs="+",
        default=["LAESA", "MVPT", "SPB-tree", "M-index*"],
    )
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--pivots", type=int, default=5)
    p.add_argument("--queries", type=int, default=5)
    p.add_argument("--k", type=int, default=10)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "batch", help="sequential vs batch multi-query throughput (table indexes)"
    )
    p.add_argument("--dataset", choices=sorted(DATASET_FACTORIES), default="LA")
    p.add_argument("--indexes", nargs="+", default=list(BATCH_INDEX_NAMES))
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--pivots", type=int, default=5)
    p.add_argument("--queries", type=int, default=16)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--repeats", type=int, default=3)
    p.set_defaults(func=_cmd_batch)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
