"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``     -- build an index on a synthetic workload, run a query, show
                  the counted costs (the quickest way to see the library).
* ``stats``    -- Table 2-style statistics for one of the four workloads.
* ``compare``  -- build several indexes on one workload and print the
                  paper-style cost comparison for MRQ and MkNNQ.
* ``batch``    -- compare sequential vs batch (vectorized multi-query)
                  throughput for the batch-capable indexes (tables via the
                  shared query-pivot matrix, trees via the batch frontier
                  engine) on one workload.
* ``snapshot`` -- build an index and save it to disk (or inspect an
                  existing snapshot file) for instant restores.
* ``serve``    -- run the query service (snapshot restore, LRU result
                  cache, micro-batching dispatcher) against a stream of
                  concurrent single-query requests and report throughput.
                  Repeat ``--snapshot`` (or point it at a ``.catalog.json``
                  manifest) to host an index catalog with cost-based
                  planner routing.
* ``plan``     -- build several indexes on one workload, calibrate the
                  query planner's cost models, and print the explain
                  tables (predicted vs measured cost per member).
* ``cluster``  -- spawn a router + N backend serve processes (shard
                  scatter-gather or replica load-balancing) from a split
                  manifest or a single snapshot.
* ``indexes``  -- list every available index with its category.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from . import ALL_INDEXES
from .bench import (
    BATCH_INDEX_NAMES,
    format_table,
    make_workload,
    measure_build,
    run_batch_comparison,
    run_knn_queries,
    run_range_queries,
    shared_pivots,
)
from .core.dataset import DATASET_FACTORIES, dataset_statistics
from .service import (
    IndexCatalog,
    QueryPlanner,
    QueryService,
    is_catalog_manifest,
    load_index,
    save_index,
    snapshot_info,
)

__all__ = ["main"]

_CATEGORIES = {
    "AESA": "table",
    "LAESA": "table",
    "EPT": "table",
    "EPT*": "table",
    "CPT": "table (disk objects)",
    "BKT": "tree (discrete)",
    "FQT": "tree (discrete)",
    "FQA": "tree (discrete)",
    "VPT": "tree",
    "MVPT": "tree",
    "PM-tree": "external",
    "Omni-seq": "external",
    "OmniB+": "external",
    "OmniR-tree": "external",
    "M-index": "external",
    "M-index*": "external",
    "SPB-tree": "external",
    "DEPT": "external (extension)",
    "M-tree": "external (compact baseline)",
}


def _cmd_indexes(args) -> int:
    rows = [
        {"Index": name, "Category": _CATEGORIES.get(name, "?")}
        for name in ALL_INDEXES
    ]
    print(format_table(rows, title="Available indexes", first_column="Index"))
    return 0


def _cmd_stats(args) -> int:
    if args.dataset.startswith(("http://", "https://")):
        return _remote_stats(args.dataset, args.metrics)
    if args.dataset not in DATASET_FACTORIES:
        print(
            f"unknown target {args.dataset!r}: expected a dataset name "
            f"({', '.join(sorted(DATASET_FACTORIES))}) or a server URL "
            "(http://host:port)"
        )
        return 2
    workload = make_workload(args.dataset, n=args.n, n_queries=1)
    stats = dataset_statistics(workload.dataset)
    print(format_table([stats.row()], title="Dataset statistics"))
    return 0


def _remote_stats(url: str, show_metrics: bool) -> int:
    """Fetch and print a running server's /stats (or /metrics) payload."""
    from urllib.parse import urlsplit

    from .service.http import ServiceClient, ServiceClientError

    parts = urlsplit(url)
    if parts.hostname is None:
        print(f"cannot parse host from {url!r}")
        return 2
    with ServiceClient(
        host=parts.hostname, port=parts.port or 80, timeout=10.0
    ) as client:
        try:
            if show_metrics:
                sys.stdout.write(client.metrics_text())
            else:
                print(json.dumps(client.stats(), indent=2, sort_keys=True))
        except BrokenPipeError:
            # stdout's reader went away (`repro stats URL | head`) -- the
            # unix convention is a quiet exit, not a traceback; devnull
            # absorbs the interpreter's shutdown flush of the dead pipe
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0
        except (ServiceClientError, OSError) as exc:
            print(f"cannot fetch {'/metrics' if show_metrics else '/stats'} from {url}: {exc}")
            return 1
    return 0


def _cmd_demo(args) -> int:
    workload = make_workload(args.dataset, n=args.n, n_queries=1)
    pivots = shared_pivots(workload, args.pivots)
    result = measure_build(args.index, workload, pivots)
    print(
        f"built {args.index} on {args.dataset} (n={args.n}): "
        f"{result.compdists} compdists, {result.page_accesses} PA, "
        f"{result.seconds:.2f}s"
    )
    q = workload.queries[0]
    radius = workload.radius_for(0.16)
    cost = run_range_queries(result.index, [q], radius)
    hits = result.index.range_query(q, radius)
    print(
        f"MRQ(q, r=16%sel): {len(hits)} answers, "
        f"{cost.compdists:.0f} compdists, {cost.page_accesses:.0f} PA"
    )
    cost = run_knn_queries(result.index, [q], args.k)
    nearest = result.index.knn_query(q, args.k)
    print(
        f"MkNNQ(q, k={args.k}): nearest distance {nearest[0].distance:.3f}, "
        f"{cost.compdists:.0f} compdists, {cost.page_accesses:.0f} PA"
    )
    return 0


def _bounds_overrides(args) -> dict:
    """``{"bounds": ...}`` when ``--bounds`` was given, else nothing.

    ``--bounds ptolemaic`` on a non-Ptolemaic metric fails at build time
    with the staged pruner's ValueError, which the commands surface.
    """
    bounds = getattr(args, "bounds", None)
    return {"bounds": bounds} if bounds else {}


def _built_indexes_for(args, workload):
    """Validate the requested index names and build each one.

    Shared by ``compare`` and ``batch``: returns ``[(name, BuildResult)]``,
    printing a skip line for discrete-only indexes on continuous data, or
    ``None`` after reporting an unknown index name.
    """
    pivots = shared_pivots(workload, args.pivots)
    overrides = _bounds_overrides(args)
    built = []
    for name in args.indexes:
        if name not in ALL_INDEXES:
            print(f"unknown index {name!r}; see `python -m repro indexes`")
            return None
        if name in ("BKT", "FQT", "FQA") and not workload.dataset.distance.is_discrete:
            print(f"skipping {name}: requires a discrete distance")
            continue
        try:
            built.append((name, measure_build(name, workload, pivots, **overrides)))
        except ValueError as exc:
            print(f"cannot build {name}: {exc}")
            return None
    return built


def _cmd_compare(args) -> int:
    workload = make_workload(args.dataset, n=args.n, n_queries=args.queries)
    radius = workload.radius_for(0.16)
    built = _built_indexes_for(args, workload)
    if built is None:
        return 2
    rows = []
    for name, build in built:
        range_cost = run_range_queries(build.index, workload.queries, radius)
        knn_cost = run_knn_queries(build.index, workload.queries, args.k)
        rows.append(
            {
                "Index": name,
                "Build comp": build.compdists,
                "MRQ comp": round(range_cost.compdists, 1),
                "MRQ PA": round(range_cost.page_accesses, 1),
                "kNN comp": round(knn_cost.compdists, 1),
                "kNN PA": round(knn_cost.page_accesses, 1),
            }
        )
    print(
        format_table(
            rows,
            title=f"{args.dataset} (n={args.n}), r=16% selectivity, k={args.k}",
            first_column="Index",
        )
    )
    return 0


def _cmd_batch(args) -> int:
    workload = make_workload(args.dataset, n=args.n, n_queries=args.queries)
    radius = workload.radius_for(0.16)
    built = _built_indexes_for(args, workload)
    if built is None:
        return 2
    rows = []
    for _name, build in built:
        rows.append(
            run_batch_comparison(
                build.index, workload.queries, radius, args.k, repeats=args.repeats
            )
        )
    print(
        format_table(
            rows,
            title=(
                f"batch vs sequential, {args.dataset} (n={args.n}, "
                f"{len(workload.queries)} queries), r=16% sel, k={args.k}"
            ),
            first_column="Index",
        )
    )
    return 0


def _cmd_snapshot(args) -> int:
    if args.info:
        info = snapshot_info(args.info)
        print(format_table([info.row()], title=f"Snapshot {args.info}"))
        return 0
    if args.split:
        return _snapshot_split(args)
    workload = make_workload(args.dataset, n=args.n, n_queries=8)
    pivots = shared_pivots(workload, args.pivots)
    result = measure_build(args.index, workload, pivots)
    t0 = time.perf_counter()
    info = save_index(result.index, args.out, format_version=args.format_version)
    save_s = time.perf_counter() - t0
    print(
        f"built {args.index} on {args.dataset} (n={args.n}): "
        f"{result.compdists} compdists, {result.seconds:.2f}s; "
        f"saved to {args.out} (format {info.format_version}, "
        f"{info.payload_bytes} pickle bytes + {info.region_bytes} region "
        f"bytes, {save_s:.2f}s)"
    )
    if args.verify:
        from .core.counters import CostCounters

        counters = CostCounters()
        t0 = time.perf_counter()
        restored = load_index(args.out, counters=counters)
        load_s = time.perf_counter() - t0
        radius = workload.radius_for(0.16)
        original = result.index.range_query_many(workload.queries, radius)
        roundtrip = restored.range_query_many(workload.queries, radius)
        if original != roundtrip:
            print("VERIFY FAILED: restored answers diverge from original")
            return 1
        print(
            f"verified: restored in {load_s:.2f}s with 0 build compdists, "
            f"{len(workload.queries)} MRQ answers identical"
        )
    return 0


def _snapshot_split(args) -> int:
    """Build a sharded index and save one snapshot per shard + a manifest."""
    from . import select_pivots
    from .bench.runner import build_index
    from .core.sharded import ShardedIndex
    from .service.cluster import load_cluster_manifest, save_split

    if args.split < 1:
        print(f"--split must be >= 1, got {args.split}")
        return 2
    workload = make_workload(args.dataset, n=args.n, n_queries=8)

    def build_shard(shard_space):
        pivots = select_pivots(shard_space, args.pivots, strategy="hfi")
        return build_index(
            args.index, shard_space, pivots, workload_name=args.dataset
        )

    space = workload.fresh_space()
    t0 = time.perf_counter()
    sharded = ShardedIndex.build(space, build_shard, n_shards=args.split, seed=0)
    build_s = time.perf_counter() - t0
    manifest_path = save_split(sharded, args.out)
    manifest = load_cluster_manifest(manifest_path)
    print(
        f"built {args.split}x {args.index} shards on {args.dataset} "
        f"(n={args.n}) in {build_s:.2f}s; wrote {manifest_path} + "
        f"{len(manifest['shards'])} shard snapshots"
    )
    if args.verify:
        parts = [load_index(entry["snapshot"]) for entry in manifest["shards"]]
        radius = workload.radius_for(0.16)
        want = sharded.range_query_many(workload.queries, radius)
        per_part = [p.range_query_many(workload.queries, radius) for p in parts]
        got = [
            ShardedIndex.merge_range_answers(answers)
            for answers in zip(*per_part)
        ]
        if want != got:
            print("VERIFY FAILED: merged part answers diverge from the "
                  "unsplit sharded index")
            return 1
        print(
            f"verified: {len(parts)} restored parts merge to identical "
            f"MRQ answers for {len(workload.queries)} queries"
        )
    return 0


def _serve_http(service: QueryService, args) -> int:
    """Run the HTTP front-end until interrupted, then drain and exit."""
    from .service.http import HttpQueryServer

    access_log = None
    access_log_path = getattr(args, "access_log", None)
    if access_log_path == "-":
        access_log = sys.stderr
    elif access_log_path:
        access_log = open(access_log_path, "a", encoding="utf-8")
    slow_query_log = None
    slow_query_log_path = getattr(args, "slow_query_log", None)
    if slow_query_log_path and slow_query_log_path != "-":
        slow_query_log = open(slow_query_log_path, "a", encoding="utf-8")
    server = HttpQueryServer(
        service,
        host=args.host,
        port=args.http,
        max_inflight=args.max_inflight,
        access_log=access_log,
        metrics=service.metrics,
        slow_query_ms=getattr(args, "slow_query_ms", None),
        slow_query_log=slow_query_log,
        auth_token=getattr(args, "auth_token", None),
    )
    server.start()
    port_file = getattr(args, "port_file", None)
    if port_file:
        # published only once the socket is listening: a supervisor (the
        # cluster CLI, CI scripts) polls this file to learn the ephemeral
        # port without parsing stdout
        Path(port_file).write_text(f"{server.port}\n")
    get_endpoints = "/healthz /stats" + (
        " /metrics" if service.metrics is not None else ""
    )
    print(
        f"serving {service.index_id} at http://{args.host}:{server.port} "
        f"(max in-flight {args.max_inflight})\n"
        "endpoints: POST /range /knn /range_many /knn_many /insert /delete "
        f"/admin/reload; GET {get_endpoints} -- Ctrl-C to stop",
        flush=True,
    )
    died = False
    try:
        # exit the foreground wait if the accept loop ever dies (e.g. on
        # fd exhaustion) instead of spinning on a dead thread forever
        while server.is_serving:
            server.join(timeout=0.5)
        died = True
        print("accept loop exited unexpectedly", flush=True)
    except KeyboardInterrupt:
        print(
            "shutting down: draining in-flight requests and the dispatcher",
            flush=True,
        )
    finally:
        server.close()
        if access_log is not None and access_log is not sys.stderr:
            access_log.close()
        if slow_query_log is not None:
            slow_query_log.close()
    print(
        f"served {server.requests_served} requests "
        f"({server.rejected} rejected); shut down cleanly",
        flush=True,
    )
    return 1 if died else 0


def _apply_serve_bounds(service, bounds) -> str | None:
    """Switch every hosted staged pruner to the requested bounds mode.

    Works on snapshot-restored indexes too: the pruner (order, prefix,
    pivot-pair matrix) rides inside the snapshot, so flipping the mode is
    an attribute assignment, not a rebuild.  Returns an error message when
    the request cannot be honoured -- ``ptolemaic`` needs the metric to
    declare the inequality AND the snapshot to carry a pair matrix (one
    built with ``--bounds triangle`` has none).
    """
    if not bounds:
        return None
    for owner, pruner in service._hosted_pruners():
        if bounds == "ptolemaic":
            if not getattr(pruner, "is_ptolemaic", False):
                return (
                    f"{owner.name}: --bounds ptolemaic but the metric does "
                    "not satisfy Ptolemy's inequality"
                )
            if getattr(pruner, "pair_matrix", None) is None:
                return (
                    f"{owner.name}: snapshot carries no pivot-pair matrix "
                    "(built with bounds=triangle); rebuild with --bounds auto"
                )
        pruner.bounds = bounds
    return None


def _cmd_serve(args) -> int:
    # everything that can fail (workload synthesis, snapshot header parse,
    # index construction) runs *before* the service -- and with it the
    # dispatcher worker thread -- exists; from construction on, the
    # `with service:` below guarantees the thread is joined on every path
    http_mode = getattr(args, "http", None) is not None
    metrics = None
    if getattr(args, "metrics", False):
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()
    snapshots = args.snapshot or []
    if len(snapshots) == 1 and not is_catalog_manifest(snapshots[0]):
        info = snapshot_info(snapshots[0])
        workload = (
            None
            if http_mode
            else make_workload(
                info.dataset_name, n=info.n_objects, n_queries=args.queries
            )
        )
        service = QueryService.from_snapshot(
            snapshots[0],
            cache_size=args.cache_size,
            cache_bytes=args.cache_bytes,
            cache_ttl_s=args.cache_ttl,
            max_batch_size=args.batch_size,
            max_wait_ms=args.max_wait_ms,
            metrics=metrics,
            adaptive_pruning=getattr(args, "adaptive_pruning", False),
        )
        banner = (
            f"restored {info.index_name} ({info.n_objects} objects, "
            f"{info.distance_name}) from {snapshots[0]} -- no rebuild"
        )
    elif snapshots:
        # several snapshots (or one .catalog.json manifest): host them as
        # an index catalog behind the cost-based query planner
        service = QueryService.from_snapshots(
            snapshots,
            cache_size=args.cache_size,
            cache_bytes=args.cache_bytes,
            cache_ttl_s=args.cache_ttl,
            max_batch_size=args.batch_size,
            max_wait_ms=args.max_wait_ms,
            metrics=metrics,
            adaptive_pruning=getattr(args, "adaptive_pruning", False),
        )
        dataset = service.index.space.dataset
        workload = (
            None
            if http_mode
            else make_workload(
                dataset.name, n=len(dataset), n_queries=args.queries
            )
        )
        banner = (
            f"restored catalog {' + '.join(service.catalog.ids())} "
            f"({len(dataset)} objects, {dataset.distance.name}) -- planner "
            "calibrated, routing by predicted cost"
        )
    else:
        workload = make_workload(args.dataset, n=args.n, n_queries=args.queries)
        pivots = shared_pivots(workload, args.pivots)
        try:
            result = measure_build(
                args.index, workload, pivots, **_bounds_overrides(args)
            )
        except ValueError as exc:
            print(f"cannot build {args.index}: {exc}")
            return 2
        service = QueryService(
            result.index,
            cache_size=args.cache_size,
            cache_bytes=args.cache_bytes,
            cache_ttl_s=args.cache_ttl,
            max_batch_size=args.batch_size,
            max_wait_ms=args.max_wait_ms,
            metrics=metrics,
            adaptive_pruning=getattr(args, "adaptive_pruning", False),
        )
        banner = None
    bounds_error = _apply_serve_bounds(service, getattr(args, "bounds", None))
    if bounds_error is not None:
        service.close()
        print(bounds_error)
        return 2
    with service:
        if banner:
            print(banner, flush=True)
        if http_mode:
            return _serve_http(service, args)
        radius = workload.radius_for(0.16)
        # the request stream: single queries, mixed MRQ/MkNNQ, repeating the
        # query sample (online traffic repeats popular queries)
        requests = []
        for _ in range(max(1, args.requests // (2 * len(workload.queries)) + 1)):
            for q in workload.queries:
                requests.append(("range", q, radius))
                requests.append(("knn", q, args.k))
        requests = requests[: args.requests]

        def one(request):
            kind, q, p = request
            if kind == "range":
                return service.range_query(q, p)
            return service.knn_query(q, p)

        with ThreadPoolExecutor(max_workers=args.clients) as pool:
            t0 = time.perf_counter()
            list(pool.map(one, requests))
            seconds = time.perf_counter() - t0
        stats = service.stats()
    cache = stats["cache"]
    dispatcher = stats.get("dispatcher", {})
    print(
        f"served {len(requests)} requests from {args.clients} clients "
        f"in {seconds:.2f}s ({len(requests) / max(seconds, 1e-9):.0f} req/s)"
    )
    print(
        f"cache: {cache['hits']} hits / {cache['misses']} misses "
        f"(hit rate {cache['hit_rate']:.0%}, {cache['evictions']} evictions); "
        f"dispatcher: {dispatcher.get('batches', 0)} batches, "
        f"mean size {dispatcher.get('mean_batch_size', 0)}, "
        f"largest {dispatcher.get('largest_batch', 0)}"
    )
    print(
        f"index work: {stats['distance_computations']} compdists, "
        f"{stats['page_accesses']} page accesses"
    )
    return 0


def _plan_cell(costs: dict | None, key: str) -> str:
    if not costs or key not in costs:
        return "-"
    value = costs[key]
    return f"{value:.3f}" if key == "wall_ms" else f"{value:.1f}"


def _cmd_plan(args) -> int:
    """Build several indexes, calibrate the planner, print explain tables."""
    lookup = {name.lower(): name for name in ALL_INDEXES}
    names = []
    for raw in args.index or ["LAESA", "MVPT"]:
        resolved = lookup.get(raw.lower())
        if resolved is None:
            print(f"unknown index {raw!r} (see `repro indexes`)")
            return 2
        if resolved in names:
            print(f"index {resolved!r} given twice")
            return 2
        names.append(resolved)
    if len(names) < 2:
        print("repro plan needs at least two --index members to compare")
        return 2
    workload = make_workload(args.dataset, n=args.n, n_queries=args.queries)
    pivots = shared_pivots(workload, args.pivots)
    catalog = IndexCatalog()
    for name in names:
        # measure_build gives each member its own MetricSpace, which the
        # catalog requires for per-member cost attribution
        catalog.register(measure_build(name, workload, pivots).index)
    planner = QueryPlanner(catalog, epsilon=0.0)
    radii = [float(r) for r in args.radius] if args.radius else None
    ks = tuple(args.k) if args.k else (10,)
    if radii is None:
        radii = planner.default_radii()
    recorded = planner.calibrate(radii=radii, ks=ks, n_queries=args.queries)
    print(
        f"calibrated {len(catalog)} members ({', '.join(catalog.ids())}) on "
        f"{args.dataset} (n={args.n}): {recorded} observations"
    )
    tasks = [("range", r, f"MRQ radius={r:g}") for r in radii]
    tasks += [("knn", float(k), f"MkNNQ k={k}") for k in ks]
    for kind, param, title in tasks:
        rows = []
        for row in planner.explain(kind, param):
            predicted, measured = row["predicted"], row["measured"]
            stages = row["prune_stages"]
            rows.append(
                {
                    "Index": row["index"],
                    "Pred compdists": _plan_cell(predicted, "compdists"),
                    "Meas compdists": _plan_cell(measured, "compdists"),
                    "Pred PA": _plan_cell(predicted, "page_reads"),
                    "Meas PA": _plan_cell(measured, "page_reads"),
                    "Pred ms": _plan_cell(predicted, "wall_ms"),
                    "Obs": row["observations"],
                    # objects decided per cascade stage over the calibration
                    # traffic: prefix/refine Lemma-1 prunes, Lemma-4
                    # validations, Ptolemaic prunes
                    "Pruned pfx/ref/val/pt": "{prefix}/{refine}/{validated}/{ptolemaic}".format(
                        **stages
                    ),
                    "Route": "<- chosen" if row["chosen"] else "",
                }
            )
        print()
        print(format_table(rows, title=title, first_column="Index"))
    return 0


def _cmd_cluster(args) -> int:
    """Spawn router + N backends, serve in the foreground until Ctrl-C."""
    import tempfile

    from .service.cluster import (
        ClusterError,
        ClusterSupervisor,
        load_cluster_manifest,
        split_snapshot,
    )

    metrics = None
    if args.metrics:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()
    workdir = None
    try:
        if args.snapshot.endswith(".cluster.json"):
            manifest = load_cluster_manifest(args.snapshot)
            mode = args.mode or "shard"
            if mode != "shard":
                print("a .cluster.json manifest implies --mode shard")
                return 2
            snapshots = [entry["snapshot"] for entry in manifest["shards"]]
            if args.backends is not None and args.backends != len(snapshots):
                print(
                    f"--backends {args.backends} does not match the manifest's "
                    f"{len(snapshots)} shards"
                )
                return 2
        else:
            mode = args.mode or "replica"
            if mode == "replica":
                snapshots = [args.snapshot] * (args.backends or 2)
            else:
                # shard mode from a monolithic snapshot: split it into
                # per-shard parts under a scratch dir that lives as long
                # as the cluster serves
                workdir = tempfile.TemporaryDirectory(prefix="repro-cluster-split-")
                stem = Path(workdir.name) / Path(args.snapshot).stem
                manifest = load_cluster_manifest(split_snapshot(args.snapshot, stem))
                snapshots = [entry["snapshot"] for entry in manifest["shards"]]
                if args.backends is not None and args.backends != len(snapshots):
                    print(
                        f"--backends {args.backends} does not match the "
                        f"snapshot's {len(snapshots)} shards"
                    )
                    return 2
        supervisor = ClusterSupervisor(
            snapshots=snapshots,
            mode=mode,
            host=args.host,
            router_port=args.port,
            max_inflight=args.max_inflight,
            cache_size=args.cache_size,
            cache_ttl_s=args.cache_ttl,
            auth_token=args.auth_token,
            metrics=metrics,
            probe_interval_s=args.probe_interval,
        )
        supervisor.start()
    except ClusterError as exc:
        print(f"cluster failed to start: {exc}")
        if workdir is not None:
            workdir.cleanup()
        return 1
    router = supervisor.router
    if args.port_file:
        Path(args.port_file).write_text(f"{router.port}\n")
    print(
        f"cluster serving at http://{args.host}:{router.port} "
        f"({mode} mode, {len(snapshots)} backends on ports "
        f"{supervisor.backend_ports})\n"
        "endpoints: POST /range /knn /range_many /knn_many /insert /delete "
        "/admin/reload; GET /healthz /stats"
        + (" /metrics" if metrics is not None else "")
        + " -- Ctrl-C to stop",
        flush=True,
    )
    warned: set[int] = set()
    died = False
    try:
        while router.is_serving:
            router.join(timeout=0.5)
            for backend_id in supervisor.poll():
                if backend_id not in warned:
                    warned.add(backend_id)
                    print(
                        f"backend {backend_id} exited; router will answer "
                        + (
                            "503 for every query until it is restarted"
                            if mode == "shard"
                            else "from the remaining replicas"
                        ),
                        flush=True,
                    )
        died = True
        print("router accept loop exited unexpectedly", flush=True)
    except KeyboardInterrupt:
        print(
            "shutting down cluster: draining router, stopping backends",
            flush=True,
        )
    finally:
        served = router.requests_served
        rejected = router.rejected
        supervisor.close()
        if workdir is not None:
            workdir.cleanup()
    print(
        f"routed {served} requests ({rejected} rejected); shut down cleanly",
        flush=True,
    )
    return 1 if died else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Pivot-based metric indexing (VLDB 2017 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("indexes", help="list available indexes")
    p.set_defaults(func=_cmd_indexes)

    p = sub.add_parser(
        "stats",
        help="dataset statistics (Table 2), or a running server's /stats "
        "when given a URL",
    )
    p.add_argument(
        "dataset",
        metavar="dataset-or-url",
        help=f"a dataset name ({', '.join(sorted(DATASET_FACTORIES))}) or "
        "a running server's base URL (http://host:port)",
    )
    p.add_argument("--n", type=int, default=2000)
    p.add_argument(
        "--metrics",
        action="store_true",
        help="with a URL: print the Prometheus /metrics exposition instead "
        "of the /stats JSON",
    )
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("demo", help="build one index and run queries")
    p.add_argument("--dataset", choices=sorted(DATASET_FACTORIES), default="Words")
    p.add_argument("--index", default="MVPT")
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--pivots", type=int, default=5)
    p.add_argument("--k", type=int, default=10)
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser("compare", help="compare indexes on one workload")
    p.add_argument("--dataset", choices=sorted(DATASET_FACTORIES), default="Words")
    p.add_argument(
        "--indexes",
        nargs="+",
        default=["LAESA", "MVPT", "SPB-tree", "M-index*"],
    )
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--pivots", type=int, default=5)
    p.add_argument("--queries", type=int, default=5)
    p.add_argument("--k", type=int, default=10)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "batch", help="sequential vs batch multi-query throughput (tables + trees)"
    )
    p.add_argument("--dataset", choices=sorted(DATASET_FACTORIES), default="LA")
    p.add_argument("--indexes", nargs="+", default=list(BATCH_INDEX_NAMES))
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--pivots", type=int, default=5)
    p.add_argument("--queries", type=int, default=16)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument(
        "--bounds",
        choices=("triangle", "ptolemaic", "auto"),
        default=None,
        help="staged-pruner bound family for the pivot tables (auto = "
        "Ptolemaic only when the metric declares it; default: index default)",
    )
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "snapshot", help="build an index and save it to disk (or --info a file)"
    )
    p.add_argument("--dataset", choices=sorted(DATASET_FACTORIES), default="Words")
    p.add_argument("--index", default="LAESA")
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--pivots", type=int, default=5)
    p.add_argument("--out", default="index.snap")
    p.add_argument(
        "--verify",
        action="store_true",
        help="restore the snapshot and assert identical MRQ answers",
    )
    p.add_argument(
        "--info", metavar="PATH", help="inspect an existing snapshot header and exit"
    )
    p.add_argument(
        "--format-version",
        type=int,
        choices=(1, 2),
        default=2,
        help="snapshot format: 2 (memmap regions, default) or 1 (legacy "
        "all-pickle)",
    )
    p.add_argument(
        "--split",
        type=int,
        default=None,
        metavar="N",
        help="build a ShardedIndex of N shards of --index and save one "
        "snapshot per shard plus a .cluster.json manifest (the input to "
        "`repro cluster`)",
    )
    p.set_defaults(func=_cmd_snapshot)

    p = sub.add_parser(
        "serve",
        help="serve concurrent single-query traffic (cache + micro-batching)",
    )
    p.add_argument(
        "--snapshot",
        action="append",
        help="serve an index restored from this snapshot; repeat the flag "
        "(or pass one .catalog.json manifest) to host several indexes as "
        "a catalog with cost-based planner routing",
    )
    p.add_argument("--dataset", choices=sorted(DATASET_FACTORIES), default="Words")
    p.add_argument("--index", default="LAESA")
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--pivots", type=int, default=5)
    p.add_argument("--queries", type=int, default=20, help="distinct query objects")
    p.add_argument("--requests", type=int, default=200, help="total requests served")
    p.add_argument("--clients", type=int, default=8, help="concurrent callers")
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--cache-size", type=int, default=1024)
    p.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        help="byte budget for the result cache (evict by accounted result "
        "size, not just entry count)",
    )
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--max-wait-ms", type=float, default=2.0)
    p.add_argument(
        "--bounds",
        choices=("triangle", "ptolemaic", "auto"),
        default=None,
        help="staged-pruner bound family for the hosted index(es); applies "
        "to snapshot-restored pruners too (auto = Ptolemaic only when the "
        "metric declares it)",
    )
    p.add_argument(
        "--adaptive-pruning",
        action="store_true",
        help="re-rank staged-pruner pivot order online from observed "
        "per-pivot decided counts (serving-only optimisation; bench "
        "paths keep the frozen build-time order)",
    )
    p.add_argument(
        "--http",
        type=int,
        metavar="PORT",
        help="serve the JSON HTTP front-end on this port (0 picks a free "
        "port) instead of running the synthetic traffic demo",
    )
    p.add_argument("--host", default="127.0.0.1", help="HTTP bind address")
    p.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="HTTP backpressure: concurrent requests beyond this get 503",
    )
    p.add_argument(
        "--access-log",
        metavar="PATH",
        default=None,
        help="write one JSON line per HTTP request (method, path, status, "
        "bytes, wall ms, codec) to PATH; '-' for stderr",
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help="enable the telemetry registry: GET /metrics (Prometheus text "
        "exposition), per-endpoint latency histograms, cache/dispatcher "
        "instruments, and a 'telemetry' section under /stats",
    )
    p.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="trace every query request and log a JSON line -- span tree "
        "with per-request attributed batch costs included -- for any "
        "request slower than MS milliseconds (0 logs every query)",
    )
    p.add_argument(
        "--slow-query-log",
        metavar="PATH",
        default=None,
        help="sink for slow-query lines (default stderr; '-' for stderr)",
    )
    p.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="result-cache time-to-live: entries older than this count as "
        "misses (and as 'expired' in /stats); default keeps entries "
        "until evicted or invalidated",
    )
    p.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="require 'Authorization: Bearer TOKEN' on /insert, /delete, "
        "and /admin/reload (401 otherwise); queries stay open",
    )
    p.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="write the bound HTTP port to PATH once listening (how the "
        "cluster supervisor finds ephemeral backend ports)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "plan",
        help="calibrate the query planner over several indexes and print "
        "the predicted-vs-measured explain tables",
    )
    p.add_argument("dataset", choices=sorted(DATASET_FACTORIES))
    p.add_argument(
        "--index",
        action="append",
        metavar="NAME",
        help="index to host as a catalog member (repeat the flag; "
        "case-insensitive; default: LAESA and MVPT)",
    )
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--pivots", type=int, default=5)
    p.add_argument(
        "--queries", type=int, default=8, help="calibration queries per batch"
    )
    p.add_argument(
        "--radius",
        action="append",
        type=float,
        metavar="R",
        help="MRQ radius to calibrate and explain (repeat the flag; "
        "default: distance-distribution quantiles)",
    )
    p.add_argument(
        "--k",
        action="append",
        type=int,
        metavar="K",
        help="MkNNQ k to calibrate and explain (repeat the flag; default 10)",
    )
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser(
        "cluster",
        help="spawn a router + N backend serve processes (shard "
        "scatter-gather or replica load-balancing)",
    )
    p.add_argument(
        "--snapshot",
        required=True,
        help="a .cluster.json manifest (shard mode), a ShardedIndex .snap "
        "to split (--mode shard), or any .snap to replicate (--mode "
        "replica, the default for .snap)",
    )
    p.add_argument(
        "--backends",
        type=int,
        default=None,
        metavar="N",
        help="number of backends (replica mode; defaults to 2 -- shard "
        "mode takes the count from the manifest/snapshot)",
    )
    p.add_argument("--mode", choices=("shard", "replica"), default=None)
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=0, help="router port (0 = free)")
    p.add_argument("--max-inflight", type=int, default=128)
    p.add_argument("--cache-size", type=int, default=1024)
    p.add_argument("--cache-ttl", type=float, default=None, metavar="SECONDS")
    p.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="bearer token enforced at the router edge and on every backend",
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help="router telemetry: GET /metrics with fan-out latency and "
        "per-backend up/in-flight/mark-down instruments",
    )
    p.add_argument(
        "--probe-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="health-probe period for backend mark-down/mark-up",
    )
    p.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="write the router's bound port to PATH once listening",
    )
    p.set_defaults(func=_cmd_cluster)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
