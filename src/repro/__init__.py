"""repro: pivot-based metric indexing.

A faithful, pure-Python reproduction of

    Lu Chen, Yunjun Gao, Baihua Zheng, Christian S. Jensen, Hanyu Yang,
    Keyu Yang: "Pivot-based Metric Indexing", PVLDB 10(10), 2017.

The package implements every index of the study on shared substrates:

* **tables** -- AESA, LAESA, EPT, EPT* (the paper's improved extreme pivot
  table), CPT;
* **trees** -- BKT, FQT, FQA, VPT, MVPT;
* **external** -- PM-tree, Omni-family (sequential / B+ / R-tree), M-index,
  M-index* (the paper's MBB-augmented M-index), SPB-tree;
* **substrates** -- counted metric spaces, pivot selection (HF/HFI/PSA),
  simulated paged disk with an LRU buffer pool, B+-tree, R-tree, M-tree,
  Hilbert/Z-order curves.

Quick start::

    from repro import make_words, MetricSpace, select_pivots
    from repro.trees import MVPT

    dataset = make_words(10_000)
    space = MetricSpace(dataset)
    pivots = select_pivots(space, 5, strategy="hfi")
    index = MVPT.build(space, pivots)
    hits = index.range_query("defoliate", radius=1)
    nearest = index.knn_query("defoliate", k=2)
"""

from .core import (
    CostCounters,
    CostSnapshot,
    DATASET_FACTORIES,
    Dataset,
    DatasetStats,
    DiscreteMetricAdapter,
    EditDistance,
    HammingDistance,
    KnnHeap,
    L1,
    L2,
    LInf,
    LPDistance,
    Measurement,
    MetricDistance,
    MetricIndex,
    MetricSpace,
    Neighbor,
    PivotMapping,
    QuadraticFormDistance,
    QueryStats,
    RangeResult,
    UnsupportedOperation,
    ShardedIndex,
    brute_force_knn,
    brute_force_knn_many,
    brute_force_range,
    brute_force_range_many,
    dataset_statistics,
    hf,
    hfi,
    make_color,
    make_la,
    make_synthetic,
    make_uniform,
    make_words,
    max_variance_pivots,
    psa,
    random_pivots,
    select_pivots,
)
from .external import (
    DEPT,
    MIndex,
    MIndexStar,
    MTreeIndex,
    OmniBPlusTree,
    OmniRTree,
    OmniSequentialFile,
    PMTree,
    SPBTree,
)
from .obs import MetricsRegistry
from .service import (
    ClusterRouter,
    ClusterSupervisor,
    HttpQueryServer,
    IndexCatalog,
    MicroBatchDispatcher,
    QueryPlanner,
    QueryResultCache,
    QueryService,
    ServiceClient,
    ServiceClientError,
    SnapshotError,
    SnapshotInfo,
    load_index,
    save_index,
    snapshot_info,
)
from .tables import AESA, CPT, EPT, EPTStar, LAESA
from .trees import BKT, FQA, FQT, MVPT, VPT

__version__ = "1.0.0"

ALL_INDEXES = {
    "AESA": AESA,
    "LAESA": LAESA,
    "EPT": EPT,
    "EPT*": EPTStar,
    "CPT": CPT,
    "BKT": BKT,
    "FQT": FQT,
    "FQA": FQA,
    "VPT": VPT,
    "MVPT": MVPT,
    "PM-tree": PMTree,
    "Omni-seq": OmniSequentialFile,
    "OmniB+": OmniBPlusTree,
    "OmniR-tree": OmniRTree,
    "M-index": MIndex,
    "M-index*": MIndexStar,
    "SPB-tree": SPBTree,
    "DEPT": DEPT,
    "M-tree": MTreeIndex,
}

__all__ = [
    "ALL_INDEXES",
    "AESA",
    "BKT",
    "CPT",
    "CostCounters",
    "CostSnapshot",
    "DATASET_FACTORIES",
    "Dataset",
    "DatasetStats",
    "DEPT",
    "DiscreteMetricAdapter",
    "EPT",
    "EPTStar",
    "EditDistance",
    "FQA",
    "FQT",
    "HammingDistance",
    "KnnHeap",
    "L1",
    "L2",
    "LAESA",
    "LInf",
    "LPDistance",
    "MIndex",
    "MIndexStar",
    "MTreeIndex",
    "MVPT",
    "Measurement",
    "MetricDistance",
    "MetricIndex",
    "ClusterRouter",
    "ClusterSupervisor",
    "HttpQueryServer",
    "IndexCatalog",
    "MetricSpace",
    "MetricsRegistry",
    "MicroBatchDispatcher",
    "QueryPlanner",
    "Neighbor",
    "OmniBPlusTree",
    "OmniRTree",
    "OmniSequentialFile",
    "PMTree",
    "PivotMapping",
    "QuadraticFormDistance",
    "QueryResultCache",
    "QueryService",
    "QueryStats",
    "RangeResult",
    "SPBTree",
    "ServiceClient",
    "ServiceClientError",
    "ShardedIndex",
    "SnapshotError",
    "SnapshotInfo",
    "UnsupportedOperation",
    "VPT",
    "brute_force_knn",
    "brute_force_knn_many",
    "brute_force_range",
    "brute_force_range_many",
    "dataset_statistics",
    "hf",
    "hfi",
    "load_index",
    "make_color",
    "make_la",
    "make_synthetic",
    "make_uniform",
    "make_words",
    "max_variance_pivots",
    "psa",
    "random_pivots",
    "save_index",
    "select_pivots",
    "snapshot_info",
]
