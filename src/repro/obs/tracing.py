"""Per-request trace spans with batch-exact cost attribution.

The serving stack deliberately destroys per-request attribution as it
optimises: the cache absorbs repeats, the micro-batching dispatcher
coalesces concurrent callers into one vectorised call, and the batch
engine reads each storage page once for the whole batch.  Aggregate
counters (``/stats``) survive that; "why was *this* request slow, and
what did *it* cost?" does not.  This module restores it:

* a **span** is one timed step of a request (cache lookup, dispatcher
  wait, batch execution, storage reads), carrying free-form ``meta``
  annotations and a ``cost`` dict of attributed counter deltas;
* the **current span** propagates through the serving layers via
  ``contextvars`` -- handler threads, the service facade, and the storage
  layer all annotate whatever request is active without plumbing a trace
  argument through every signature;
* **cost attribution** bridges the dispatcher's thread boundary: the
  worker thread measures the :class:`~repro.core.counters.CostCounters`
  delta around each batch execution and attributes it back to the
  requests that coalesced into the batch -- **exactly** when the request
  ran alone, **proportionally by query** (sum-exact, via
  :meth:`CostSnapshot.split`) within a coalesced batch, with
  ``coalesced: true`` marking the shared case.

Cost discipline: with no active trace every entry point is a single
``ContextVar.get`` returning a no-op, so untraced serving pays
nanoseconds per call site; tracing is enabled per request by whoever
starts the root span (the HTTP server does when a slow-query threshold
is configured).

Attribution caveat: the measured delta is a window over *shared*
counters.  Batch executions dispatched by the one worker thread are
serialised and attribute exactly; independent ``*_query_many`` calls
running concurrently in other threads can bleed cost into each other's
windows.  Totals remain correct -- only the per-request split of
simultaneous batches is approximate, and each span carries enough
(`batch`, ``coalesced``) to see when that happened.

Thread-safety note: a participant span's ``children`` list is appended
from the dispatcher worker while the owning request thread is blocked on
its Future; the Future's internal condition publishes the write before
the owner resumes, so no extra locking is needed.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextvars import ContextVar

from ..core.counters import CostCounters, CostSnapshot

__all__ = [
    "Span",
    "current_span",
    "active",
    "start_trace",
    "span",
    "add_event",
    "attribution_scope",
    "batch_execution",
]

_current: ContextVar["Span | None"] = ContextVar("repro_current_span", default=None)

# set by the dispatcher worker around a coalesced batch: the submit-time
# spans (one per query, None for untraced submitters) the execution's
# measured cost is attributed back to
_participants = threading.local()

# monotonically increasing id shared by all requests of one coalesced
# batch, so log lines can be grouped back into the batch they rode in
_batch_ids = itertools.count(1)


class Span:
    """One timed step of a request: name, wall time, annotations, cost.

    ``meta`` holds free-form annotations (endpoint, cache outcome, batch
    size); ``cost`` holds attributed counter deltas (``distance_
    computations``, ``page_reads``, ...) and storage event counts.
    ``children`` are sub-steps; for a coalesced batch the per-request
    ``batch_execute`` spans share one children list by reference (the
    sub-steps happened once, for everyone).
    """

    __slots__ = ("name", "start", "wall_ms", "meta", "cost", "children")

    def __init__(self, name: str, **meta):
        self.name = name
        self.start = time.perf_counter()
        self.wall_ms: float | None = None
        self.meta: dict = meta
        self.cost: dict = {}
        self.children: list[Span] = []

    def finish(self) -> None:
        self.wall_ms = (time.perf_counter() - self.start) * 1000.0

    def add_cost(self, key: str, amount=1) -> None:
        self.cost[key] = self.cost.get(key, 0) + amount

    def to_dict(self) -> dict:
        """JSON-ready span tree (the slow-query log's ``trace`` field)."""
        out: dict = {"name": self.name}
        if self.wall_ms is not None:
            out["wall_ms"] = round(self.wall_ms, 3)
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.cost:
            out["cost"] = {
                k: (round(v, 6) if isinstance(v, float) else v)
                for k, v in self.cost.items()
            }
        if self.children:
            out["spans"] = [child.to_dict() for child in self.children]
        return out


def current_span() -> Span | None:
    """The active span of this context, or None when untraced."""
    return _current.get()


def active() -> bool:
    return _current.get() is not None


class _SpanContext:
    """Context manager running a block inside a (possibly root) span."""

    __slots__ = ("span", "_parent", "_token")

    def __init__(self, span_: Span, attach_to_parent: bool):
        self.span = span_
        self._parent = _current.get() if attach_to_parent else None
        self._token = None

    def __enter__(self) -> Span:
        self._token = _current.set(self.span)
        return self.span

    def __exit__(self, *exc_info) -> None:
        self.span.finish()
        _current.reset(self._token)
        if self._parent is not None:
            self._parent.children.append(self.span)


class _NoopSpanContext:
    """The untraced fast path: no allocation, no contextvar write."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info) -> None:
        pass


_NOOP = _NoopSpanContext()


def start_trace(name: str, **meta) -> _SpanContext:
    """Open a root span and make it this context's current span.

    The returned context manager yields the root :class:`Span`; read its
    tree (``to_dict``) after the block for the request's full trace.
    """
    return _SpanContext(Span(name, **meta), attach_to_parent=False)


def span(name: str, **meta):
    """A child span of the current one -- or a no-op when untraced."""
    if _current.get() is None:
        return _NOOP
    return _SpanContext(Span(name, **meta), attach_to_parent=True)


def add_event(key: str, amount=1) -> None:
    """Bump a named count on the current span (no-op when untraced).

    The storage layer's per-call hook: cheap enough for per-page-read
    call sites (one ContextVar read when untraced).
    """
    active_span = _current.get()
    if active_span is not None:
        active_span.add_cost(key, amount)


class attribution_scope:
    """Declare the batch about to execute on this thread as coalesced.

    The dispatcher worker enters this around ``execute_batch`` with the
    submit-time span of every query in the group (None entries for
    untraced submitters).  Any :func:`batch_execution` inside the scope
    attributes its measured cost delta across these spans instead of the
    (foreign) contextvar chain.
    """

    __slots__ = ("_spans",)

    def __init__(self, spans: list[Span | None]):
        self._spans = spans

    def __enter__(self) -> None:
        _participants.spans = self._spans

    def __exit__(self, *exc_info) -> None:
        _participants.spans = None


class batch_execution:
    """Measure one batch index call and attribute its cost delta.

    Used by the service's batch executor around the ``*_query_many``
    call::

        with tracing.batch_execution(kind, counters, len(queries), len(distinct)):
            answers = index.range_query_many(...)

    Three outcomes:

    * **untraced** (no participants registered, no current span): a pure
      no-op -- not even a counter snapshot is taken;
    * **exact** (a current span exists -- the caller executes its own
      batch synchronously): the ``batch_execute`` span, carrying the full
      measured delta and any storage sub-spans, is attached to the
      caller's span with ``coalesced: false``;
    * **coalesced** (the dispatcher registered participant spans): the
      delta is split sum-exactly across the batch's requests
      (:meth:`CostSnapshot.split`); each traced participant receives its
      own ``batch_execute`` span with its share as ``cost``,
      ``coalesced: true``, a shared ``batch`` id, and the (shared)
      storage sub-spans.
    """

    __slots__ = ("_kind", "_counters", "_n_queries", "_n_distinct",
                 "_participants", "_span", "_before", "_token")

    def __init__(self, kind: str, counters: CostCounters, n_queries: int, n_distinct: int):
        self._kind = kind
        self._counters = counters
        self._n_queries = n_queries
        self._n_distinct = n_distinct

    def __enter__(self) -> Span | None:
        self._participants = getattr(_participants, "spans", None)
        if self._participants is None and _current.get() is None:
            self._span = None
            return None
        self._span = Span(
            "batch_execute",
            kind=self._kind,
            batch_size=self._n_queries,
            distinct=self._n_distinct,
        )
        # make the batch span current so storage reads annotate it
        self._token = _current.set(self._span)
        # raw counts, not snapshot(): this bracket runs inside every traced
        # request and the tuple capture skips two dataclass constructions
        self._before = self._counters.counts()
        return self._span

    def __exit__(self, *exc_info) -> None:
        if self._span is None:
            return
        delta = self._counters.delta_since(self._before)
        batch_span = self._span
        batch_span.finish()
        _current.reset(self._token)
        if self._participants is not None:
            self._attribute_coalesced(batch_span, delta)
            return
        parent = _current.get()
        batch_span.meta["coalesced"] = False
        batch_span.cost.update(_cost_dict(delta))
        if parent is not None:
            parent.children.append(batch_span)

    def _attribute_coalesced(self, batch_span: Span, delta: CostSnapshot) -> None:
        spans = self._participants
        shares = delta.split(len(spans))
        batch_id = next(_batch_ids)
        events = dict(batch_span.cost)  # storage events, batch-wide
        for participant, share in zip(spans, shares):
            if participant is None:
                continue
            piece = Span(
                "batch_execute",
                **batch_span.meta,
                coalesced=True,
                batch=batch_id,
            )
            piece.start = batch_span.start
            piece.wall_ms = batch_span.wall_ms
            piece.cost = _cost_dict(share)
            if events:
                piece.meta["batch_events"] = events
            piece.children = batch_span.children  # shared by reference
            participant.children.append(piece)


def _cost_dict(delta: CostSnapshot) -> dict:
    """A snapshot delta as a compact span cost dict (zero fields dropped,
    compdists and page reads always present -- they are the paper's two
    cost metrics and their absence should mean 'free', visibly)."""
    out = delta.as_dict()
    out.pop("elapsed_seconds", None)
    out.pop("page_accesses", None)
    return {
        k: v
        for k, v in out.items()
        if v or k in ("distance_computations", "page_reads")
    }
