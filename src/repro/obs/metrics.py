"""Process-wide metrics: counters, gauges, and mergeable histograms.

The paper's evaluation method is cost accounting -- compdists and page
accesses per query -- and :class:`~repro.core.counters.CostCounters`
already totals those.  What the serving stack (cache -> dispatcher ->
batch engine) could not answer is *distributional* questions: what is the
p99 request latency per endpoint, how long do queries wait in the
dispatcher, how large do coalesced batches actually get, how many bytes
does each wire codec move.  This module is the stdlib-only answer:

* :class:`Counter` -- a monotonically increasing count (requests served,
  bytes written, cache outcomes), optionally split by labels;
* :class:`Gauge` -- a point-in-time value (in-flight requests, uptime),
  settable directly or computed by a callback at scrape time;
* :class:`Histogram` -- a **log-bucketed** distribution with *fixed*
  bucket boundaries.  Fixed boundaries are the load-bearing choice: two
  histograms over the same boundaries merge by element-wise vector
  addition (no rebinning, no loss), so per-shard or per-process
  histograms can be folded into cluster-wide ones, and p50/p90/p99 are
  derivable from the bucket counts at any time;
* :class:`MetricsRegistry` -- the named collection behind ``GET /metrics``
  (Prometheus text exposition, :meth:`MetricsRegistry.render`) and the
  percentile summaries folded into ``/stats``
  (:meth:`MetricsRegistry.summary`).

Cost discipline: recording is a dict lookup plus a lock-guarded integer
add (histograms add one ``bisect`` over ~25 boundaries).  The counted
sites are request-level or batch-level, never per-distance-evaluation, so
full telemetry is CI-gated at <= 5% throughput overhead
(``benchmarks/bench_telemetry_overhead.py``).  Everything is
thread-safe: the serving stack's handler threads, the dispatcher worker,
and ``/metrics`` scrapes share these objects freely.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exponential_buckets",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "BATCH_SIZE_BUCKETS",
    "BYTE_SIZE_BUCKETS",
]


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` geometric bucket upper bounds: start, start*factor, ...

    Log-spaced boundaries give constant *relative* resolution -- the same
    number of buckets covers 0.1 ms and 100 s -- which is what latency
    distributions need.  Every histogram sharing these boundaries merges
    by vector addition.
    """
    if start <= 0:
        raise ValueError(f"start must be positive, got {start}")
    if factor <= 1.0:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(start * factor**i for i in range(count))


# 0.05 ms .. ~7 minutes in x2 steps: covers a sub-millisecond cache hit and
# a pathological cold batch in the same fixed geometry
DEFAULT_LATENCY_BUCKETS_MS = exponential_buckets(0.05, 2.0, 24)
# 1 .. 2048 queries per coalesced batch
BATCH_SIZE_BUCKETS = exponential_buckets(1.0, 2.0, 12)
# 64 B .. 128 MiB payloads
BYTE_SIZE_BUCKETS = exponential_buckets(64.0, 4.0, 11)


def _format_value(value) -> str:
    """A Prometheus-compatible number literal (ints stay integral)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _escape_label(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _label_suffix(labelnames: tuple[str, ...], labelvalues: tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _LabeledMetric:
    """Common machinery: a parent metric fanning out to labeled children.

    A metric declared with ``labelnames`` is a family; ``labels(...)``
    returns (creating on first use) the child for one label-value tuple.
    A metric with no labelnames is its own single child, so call sites
    can record on it directly.
    """

    def __init__(self, name: str, help: str, labelnames: Iterable[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], "_LabeledMetric"] = {}
        if not self.labelnames:
            self._children[()] = self

    def labels(self, *values, **kv) -> "_LabeledMetric":
        """The child metric for one label-value combination."""
        if kv:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(str(kv[name]) for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(f"missing label {exc} for metric {self.name!r}") from None
            if len(kv) != len(self.labelnames):
                extra = set(kv) - set(self.labelnames)
                raise ValueError(f"unknown labels {sorted(extra)} for metric {self.name!r}")
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, got {values!r}"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._make_child()
                self._children[values] = child
            return child

    def _make_child(self) -> "_LabeledMetric":
        raise NotImplementedError

    def _items(self) -> list[tuple[tuple[str, ...], "_LabeledMetric"]]:
        with self._lock:
            return list(self._children.items())


class Counter(_LabeledMetric):
    """A monotonically increasing count (Prometheus ``counter``)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        super().__init__(name, help, labelnames)
        self._value = 0

    def _make_child(self) -> "Counter":
        return Counter(self.name, self.help)

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def _render(self, lines: list[str]) -> None:
        for labelvalues, child in self._items():
            lines.append(
                f"{self.name}{_label_suffix(self.labelnames, labelvalues)} "
                f"{_format_value(child.value)}"
            )

    def _summary(self):
        if not self.labelnames:
            return self.value
        return {
            ",".join(lv): child.value for lv, child in sorted(self._items())
        }


class Gauge(_LabeledMetric):
    """A point-in-time value; settable, or computed by a callback at read.

    ``set_function`` registers a zero-argument callable evaluated at every
    scrape -- the natural shape for derived values like uptime or the
    server's current in-flight count, which already live elsewhere and
    must not be double-bookkept.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        super().__init__(name, help, labelnames)
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, self.help)

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            self._fn = None

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        return fn()  # outside the lock: callbacks may take other locks

    def _render(self, lines: list[str]) -> None:
        for labelvalues, child in self._items():
            lines.append(
                f"{self.name}{_label_suffix(self.labelnames, labelvalues)} "
                f"{_format_value(child.value)}"
            )

    def _summary(self):
        if not self.labelnames:
            return self.value
        return {",".join(lv): child.value for lv, child in sorted(self._items())}


class Histogram(_LabeledMetric):
    """A log-bucketed distribution with fixed, mergeable boundaries.

    ``buckets`` are the upper bounds of each bucket (ascending); an
    implicit overflow bucket catches everything beyond the last bound.
    Because the boundaries are fixed at construction, two histograms with
    equal boundaries merge by element-wise addition of their count
    vectors (:meth:`merge`) -- the property that makes per-process and
    per-shard latency histograms foldable into fleet-wide ones without
    rebinning.

    Percentiles (:meth:`percentile`) are derived from the bucket counts:
    the reported value is the upper bound of the bucket containing the
    requested rank, i.e. a guaranteed overestimate by at most one bucket
    width (a factor of 2 under the default boundaries).  Observations in
    the overflow bucket report the last finite bound.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"buckets must be ascending and non-empty, got {bounds!r}")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # + overflow
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, buckets=self.bounds)

    def observe(self, value: float) -> None:
        i = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[i] += 1
            self._sum += value
            self._count += 1

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's counts into this one (vector add)."""
        if other.bounds != self.bounds:
            raise ValueError(
                "histograms merge only over identical boundaries: "
                f"{self.bounds!r} != {other.bounds!r}"
            )
        counts, total, summed = other.snapshot()
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._count += total
            self._sum += summed

    def snapshot(self) -> tuple[list[int], int, float]:
        """(per-bucket counts incl. overflow, total count, value sum)."""
        with self._lock:
            return list(self._counts), self._count, self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]) as a bucket upper bound."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        counts, total, _ = self.snapshot()
        if total == 0:
            return 0.0
        rank = max(1, int(q * total + 0.5))
        cumulative = 0
        for i, c in enumerate(counts):
            cumulative += c
            if cumulative >= rank:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]  # unreachable; counts sum to total

    @property
    def mean(self) -> float:
        _, total, summed = self.snapshot()
        return summed / total if total else 0.0

    def _render(self, lines: list[str]) -> None:
        for labelvalues, child in self._items():
            counts, total, summed = child.snapshot()
            cumulative = 0
            for bound, c in zip(self.bounds, counts):
                cumulative += c
                suffix = _label_suffix(
                    self.labelnames + ("le",),
                    labelvalues + (_format_value(bound),),
                )
                lines.append(f"{self.name}_bucket{suffix} {cumulative}")
            suffix = _label_suffix(self.labelnames + ("le",), labelvalues + ("+Inf",))
            lines.append(f"{self.name}_bucket{suffix} {total}")
            plain = _label_suffix(self.labelnames, labelvalues)
            lines.append(f"{self.name}_sum{plain} {_format_value(summed)}")
            lines.append(f"{self.name}_count{plain} {total}")

    def _summary(self):
        def one(child: "Histogram"):
            _, total, summed = child.snapshot()
            return {
                "count": total,
                "mean": round(summed / total, 4) if total else 0.0,
                "p50": child.percentile(0.50),
                "p90": child.percentile(0.90),
                "p99": child.percentile(0.99),
            }

        if not self.labelnames:
            return one(self)
        return {",".join(lv): one(child) for lv, child in sorted(self._items())}


class MetricsRegistry:
    """A named collection of metrics behind one exposition endpoint.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the serving
    layers (HTTP server, service facade, cache, dispatcher) can each ask
    for their instruments against one shared registry without
    coordinating construction order.  Re-declaring a name with a
    different type (or different histogram boundaries) is a programming
    error and raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _LabeledMetric] = {}

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, asked for {tuple(labelnames)}"
                    )
                if cls is Histogram and "buckets" in kwargs:
                    wanted = tuple(float(b) for b in kwargs["buckets"])
                    if existing.bounds != wanted:
                        raise ValueError(
                            f"histogram {name!r} already registered with "
                            "different bucket boundaries"
                        )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, tuple(labelnames))

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, tuple(labelnames), buckets=tuple(buckets)
        )

    def get(self, name: str) -> _LabeledMetric | None:
        with self._lock:
            return self._metrics.get(name)

    def __iter__(self):
        with self._lock:
            return iter(sorted(self._metrics.items()))

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for name, metric in self:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            metric._render(lines)
        return "\n".join(lines) + "\n"

    def summary(self) -> dict:
        """Plain-dict digest for ``/stats``: values, and histogram
        count/mean/p50/p90/p99 per label combination."""
        return {name: metric._summary() for name, metric in self}
