"""Observability: metrics, trace spans, and per-request cost attribution.

The serving stack's optimisations (result cache, micro-batching
dispatcher, batch query engine) deliberately decouple requests from the
work done on their behalf -- which is exactly what makes them fast and
exactly what makes them opaque.  This package restores visibility
without touching the hot paths' semantics:

* :mod:`~repro.obs.metrics` -- process-wide counters, gauges, and
  log-bucketed **mergeable** histograms behind a
  :class:`~repro.obs.metrics.MetricsRegistry`; rendered as Prometheus
  text exposition by ``GET /metrics`` and summarised (p50/p90/p99) into
  ``/stats``;
* :mod:`~repro.obs.tracing` -- ``contextvars``-propagated span trees per
  request, plus batch cost attribution: the compdist/page-access delta of
  every batch execution is attributed back to the requests that coalesced
  into it -- exactly when alone, proportionally (sum-exact) when shared.

Stdlib-only, off by default, and CI-gated at <= 5% throughput overhead
when fully on (``benchmarks/bench_telemetry_overhead.py``).
"""

from .metrics import (
    BATCH_SIZE_BUCKETS,
    BYTE_SIZE_BUCKETS,
    Counter,
    DEFAULT_LATENCY_BUCKETS_MS,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
)
from .tracing import (
    Span,
    active,
    add_event,
    attribution_scope,
    batch_execution,
    current_span,
    span,
    start_trace,
)

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "BYTE_SIZE_BUCKETS",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "active",
    "add_event",
    "attribution_scope",
    "batch_execution",
    "current_span",
    "exponential_buckets",
    "span",
    "start_trace",
]
