"""Axis-aligned rectangle (MBB) algebra in pivot space.

The OmniR-tree indexes mapped vectors I(o) in R^l; its rectangles are minimum
bounding boxes over those vectors.  Distances between a query's mapped point
and a rectangle are measured in the L-infinity metric because
max_i |d(q,p_i) - v_i| is the triangle-inequality lower bound of d(q, o) --
see Lemma 1 and :func:`repro.core.pivot_filter.mbb_min_dist`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Rect"]


class Rect:
    """Immutable axis-aligned box [lows, highs] in R^l."""

    __slots__ = ("lows", "highs")

    def __init__(self, lows, highs):
        self.lows = np.asarray(lows, dtype=np.float64)
        self.highs = np.asarray(highs, dtype=np.float64)
        if self.lows.shape != self.highs.shape:
            raise ValueError("lows and highs must have the same shape")
        if np.any(self.lows > self.highs):
            raise ValueError("lows must not exceed highs")

    @classmethod
    def from_point(cls, point) -> "Rect":
        point = np.asarray(point, dtype=np.float64)
        return cls(point, point.copy())

    @classmethod
    def union_of(cls, rects: list["Rect"]) -> "Rect":
        if not rects:
            raise ValueError("union of zero rectangles")
        lows = np.minimum.reduce([r.lows for r in rects])
        highs = np.maximum.reduce([r.highs for r in rects])
        return cls(lows, highs)

    @classmethod
    def bounding_points(cls, points) -> "Rect":
        mat = np.asarray(points, dtype=np.float64)
        if mat.ndim == 1:
            mat = mat.reshape(1, -1)
        return cls(mat.min(axis=0), mat.max(axis=0))

    @property
    def dims(self) -> int:
        return self.lows.shape[0]

    def expanded(self, other: "Rect") -> "Rect":
        return Rect(np.minimum(self.lows, other.lows), np.maximum(self.highs, other.highs))

    def expanded_point(self, point) -> "Rect":
        point = np.asarray(point, dtype=np.float64)
        return Rect(np.minimum(self.lows, point), np.maximum(self.highs, point))

    def intersects(self, other: "Rect") -> bool:
        return bool(np.all(self.lows <= other.highs) and np.all(other.lows <= self.highs))

    def contains_point(self, point) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(np.all(self.lows <= point) and np.all(point <= self.highs))

    def contains_rect(self, other: "Rect") -> bool:
        return bool(np.all(self.lows <= other.lows) and np.all(other.highs <= self.highs))

    def margin(self) -> float:
        """Sum of side lengths (used by split heuristics)."""
        return float((self.highs - self.lows).sum())

    def volume(self) -> float:
        return float(np.prod(self.highs - self.lows))

    def enlargement(self, point) -> float:
        """Margin growth needed to absorb ``point`` (choose-subtree metric).

        Margin (perimeter) rather than volume: pivot-space boxes are often
        degenerate (zero extent in some dimension), where volume-based
        heuristics break down.
        """
        point = np.asarray(point, dtype=np.float64)
        new_lows = np.minimum(self.lows, point)
        new_highs = np.maximum(self.highs, point)
        return float((new_highs - new_lows).sum() - (self.highs - self.lows).sum())

    def min_dist_linf(self, point) -> float:
        """L-infinity distance from a point to the box (0 when inside)."""
        point = np.asarray(point, dtype=np.float64)
        gaps = np.maximum(np.maximum(self.lows - point, point - self.highs), 0.0)
        return float(gaps.max()) if gaps.size else 0.0

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Rect)
            and np.array_equal(self.lows, other.lows)
            and np.array_equal(self.highs, other.highs)
        )

    def __hash__(self):  # pragma: no cover - Rects are not dict keys in hot paths
        return hash((self.lows.tobytes(), self.highs.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Rect({self.lows.tolist()}, {self.highs.tolist()})"
