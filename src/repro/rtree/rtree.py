"""Paged R-tree over points in pivot space (the OmniR-tree's engine).

Leaves store (point, payload) entries -- the point is a mapped vector I(o),
the payload an object id or RAF pointer.  Internal nodes store child page ids
with their MBBs.  Supported operations:

* STR (sort-tile-recursive) bulk load -- the construction path,
* insert with least-margin-enlargement choose-subtree and quadratic split,
* delete with condense-and-reinsert,
* rectangle range search (SR(q) intersection, Lemma 1),
* best-first incremental nearest search under the L-infinity mindist, which
  lower-bounds the metric distance d(q, o) (drives MkNNQ).

All node traffic flows through the shared :class:`~repro.storage.pager.Pager`
and is therefore counted as page accesses.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..storage.pager import Pager
from .geometry import Rect

__all__ = ["RTree", "RLeafNode", "RInternalNode"]


@dataclass
class RLeafNode:
    points: list = field(default_factory=list)  # np.ndarray per entry
    payloads: list = field(default_factory=list)

    is_leaf = True

    def __len__(self) -> int:
        return len(self.points)

    def mbb(self) -> Rect:
        return Rect.bounding_points(np.asarray(self.points))


@dataclass
class RInternalNode:
    children: list = field(default_factory=list)  # page ids
    rects: list = field(default_factory=list)  # Rect per child

    is_leaf = False

    def __len__(self) -> int:
        return len(self.children)

    def mbb(self) -> Rect:
        return Rect.union_of(self.rects)


class RTree:
    """See module docstring."""

    def __init__(
        self,
        pager: Pager,
        dims: int,
        leaf_capacity: int | None = None,
        internal_capacity: int | None = None,
    ):
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        self.pager = pager
        self.dims = dims
        point_bytes = 8 * dims + 24
        self.leaf_capacity = leaf_capacity or max(
            4, (pager.page_size - 64) // point_bytes
        )
        self.internal_capacity = internal_capacity or max(
            4, (pager.page_size - 64) // (2 * 8 * dims + 32)
        )
        self.root_page = pager.allocate()
        self.height = 1
        self._size = 0
        pager.write(self.root_page, RLeafNode())

    def __len__(self) -> int:
        return self._size

    def _min_fill(self, capacity: int) -> int:
        return max(1, int(capacity * 0.4))

    # -- bulk load (STR) ----------------------------------------------------

    def bulk_load(self, points, payloads) -> None:
        """Sort-Tile-Recursive packing of ``points`` (requires empty tree)."""
        if self._size:
            raise RuntimeError("bulk_load requires an empty tree")
        points = np.asarray(points, dtype=np.float64)
        payloads = list(payloads)
        if points.ndim != 2 or points.shape[1] != self.dims:
            raise ValueError(f"points must be n x {self.dims}")
        if len(points) != len(payloads):
            raise ValueError("points and payloads must align")
        if len(points) == 0:
            return
        self.pager.free(self.root_page)

        order = self._str_order(points, self.leaf_capacity)
        level: list[tuple[int, Rect]] = []
        for chunk in self._chunks(order, self.leaf_capacity):
            node = RLeafNode(
                points=[points[i] for i in chunk],
                payloads=[payloads[i] for i in chunk],
            )
            page = self.pager.allocate()
            self.pager.write(page, node)
            level.append((page, node.mbb()))
        self.height = 1
        while len(level) > 1:
            centers = np.asarray(
                [(rect.lows + rect.highs) / 2.0 for _, rect in level]
            )
            order = self._str_order(centers, self.internal_capacity)
            next_level = []
            for chunk in self._chunks(order, self.internal_capacity):
                node = RInternalNode(
                    children=[level[i][0] for i in chunk],
                    rects=[level[i][1] for i in chunk],
                )
                page = self.pager.allocate()
                self.pager.write(page, node)
                next_level.append((page, node.mbb()))
            level = next_level
            self.height += 1
        self.root_page = level[0][0]
        self._size = len(points)

    @staticmethod
    def _chunks(order: np.ndarray, size: int) -> Iterator[list[int]]:
        for i in range(0, len(order), size):
            yield [int(j) for j in order[i : i + size]]

    @staticmethod
    def _str_order(points: np.ndarray, capacity: int) -> np.ndarray:
        """STR ordering: sort by dim 0, slice, sort slices by dim 1, ..."""
        n, dims = points.shape
        n_leaves = max(1, math.ceil(n / capacity))
        order = np.argsort(points[:, 0], kind="stable")
        if dims == 1 or n_leaves == 1:
            return order
        slices = max(1, math.ceil(n_leaves ** (1.0 / dims)))
        slice_size = max(1, math.ceil(n / slices))
        pieces = []
        for i in range(0, n, slice_size):
            piece = order[i : i + slice_size]
            inner = points[piece][:, 1 % dims]
            pieces.append(piece[np.argsort(inner, kind="stable")])
        return np.concatenate(pieces)

    # -- insert -------------------------------------------------------------

    def insert(self, point, payload) -> None:
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.dims,):
            raise ValueError(f"point must have {self.dims} dims")
        path = self._choose_leaf(point)
        page_id, node = path[-1]
        node.points.append(point)
        node.payloads.append(payload)
        self._size += 1
        self._handle_overflow(path)

    def _choose_leaf(self, point) -> list[tuple[int, Any]]:
        path = []
        page_id = self.root_page
        node = self.pager.read(page_id)
        path.append((page_id, node))
        while not node.is_leaf:
            best, best_cost, best_margin = 0, float("inf"), float("inf")
            for i, rect in enumerate(node.rects):
                cost = rect.enlargement(point)
                margin = rect.margin()
                if cost < best_cost or (cost == best_cost and margin < best_margin):
                    best, best_cost, best_margin = i, cost, margin
            page_id = node.children[best]
            node = self.pager.read(page_id)
            path.append((page_id, node))
        return path

    def _handle_overflow(self, path: list[tuple[int, Any]]) -> None:
        # write the modified leaf, splitting as needed, then fix parents
        child_split: tuple[int, Rect, int, Rect] | None = None
        for level in range(len(path) - 1, -1, -1):
            page_id, node = path[level]
            if child_split is not None:
                left_page, left_rect, right_page, right_rect = child_split
                pos = node.children.index(left_page)
                node.rects[pos] = left_rect
                node.children.append(right_page)
                node.rects.append(right_rect)
                child_split = None
            capacity = self.leaf_capacity if node.is_leaf else self.internal_capacity
            if len(node) <= capacity:
                self.pager.write(page_id, node)
                self._refresh_parent_rects(path, level)
                return
            child_split = self._split(page_id, node)
        if child_split is not None:
            left_page, left_rect, right_page, right_rect = child_split
            new_root = RInternalNode(
                children=[left_page, right_page], rects=[left_rect, right_rect]
            )
            self.root_page = self.pager.allocate()
            self.pager.write(self.root_page, new_root)
            self.height += 1

    def _refresh_parent_rects(self, path: list[tuple[int, Any]], level: int) -> None:
        child_page, child = path[level]
        rect = child.mbb()
        for upper in range(level - 1, -1, -1):
            parent_page, parent = path[upper]
            pos = parent.children.index(child_page)
            if parent.rects[pos].contains_rect(rect) and rect.contains_rect(
                parent.rects[pos]
            ):
                return
            parent.rects[pos] = rect
            self.pager.write(parent_page, parent)
            child_page, rect = parent_page, parent.mbb()

    def _split(self, page_id: int, node) -> tuple[int, Rect, int, Rect]:
        """Quadratic split (Guttman); returns (left page, rect, right page, rect)."""
        if node.is_leaf:
            rects = [Rect.from_point(p) for p in node.points]
            entries = list(zip(node.points, node.payloads))
        else:
            rects = list(node.rects)
            entries = list(zip(node.children, node.rects))
        seed_a, seed_b = self._pick_seeds(rects)
        groups: tuple[list[int], list[int]] = ([seed_a], [seed_b])
        group_rects = [rects[seed_a], rects[seed_b]]
        remaining = [i for i in range(len(entries)) if i not in (seed_a, seed_b)]
        capacity = self.leaf_capacity if node.is_leaf else self.internal_capacity
        min_fill = self._min_fill(capacity)
        while remaining:
            # force-assign when one group must take everything left
            for g in (0, 1):
                if len(groups[g]) + len(remaining) == min_fill:
                    groups[g].extend(remaining)
                    for i in remaining:
                        group_rects[g] = group_rects[g].expanded(rects[i])
                    remaining = []
                    break
            if not remaining:
                break
            # pick the entry with the greatest preference difference
            best_i, best_diff, best_g = remaining[0], -1.0, 0
            for i in remaining:
                d0 = group_rects[0].expanded(rects[i]).margin() - group_rects[0].margin()
                d1 = group_rects[1].expanded(rects[i]).margin() - group_rects[1].margin()
                diff = abs(d0 - d1)
                if diff > best_diff:
                    best_i, best_diff, best_g = i, diff, 0 if d0 < d1 else 1
            remaining.remove(best_i)
            groups[best_g].append(best_i)
            group_rects[best_g] = group_rects[best_g].expanded(rects[best_i])

        right_page = self.pager.allocate()
        if node.is_leaf:
            left = RLeafNode(
                points=[entries[i][0] for i in groups[0]],
                payloads=[entries[i][1] for i in groups[0]],
            )
            right = RLeafNode(
                points=[entries[i][0] for i in groups[1]],
                payloads=[entries[i][1] for i in groups[1]],
            )
        else:
            left = RInternalNode(
                children=[entries[i][0] for i in groups[0]],
                rects=[entries[i][1] for i in groups[0]],
            )
            right = RInternalNode(
                children=[entries[i][0] for i in groups[1]],
                rects=[entries[i][1] for i in groups[1]],
            )
        self.pager.write(page_id, left)
        self.pager.write(right_page, right)
        return page_id, left.mbb(), right_page, right.mbb()

    @staticmethod
    def _pick_seeds(rects: list[Rect]) -> tuple[int, int]:
        best = (0, 1 if len(rects) > 1 else 0)
        best_waste = -float("inf")
        for i, j in itertools.combinations(range(len(rects)), 2):
            waste = rects[i].expanded(rects[j]).margin() - rects[i].margin() - rects[j].margin()
            if waste > best_waste:
                best_waste, best = waste, (i, j)
        return best

    # -- delete -----------------------------------------------------------------

    def delete(self, point, payload) -> bool:
        """Remove the entry matching (point, payload); condense + reinsert."""
        point = np.asarray(point, dtype=np.float64)
        found = self._find_entry(self.root_page, point, payload, parents=[])
        if found is None:
            return False
        path = found
        leaf_page, leaf = path[-1]
        for i, (p, pl) in enumerate(zip(leaf.points, leaf.payloads)):
            if pl == payload and np.array_equal(p, point):
                del leaf.points[i]
                del leaf.payloads[i]
                break
        self._size -= 1
        self.pager.write(leaf_page, leaf)
        self._condense(path)
        return True

    def _find_entry(self, page_id: int, point, payload, parents):
        node = self.pager.read(page_id)
        here = parents + [(page_id, node)]
        if node.is_leaf:
            for p, pl in zip(node.points, node.payloads):
                if pl == payload and np.array_equal(p, point):
                    return here
            return None
        for child, rect in zip(node.children, node.rects):
            if rect.contains_point(point):
                result = self._find_entry(child, point, payload, here)
                if result is not None:
                    return result
        return None

    def _condense(self, path: list[tuple[int, Any]]) -> None:
        orphans: list[tuple[np.ndarray, Any]] = []
        for level in range(len(path) - 1, 0, -1):
            page_id, node = path[level]
            parent_page, parent = path[level - 1]
            capacity = self.leaf_capacity if node.is_leaf else self.internal_capacity
            if len(node) < self._min_fill(capacity):
                pos = parent.children.index(page_id)
                del parent.children[pos]
                del parent.rects[pos]
                orphans.extend(self._collect_entries(node))
                self.pager.free(page_id)
                self.pager.write(parent_page, parent)
            else:
                self.pager.write(page_id, node)
                self._refresh_parent_rects(path, level)
                break
        # shrink root if needed
        root = self.pager.read(self.root_page)
        if not root.is_leaf and len(root.children) == 1:
            old = self.root_page
            self.root_page = root.children[0]
            self.pager.free(old)
            self.height -= 1
        elif not root.is_leaf and len(root.children) == 0:
            self.pager.write(self.root_page, RLeafNode())
            self.height = 1
        for point, payload in orphans:
            self._size -= 1  # reinsert re-increments
            self.insert(point, payload)

    def _collect_entries(self, node) -> list[tuple[np.ndarray, Any]]:
        if node.is_leaf:
            return list(zip(node.points, node.payloads))
        collected = []
        for child in node.children:
            collected.extend(self._collect_entries(self.pager.read(child)))
            self.pager.free(child)
        return collected

    # -- queries -------------------------------------------------------------------

    def search_rect(self, rect: Rect) -> list[tuple[np.ndarray, Any]]:
        """All (point, payload) entries whose point lies inside ``rect``."""
        results: list[tuple[np.ndarray, Any]] = []
        stack = [self.root_page]
        while stack:
            node = self.pager.read(stack.pop())
            if node.is_leaf:
                for point, payload in zip(node.points, node.payloads):
                    if rect.contains_point(point):
                        results.append((point, payload))
            else:
                for child, child_rect in zip(node.children, node.rects):
                    if rect.intersects(child_rect):
                        stack.append(child)
        return results

    def nearest_linf(self, point) -> Iterator[tuple[float, np.ndarray, Any]]:
        """Best-first enumeration of entries by L-infinity mindist to ``point``.

        Yields (mindist, entry_point, payload) in nondecreasing mindist
        order; the caller stops consuming once its search radius is beaten,
        so node reads are lazy and counted only when popped.
        """
        point = np.asarray(point, dtype=np.float64)
        counter = itertools.count()
        heap: list[tuple[float, int, bool, Any]] = []
        heapq.heappush(heap, (0.0, next(counter), False, self.root_page))
        while heap:
            dist, _, is_entry, payload = heapq.heappop(heap)
            if is_entry:
                entry_point, entry_payload = payload
                yield dist, entry_point, entry_payload
                continue
            node = self.pager.read(payload)
            if node.is_leaf:
                for p, pl in zip(node.points, node.payloads):
                    d = float(np.abs(p - point).max()) if p.size else 0.0
                    heapq.heappush(heap, (d, next(counter), True, (p, pl)))
            else:
                for child, rect in zip(node.children, node.rects):
                    heapq.heappush(
                        heap,
                        (rect.min_dist_linf(point), next(counter), False, child),
                    )

    # -- diagnostics ------------------------------------------------------------

    def check_invariants(self) -> None:
        count = self._check_node(self.root_page)[0]
        assert count == self._size, "size counter out of sync"

    def _check_node(self, page_id: int) -> tuple[int, Rect, int]:
        node = self.pager.read(page_id)
        if node.is_leaf:
            if not node.points:
                return 0, Rect([0.0] * self.dims, [0.0] * self.dims), 1
            return len(node.points), node.mbb(), 1
        assert len(node.children) == len(node.rects)
        total = 0
        depths = set()
        for child, rect in zip(node.children, node.rects):
            child_count, child_mbb, child_depth = self._check_node(child)
            if child_count:
                assert rect.contains_rect(child_mbb), "child MBB not contained"
            total += child_count
            depths.add(child_depth)
        assert len(depths) == 1, "unbalanced R-tree"
        return total, node.mbb(), depths.pop() + 1
