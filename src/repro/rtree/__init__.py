"""Paged R-tree substrate (OmniR-tree)."""

from .geometry import Rect
from .rtree import RInternalNode, RLeafNode, RTree

__all__ = ["Rect", "RInternalNode", "RLeafNode", "RTree"]
