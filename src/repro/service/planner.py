"""QueryPlanner: route each query to the predicted-cheapest catalog member.

The middle layer of the catalog -> planner -> executor stack.  Every
cache-missed query (or batch partition) asks the planner which member
should run it; every executed batch feeds its measured
:class:`~repro.core.counters.CostCounters` delta back as a model
observation.  The loop is closed and deterministic to seed:

* **route** -- members with no observations yet are tried first (forced
  exploration, round-robin over the unmodeled set), then an
  epsilon-greedy coin occasionally picks a random member so the models
  keep tracking drift (data growth, page-cache temperature, reloads);
  otherwise the member with the lowest predicted per-query wall cost
  wins.  The choice and its predicted cost are stamped on the current
  trace span, so slow-query logs show *why* an index was picked.
* **observe** -- records the batch's per-query compdists / page reads /
  wall milliseconds against the member that ran it, and scores the
  prediction it would have made beforehand: a relative wall-time error
  above 50% counts as a mispredict (``mispredict_ratio`` in stats and
  metrics).
* **calibrate** -- a deterministic seed-time pass: sample queries from
  the hosted dataset, derive radii from quantiles of (uncounted) sampled
  pairwise distances when none are given, run every member x kind x
  parameter once as a full batch and once as a single query, and record
  all of it.  After calibration every member has a fitted model over the
  parameter range, so the very first routed query already has a real
  cost ordering instead of cold-start guesses.

Observability (when a :class:`~repro.obs.metrics.MetricsRegistry` is
given): ``repro_planner_route_total{index=...}``,
``repro_planner_mispredict_ratio``, and a per-index routed-batch latency
histogram ``repro_planner_routed_batch_ms{index=...}``.
"""

from __future__ import annotations

import random
import threading
from time import perf_counter

import numpy as np

from ..obs import tracing
from ..obs.metrics import MetricsRegistry
from .catalog import IndexCatalog
from .costmodel import CostModel

__all__ = ["QueryPlanner"]

# relative wall-time error above which an observation scores as a mispredict
MISPREDICT_RELATIVE_ERROR = 0.5


class QueryPlanner:
    """Cost-based router over an :class:`IndexCatalog` (see module docs)."""

    def __init__(
        self,
        catalog: IndexCatalog,
        model: CostModel | None = None,
        epsilon: float = 0.05,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
    ):
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.catalog = catalog
        self.model = model if model is not None else CostModel()
        self.epsilon = epsilon
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._routes: dict[str, int] = {}
        self._explored = 0
        self._observations = 0
        self._mispredicts = 0
        self._route_total = self._routed_ms = None
        if metrics is not None:
            self._route_total = metrics.counter(
                "repro_planner_route_total",
                "Queries/partitions routed to each catalog member.",
                labelnames=("index",),
            )
            self._routed_ms = metrics.histogram(
                "repro_planner_routed_batch_ms",
                "Wall milliseconds of each routed batch execution, per member.",
                labelnames=("index",),
            )
            metrics.gauge(
                "repro_planner_mispredict_ratio",
                "Fraction of observed batches whose predicted wall cost was "
                "off by more than 50% relative error.",
            ).set_function(self.mispredict_ratio)

    # -- routing -------------------------------------------------------------

    def route(self, kind: str, param: float, batch_size: int = 1) -> str:
        """Pick the member to run one query / batch partition."""
        ids = self.catalog.ids()
        predicted: float | None = None
        if len(ids) == 1:
            choice = ids[0]
        else:
            cardinality = len(self.catalog.primary.index.space)
            costs = {
                member_id: self.model.cost(
                    member_id, kind, param, batch_size, cardinality
                )
                for member_id in ids
            }
            unmodeled = [member_id for member_id in ids if costs[member_id] is None]
            with self._lock:
                if unmodeled:
                    # forced exploration: an unmodeled member is unroutable
                    # by cost; spread the first observations round-robin
                    choice = unmodeled[self._explored % len(unmodeled)]
                    self._explored += 1
                elif self.epsilon > 0.0 and self._rng.random() < self.epsilon:
                    choice = ids[self._rng.randrange(len(ids))]
                    self._explored += 1
                    predicted = costs[choice]
                else:
                    choice = min(ids, key=lambda member_id: costs[member_id])
                    predicted = costs[choice]
        with self._lock:
            self._routes[choice] = self._routes.get(choice, 0) + 1
        if self._route_total is not None:
            self._route_total.labels(choice).inc()
        span = tracing.current_span()
        if span is not None:
            # why this index: the slow-query log's span tree carries the
            # route choice and the cost the model promised
            span.meta["planner"] = {
                "index": choice,
                "predicted_ms_per_query": (
                    None if predicted is None else round(predicted, 4)
                ),
            }
        return choice

    # -- feedback ------------------------------------------------------------

    def observe(
        self,
        index_id: str,
        kind: str,
        param: float,
        batch_size: int,
        cardinality: int,
        compdists: float,
        page_reads: float,
        wall_ms: float,
    ) -> None:
        """Feed one executed batch's measured cost back into the model."""
        batch_size = max(1, int(batch_size))
        predicted = self.model.cost(index_id, kind, param, batch_size, cardinality)
        self.model.record(
            index_id,
            kind,
            param,
            batch_size,
            cardinality,
            compdists,
            page_reads,
            wall_ms,
        )
        with self._lock:
            self._observations += 1
            if predicted is not None:
                actual = wall_ms / batch_size
                error = abs(predicted - actual) / max(actual, 1e-6)
                if error > MISPREDICT_RELATIVE_ERROR:
                    self._mispredicts += 1
        if self._routed_ms is not None:
            self._routed_ms.labels(index_id).observe(wall_ms)

    def mispredict_ratio(self) -> float:
        with self._lock:
            if self._observations == 0:
                return 0.0
            return self._mispredicts / self._observations

    # -- introspection -------------------------------------------------------

    def explain(self, kind: str, param: float, batch_size: int = 1) -> list[dict]:
        """Predicted vs measured cost per member for one query shape.

        One row per catalog member: the model's predicted per-query
        compdists / page reads / wall ms at ``(param, batch_size)``, the
        window means of what was actually measured, the observation
        count, and whether the planner would route there (``chosen``).
        """
        ids = self.catalog.ids()
        cardinality = len(self.catalog.primary.index.space)
        rows = []
        best_id, best_cost = None, None
        for member_id in ids:
            predicted = self.model.predict(
                member_id, kind, param, batch_size, cardinality
            )
            if predicted is not None and (
                best_cost is None or predicted["wall_ms"] < best_cost
            ):
                best_id, best_cost = member_id, predicted["wall_ms"]
            snap = self.catalog.member(member_id).counters.snapshot()
            rows.append(
                {
                    "index": member_id,
                    "kind": kind,
                    "param": float(param),
                    "predicted": predicted,
                    "measured": self.model.measured_means(member_id, kind),
                    "observations": self.model.n_observations(member_id, kind),
                    # lifetime staged-cascade decisions: how many objects each
                    # pruning stage decided for this member (zeros for members
                    # without a staged pruner)
                    "prune_stages": {
                        "prefix": snap.prune_prefix,
                        "refine": snap.prune_refine,
                        "validated": snap.prune_validated,
                        "ptolemaic": snap.prune_ptolemaic,
                    },
                }
            )
        for row in rows:
            row["chosen"] = row["index"] == best_id
        return rows

    def stats(self) -> dict:
        with self._lock:
            routes = dict(self._routes)
            explored = self._explored
            observations = self._observations
            mispredicts = self._mispredicts
        return {
            "members": self.catalog.ids(),
            "epsilon": self.epsilon,
            "routes": routes,
            "explored": explored,
            "observations": observations,
            "mispredicts": mispredicts,
            "mispredict_ratio": round(self.mispredict_ratio(), 4),
        }

    # -- seed-time calibration -----------------------------------------------

    def default_radii(self, n_pairs: int = 256, seed: int = 0) -> list[float]:
        """Radii at the 1%/5%/20% quantiles of sampled pairwise distances.

        Uses the dataset's raw (uncounted) metric so calibration setup
        never inflates any member's compdists.
        """
        dataset = self.catalog.primary.index.space.dataset
        n = len(dataset)
        rng = np.random.default_rng(seed)
        left = rng.integers(0, n, size=n_pairs)
        right = rng.integers(0, n, size=n_pairs)
        distance = dataset.distance
        dists = np.array(
            [
                distance(dataset[int(i)], dataset[int(j)])
                for i, j in zip(left, right)
                if int(i) != int(j)
            ],
            dtype=np.float64,
        )
        radii = sorted(
            {float(q) for q in np.quantile(dists, (0.01, 0.05, 0.20)) if q > 0}
        )
        return radii or [float(dists.max() / 4 or 1.0)]

    def calibrate(
        self,
        radii=None,
        ks=(10,),
        n_queries: int = 8,
        seed: int = 0,
    ) -> int:
        """Deterministic seed-time pass: observe every member everywhere.

        Samples ``n_queries`` dataset objects as queries, then runs each
        member x kind x parameter at three batch sizes (full, half,
        single -- the batch-size feature needs the spread, and three
        points per parameter push a two-radius calibration past the
        model's fit threshold).  Returns the number of observations
        recorded.  The distance work is real and counts into each
        member's own counters -- exactly like served traffic would.
        """
        dataset = self.catalog.primary.index.space.dataset
        rng = np.random.default_rng(seed)
        picks = rng.choice(len(dataset), size=min(n_queries, len(dataset)), replace=False)
        queries = [dataset[int(i)] for i in picks]
        if radii is None:
            radii = self.default_radii(seed=seed)
        tasks = [("range", float(r)) for r in radii]
        tasks += [("knn", float(k)) for k in ks or ()]
        recorded = 0
        for member in self.catalog.members():
            cardinality = len(member.index.space)
            sizes = sorted(
                {len(queries), max(1, len(queries) // 2), 1}, reverse=True
            )
            for kind, param in tasks:
                for batch in (queries[:size] for size in sizes):
                    before = member.counters.counts()
                    t0 = perf_counter()
                    if kind == "range":
                        member.index.range_query_many(batch, param)
                    else:
                        member.index.knn_query_many(batch, int(param))
                    wall_ms = (perf_counter() - t0) * 1000.0
                    delta = member.counters.delta_since(before)
                    self.observe(
                        member.index_id,
                        kind,
                        param,
                        len(batch),
                        cardinality,
                        delta.distance_computations,
                        delta.page_reads,
                        wall_ms,
                    )
                    recorded += 1
        return recorded
