"""LRU result cache for repeated metric queries.

The paper reuses the same query samples across every configuration of
Section 6, and production query streams are famously skewed -- so the
cheapest query is the one answered from memory.  This cache sits in front
of ``range_query_many`` / ``knn_query_many`` (the service layer consults
it per query before dispatching the misses as one vectorised batch) and is
keyed on ``(index_id, kind, query, radius-or-k)``.

Hits, misses, and evictions are folded into the shared
:class:`~repro.core.counters.CostCounters` alongside the paper's
compdists/PA metrics, so one ``measure()`` block shows exactly how much
work the cache absorbed.

Correctness notes:

* keys canonicalise the raw query object (numpy vectors hash by dtype,
  shape, and bytes; strings and tuples by value), so two equal queries hit
  the same entry no matter how the caller built them;
* cached lists are copied on the way out -- callers may mutate their
  results without corrupting the cache;
* any index mutation (insert/delete) must invalidate the index's entries;
  the service facade does this automatically, preferring
  :meth:`~QueryResultCache.invalidate_affected` (drop only the entries
  whose radius ball -- or kNN kth-distance ball -- could contain the
  mutated object) and falling back to the full per-index
  :meth:`~QueryResultCache.invalidate` when the bound is unavailable.
  Either form bumps the index's *generation*, and a ``put`` carrying a
  stale generation is dropped -- so an answer computed before a
  concurrent mutation can never be cached after it;
* all operations hold one internal lock: the service's concurrent caller
  threads, the dispatcher worker, and mutating callers share this object.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Hashable

import numpy as np

from ..core.counters import CostCounters
from ..core.queries import Neighbor
from ..obs.metrics import MetricsRegistry

__all__ = ["QueryResultCache", "query_key"]

# flat per-entry accounting overhead: key tuple, OrderedDict slot, result
# list header -- a round constant, deliberately not a profiler
_ENTRY_OVERHEAD = 256


def _entry_bytes(result: list, query_obj) -> int:
    """Approximate retained bytes of one cache entry.

    Counted as the columnar payload of the answer (8 bytes per id, 16 per
    neighbor -- the binary wire sizes) plus the frozen query's buffer and
    a flat per-entry overhead.  A huge range result (thousands of ids) is
    charged accordingly; a 5-NN answer stays cheap -- which is exactly the
    asymmetry entry-count capacities cannot see.
    """
    per = 16 if result and isinstance(result[0], Neighbor) else 8
    nbytes = _ENTRY_OVERHEAD + per * len(result)
    if isinstance(query_obj, np.ndarray):
        nbytes += int(query_obj.nbytes)
    elif isinstance(query_obj, (str, bytes)):
        nbytes += len(query_obj)
    return nbytes


def query_key(query_obj) -> Hashable:
    """A hashable canonical key for a raw query object.

    Numpy arrays (the vector datasets) are keyed by dtype, shape, and raw
    bytes; lists and tuples recurse; everything hashable (strings for the
    Words workload, ints, floats) is used as-is.
    """
    if isinstance(query_obj, np.ndarray):
        return ("ndarray", query_obj.dtype.str, query_obj.shape, query_obj.tobytes())
    if isinstance(query_obj, (list, tuple)):
        return ("seq", tuple(query_key(item) for item in query_obj))
    if isinstance(query_obj, (np.integer, np.floating)):
        return query_obj.item()
    return query_obj


def _freeze_query(query_obj):
    """A private copy of a query object, safe to keep across calls.

    Callers may reuse and mutate their query buffers after a call returns;
    the ball tests of :meth:`QueryResultCache.invalidate_affected` must see
    the value the answer was computed for, so mutable containers are copied
    on the way in (mirroring the structure :func:`query_key` canonicalises).
    """
    if isinstance(query_obj, np.ndarray):
        return query_obj.copy()
    if isinstance(query_obj, (list, tuple)):
        return type(query_obj)(_freeze_query(item) for item in query_obj)
    return query_obj


class QueryResultCache:
    """Bounded LRU mapping from (index, kind, query, parameter) to answers.

    Args:
        capacity: maximum number of cached results (entries);
            0 disables caching (every lookup is a miss, nothing is stored).
        counters: optional shared cost accumulator; hit/miss/eviction
            counts are added to it so cache behaviour shows up in the same
            measurements as compdists and PA.
        capacity_bytes: optional byte budget over the entries' accounted
            sizes (:func:`_entry_bytes`); when set, least-recently-used
            entries are evicted while the budget is exceeded -- so one
            huge range answer displaces proportionally many small kNN
            answers instead of counting as "one entry".  Both bounds
            apply when both are set; 0 disables caching.
        ttl_s: optional time-to-live in seconds.  A lookup that finds an
            entry older than the TTL drops it and counts as a **miss**
            (plus the ``expired`` stat), so long-running replicas serving
            a mutable corpus bound how stale a repeated answer can get.
            None (the default) keeps entries until evicted or
            invalidated; 0 expires everything immediately (every lookup
            misses, entries are still stored).
    """

    def __init__(
        self,
        capacity: int = 1024,
        counters: CostCounters | None = None,
        capacity_bytes: int | None = None,
        ttl_s: float | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError(f"capacity_bytes must be >= 0, got {capacity_bytes}")
        if ttl_s is not None and ttl_s < 0:
            raise ValueError(f"ttl_s must be >= 0, got {ttl_s}")
        self.capacity = capacity
        self.capacity_bytes = capacity_bytes
        self.ttl_s = ttl_s
        self.counters = counters
        # key -> (result list, raw query object or None, accounted bytes,
        # monotonic store stamp); the query object is what lets
        # invalidate_affected re-derive each entry's ball, the stamp is
        # what the TTL check ages entries by
        self._entries: OrderedDict[
            Hashable, tuple[list, object, int, float]
        ] = OrderedDict()
        self._used_bytes = 0
        self._generations: dict[str, int] = {}
        self._global_generation = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # entries dropped by a TTL check (each also counted as a miss)
        self.expired = 0
        # entries a partial invalidation proved unaffected and kept
        self.partial_survivors = 0
        self._m_hits = self._m_misses = self._m_evictions = None
        if metrics is not None:
            requests = metrics.counter(
                "repro_cache_requests_total",
                "Result-cache lookups by outcome.",
                labelnames=("outcome",),
            )
            self._m_hits = requests.labels("hit")
            self._m_misses = requests.labels("miss")
            self._m_evictions = metrics.counter(
                "repro_cache_evictions_total",
                "Result-cache entries evicted under capacity pressure "
                "(invalidations not counted).",
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def make_key(index_id: str, kind: str, query_obj, param) -> Hashable:
        """The full cache key for one query against one index.

        ``kind`` is ``"range"`` or ``"knn"``; ``param`` is the radius or k.
        Radii compare by exact float value -- a query at r=2.0 and r=2.5
        are distinct entries, exactly as the paper's per-selectivity runs.
        """
        return (index_id, kind, float(param), query_key(query_obj))

    def generation(self, index_id: str) -> int:
        """The index's invalidation epoch; bumped by every invalidate.

        Capture it *before* computing an answer and pass it to
        :meth:`put`: if a mutation invalidated the index in between, the
        stale answer is silently dropped instead of cached.
        """
        with self._lock:
            return self._global_generation + self._generations.get(index_id, 0)

    def get(self, key: Hashable):
        """The cached result list, or None on a miss (counted either way).

        An entry older than ``ttl_s`` is dropped on lookup and counted as
        a miss (and as ``expired``) -- expiry is lazy, so an entry that is
        never asked for again simply ages out of the LRU.
        """
        with self._lock:
            entry = self._entries.get(key)
            if (
                entry is not None
                and self.ttl_s is not None
                and time.monotonic() - entry[3] >= self.ttl_s
            ):
                self._entries.pop(key)
                self._used_bytes -= entry[2]
                self.expired += 1
                entry = None
            if entry is None:
                self.misses += 1
                counters = self.counters
                hit = False
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                counters = self.counters
                hit = True
                result = list(entry[0])
        if counters is not None:
            counters.add_cache_hit() if hit else counters.add_cache_miss()
        if hit:
            if self._m_hits is not None:
                self._m_hits.inc()
            return result
        if self._m_misses is not None:
            self._m_misses.inc()
        return None

    def put(
        self,
        key: Hashable,
        result: list,
        generation: int | None = None,
        query_obj=None,
    ) -> None:
        """Store a result list, evicting least-recently-used entries.

        ``generation`` (from :meth:`generation`, captured before the
        result was computed) makes the store conditional: a result that
        predates an invalidation of its index is dropped.  ``query_obj``
        (the raw query) enables :meth:`invalidate_affected` to keep this
        entry alive across mutations that provably cannot change it;
        entries stored without it are always dropped conservatively.
        """
        if self.capacity == 0 or self.capacity_bytes == 0:
            return
        frozen = _freeze_query(query_obj)
        nbytes = _entry_bytes(result, frozen)
        evicted = 0
        with self._lock:
            current = self._global_generation + self._generations.get(key[0], 0)
            if generation is not None and generation != current:
                return
            old = self._entries.pop(key, None)
            if old is not None:
                self._used_bytes -= old[2]
            self._entries[key] = (list(result), frozen, nbytes, time.monotonic())
            self._used_bytes += nbytes
            while self._entries and (
                len(self._entries) > self.capacity
                or (
                    self.capacity_bytes is not None
                    and self._used_bytes > self.capacity_bytes
                )
            ):
                _, victim = self._entries.popitem(last=False)
                self._used_bytes -= victim[2]
                self.evictions += 1
                evicted += 1
        if evicted:
            if self.counters is not None:
                self.counters.add_cache_eviction(evicted)
            if self._m_evictions is not None:
                self._m_evictions.inc(evicted)

    def invalidate(self, index_id: str | None = None) -> int:
        """Drop entries for one index (or all); returns how many were dropped.

        Mutating an index (insert/delete) changes its answers, so its
        cached results must go.  Bumps the affected generations so in-flight
        results computed before the mutation cannot be cached afterwards.
        Eviction stats do not count invalidations -- they measure capacity
        pressure, not correctness maintenance.
        """
        with self._lock:
            if index_id is None:
                dropped = len(self._entries)
                self._entries.clear()
                self._used_bytes = 0
                self._global_generation += 1
                return dropped
            doomed = [key for key in self._entries if key[0] == index_id]
            for key in doomed:
                self._used_bytes -= self._entries.pop(key)[2]
            self._generations[index_id] = self._generations.get(index_id, 0) + 1
            return len(doomed)

    def invalidate_affected(
        self,
        index_id: str,
        obj=None,
        object_id: int | None = None,
        distance=None,
    ) -> int:
        """Drop only the entries a mutation of one object could change.

        An insert of ``obj`` changes MRQ(q, r) only when d(q, obj) <= r,
        and MkNNQ(q, k) only when d(q, obj) is within the cached answer's
        kth-distance ball (or the answer holds fewer than k objects); a
        delete of ``object_id`` changes an answer only when that id is a
        member of it.  Everything else provably still holds and survives.

        Args:
            index_id: cache namespace of the mutated index.
            obj: the inserted object (enables the distance bound).  Pass
                it together with ``distance``.
            object_id: the deleted id (enables the membership check).
            distance: the *uncounted* metric callable ``d(a, b)`` -- cache
                maintenance must not inflate the paper's compdists.

        An entry is kept only when it is provably unaffected; entries
        stored without their query object, or checks that raise, drop
        conservatively.  When neither bound is available the whole index
        wipes, exactly like :meth:`invalidate`.  Either way the index's
        generation is bumped, so in-flight answers computed before the
        mutation are never cached after it.  Returns how many entries were
        dropped.
        """
        have_insert_bound = obj is not None and distance is not None
        have_delete_bound = object_id is not None
        if not have_insert_bound and not have_delete_bound:
            return self.invalidate(index_id)
        # bump first (in-flight pre-mutation answers can no longer be
        # cached), snapshot the index's entries, then run the -- possibly
        # expensive -- metric checks *outside* the lock so concurrent
        # get/put traffic is never stalled behind distance evaluations
        with self._lock:
            self._generations[index_id] = self._generations.get(index_id, 0) + 1
            candidates = [
                (key, entry)
                for key, entry in self._entries.items()
                if key[0] == index_id
            ]
        doomed = [
            key
            for key, (result, query_obj, _nbytes, _stamp) in candidates
            if not self._entry_unaffected(
                key, result, query_obj, obj, object_id, distance
            )
        ]
        doomed_keys = set(doomed)
        with self._lock:
            dropped = 0
            for key in doomed:
                # pop, not del: a concurrent post-mutation answer may have
                # replaced (or an eviction removed) the entry meanwhile --
                # dropping a fresh answer is harmless, missing keys are not
                victim = self._entries.pop(key, None)
                if victim is not None:
                    self._used_bytes -= victim[2]
                    dropped += 1
            # survivors are the entries this invalidation actually kept
            # alive: proved unaffected AND still the same entry object --
            # one concurrently evicted, or replaced by a fresh answer,
            # wasn't kept by the proof and must not be credited to it
            self.partial_survivors += sum(
                1
                for key, entry in candidates
                if key not in doomed_keys and self._entries.get(key) is entry
            )
        return dropped

    @staticmethod
    def _entry_unaffected(key, result, query_obj, obj, object_id, distance) -> bool:
        """True when the mutation provably leaves this entry's answer alone."""
        kind, param = key[1], key[2]
        try:
            if object_id is not None:
                # delete: the answer changes only if the victim was in it
                if kind == "range":
                    if object_id in result:
                        return False
                elif any(n.object_id == object_id for n in result):
                    return False
            if obj is not None:
                if query_obj is None or distance is None:
                    return False  # no ball to test against: conservative
                d = distance(query_obj, obj)
                if kind == "range":
                    if d <= param:
                        return False
                else:
                    # kNN: obj can enter only inside the kth-distance ball;
                    # a short answer (fewer than k objects known) always grows
                    if len(result) < int(param) or d <= result[-1].distance:
                        return False
            return True
        except Exception:
            return False  # any failed check drops the entry conservatively

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "cache_bytes": self._used_bytes,
                "capacity_bytes": self.capacity_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expired": self.expired,
                "ttl_s": self.ttl_s,
                "partial_survivors": self.partial_survivors,
                "hit_rate": round(self.hit_rate, 4),
            }
