"""LRU result cache for repeated metric queries.

The paper reuses the same query samples across every configuration of
Section 6, and production query streams are famously skewed -- so the
cheapest query is the one answered from memory.  This cache sits in front
of ``range_query_many`` / ``knn_query_many`` (the service layer consults
it per query before dispatching the misses as one vectorised batch) and is
keyed on ``(index_id, kind, query, radius-or-k)``.

Hits, misses, and evictions are folded into the shared
:class:`~repro.core.counters.CostCounters` alongside the paper's
compdists/PA metrics, so one ``measure()`` block shows exactly how much
work the cache absorbed.

Correctness notes:

* keys canonicalise the raw query object (numpy vectors hash by dtype,
  shape, and bytes; strings and tuples by value), so two equal queries hit
  the same entry no matter how the caller built them;
* cached lists are copied on the way out -- callers may mutate their
  results without corrupting the cache;
* any index mutation (insert/delete) must :meth:`~QueryResultCache.invalidate`
  the index's entries; the service facade does this automatically.  An
  invalidation also bumps the index's *generation*, and a ``put`` carrying
  a stale generation is dropped -- so an answer computed before a
  concurrent mutation can never be cached after it;
* all operations hold one internal lock: the service's concurrent caller
  threads, the dispatcher worker, and mutating callers share this object.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

import numpy as np

from ..core.counters import CostCounters

__all__ = ["QueryResultCache", "query_key"]


def query_key(query_obj) -> Hashable:
    """A hashable canonical key for a raw query object.

    Numpy arrays (the vector datasets) are keyed by dtype, shape, and raw
    bytes; lists and tuples recurse; everything hashable (strings for the
    Words workload, ints, floats) is used as-is.
    """
    if isinstance(query_obj, np.ndarray):
        return ("ndarray", query_obj.dtype.str, query_obj.shape, query_obj.tobytes())
    if isinstance(query_obj, (list, tuple)):
        return ("seq", tuple(query_key(item) for item in query_obj))
    if isinstance(query_obj, (np.integer, np.floating)):
        return query_obj.item()
    return query_obj


class QueryResultCache:
    """Bounded LRU mapping from (index, kind, query, parameter) to answers.

    Args:
        capacity: maximum number of cached results (entries, not bytes);
            0 disables caching (every lookup is a miss, nothing is stored).
        counters: optional shared cost accumulator; hit/miss/eviction
            counts are added to it so cache behaviour shows up in the same
            measurements as compdists and PA.
    """

    def __init__(self, capacity: int = 1024, counters: CostCounters | None = None):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.counters = counters
        self._entries: OrderedDict[Hashable, list] = OrderedDict()
        self._generations: dict[str, int] = {}
        self._global_generation = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def make_key(index_id: str, kind: str, query_obj, param) -> Hashable:
        """The full cache key for one query against one index.

        ``kind`` is ``"range"`` or ``"knn"``; ``param`` is the radius or k.
        Radii compare by exact float value -- a query at r=2.0 and r=2.5
        are distinct entries, exactly as the paper's per-selectivity runs.
        """
        return (index_id, kind, float(param), query_key(query_obj))

    def generation(self, index_id: str) -> int:
        """The index's invalidation epoch; bumped by every invalidate.

        Capture it *before* computing an answer and pass it to
        :meth:`put`: if a mutation invalidated the index in between, the
        stale answer is silently dropped instead of cached.
        """
        with self._lock:
            return self._global_generation + self._generations.get(index_id, 0)

    def get(self, key: Hashable):
        """The cached result list, or None on a miss (counted either way)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                counters = self.counters
                hit = False
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                counters = self.counters
                hit = True
                result = list(entry)
        if counters is not None:
            counters.add_cache_hit() if hit else counters.add_cache_miss()
        return result if hit else None

    def put(self, key: Hashable, result: list, generation: int | None = None) -> None:
        """Store a result list, evicting least-recently-used entries.

        ``generation`` (from :meth:`generation`, captured before the
        result was computed) makes the store conditional: a result that
        predates an invalidation of its index is dropped.
        """
        if self.capacity == 0:
            return
        evicted = 0
        with self._lock:
            current = self._global_generation + self._generations.get(key[0], 0)
            if generation is not None and generation != current:
                return
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = list(result)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted and self.counters is not None:
            self.counters.add_cache_eviction(evicted)

    def invalidate(self, index_id: str | None = None) -> int:
        """Drop entries for one index (or all); returns how many were dropped.

        Mutating an index (insert/delete) changes its answers, so its
        cached results must go.  Bumps the affected generations so in-flight
        results computed before the mutation cannot be cached afterwards.
        Eviction stats do not count invalidations -- they measure capacity
        pressure, not correctness maintenance.
        """
        with self._lock:
            if index_id is None:
                dropped = len(self._entries)
                self._entries.clear()
                self._global_generation += 1
                return dropped
            doomed = [key for key in self._entries if key[0] == index_id]
            for key in doomed:
                del self._entries[key]
            self._generations[index_id] = self._generations.get(index_id, 0) + 1
            return len(doomed)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 4),
            }
