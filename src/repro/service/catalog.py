"""IndexCatalog: several hosted indexes over one dataset, answering as one.

The paper's central empirical finding is that no single pivot-based
structure dominates -- the cheapest of the 19 evaluated indexes flips with
dataset, radius, and k.  A serving stack that hardwires one index per
service can never exploit that.  The catalog is the first of the three
layers that fix it (catalog -> planner -> executor):

* it holds **named members** -- built :class:`~repro.core.index.MetricIndex`
  instances over the *same* dataset, each with its own private
  :class:`~repro.core.counters.CostCounters` so the planner can attribute
  every batch's measured cost to exactly the member that ran it;
* **mutations fan out** to every member (same object, same id), so all
  members keep answering every query identically -- which is what lets the
  planner route any query to any member and lets one result-cache
  namespace serve them all;
* the whole catalog **snapshots as one unit**: ``save`` writes one
  ``{stem}.member{i:02d}.snap`` per member plus a ``{stem}.catalog.json``
  manifest (the same idiom as the cluster layer's shard manifests), and
  ``load`` restores every member with zero distance computations.

Members must be built on *separate* :class:`~repro.core.metric_space.
MetricSpace` instances (over the same dataset): counters live on the
space, and per-member cost attribution -- the planner's entire input --
is impossible when two members share one accumulator.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..core.counters import CostCounters
from ..core.index import MetricIndex
from .snapshot import SnapshotInfo, load_index, rebind_counters, save_index

__all__ = [
    "CATALOG_MANIFEST_KIND",
    "CatalogError",
    "CatalogMember",
    "IndexCatalog",
    "is_catalog_manifest",
    "load_catalog_manifest",
]

CATALOG_MANIFEST_KIND = "repro-catalog"


class CatalogError(RuntimeError):
    """Raised for invalid catalog membership, manifests, or divergent fan-out."""


@dataclass
class CatalogMember:
    """One hosted index plus the private counters its work is billed to."""

    index_id: str
    index: MetricIndex
    counters: CostCounters


def _manifest_stem(path: Path) -> Path:
    """Naming stem: ``color.catalog.json`` and ``color.snap`` -> ``color``."""
    if path.name.endswith(".catalog.json"):
        return path.with_name(path.name[: -len(".catalog.json")])
    return path.with_suffix("") if path.suffix else path


def is_catalog_manifest(path) -> bool:
    """True when ``path`` is a readable catalog manifest (cheap peek)."""
    path = Path(path)
    if not path.name.endswith(".json"):
        return False
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return False
    return isinstance(manifest, dict) and manifest.get("kind") == CATALOG_MANIFEST_KIND


def load_catalog_manifest(path) -> dict:
    """Parse and validate a catalog manifest; member paths come back absolute."""
    path = Path(path)
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CatalogError(f"cannot read catalog manifest {path}: {exc}") from None
    if not isinstance(manifest, dict) or manifest.get("kind") != CATALOG_MANIFEST_KIND:
        raise CatalogError(f"{path} is not a repro catalog manifest")
    members = manifest.get("members")
    if not isinstance(members, list) or not members:
        raise CatalogError(f"{path} names no catalog members")
    seen: set[str] = set()
    for entry in members:
        member_id = entry.get("id")
        if not isinstance(member_id, str) or not member_id or member_id in seen:
            raise CatalogError(f"{path} has a missing or duplicate member id")
        seen.add(member_id)
        snap = path.parent / entry["snapshot"]
        if not snap.exists():
            raise CatalogError(f"{path} names missing member snapshot {snap}")
        entry["snapshot"] = str(snap)
    return manifest


class IndexCatalog:
    """Named hosted indexes over one dataset, kept answer-equivalent.

    Register members with :meth:`register`; the first member is the
    *primary* (the service uses its space for payload decoding and its
    distance for cache invalidation balls).  All query traffic goes
    through the members directly (``catalog.get(id).range_query_many``
    ...); the catalog itself only manages membership, fan-out mutation,
    and whole-catalog snapshots.
    """

    def __init__(self):
        self._members: "OrderedDict[str, CatalogMember]" = OrderedDict()
        self._lock = threading.Lock()

    # -- membership ----------------------------------------------------------

    def register(
        self,
        index: MetricIndex,
        index_id: str | None = None,
        counters: CostCounters | None = None,
    ) -> str:
        """Add a built index as a member; returns its id.

        The id defaults to the index's paper name (pass something unique
        to host two instances of one family).  The index is rebound to
        ``counters`` (a fresh private accumulator when omitted) so its
        cost is attributable separately from every other member's --
        which is why members must not share a ``MetricSpace``.
        """
        member_id = index_id if index_id is not None else index.name
        counters = counters if counters is not None else CostCounters()
        with self._lock:
            if member_id in self._members:
                raise CatalogError(f"catalog already has a member {member_id!r}")
            for other in self._members.values():
                if other.index.space is index.space:
                    raise CatalogError(
                        f"member {member_id!r} shares a MetricSpace with "
                        f"{other.index_id!r}; build each member on its own "
                        "space so costs attribute per member"
                    )
                if len(other.index.space.dataset) != len(index.space.dataset) or (
                    other.index.space.dataset.distance.name
                    != index.space.dataset.distance.name
                ):
                    raise CatalogError(
                        f"member {member_id!r} hosts a different dataset than "
                        f"{other.index_id!r} ({len(index.space.dataset)} objects "
                        f"under {index.space.dataset.distance.name!r} vs "
                        f"{len(other.index.space.dataset)} under "
                        f"{other.index.space.dataset.distance.name!r}); catalog "
                        "members must answer every query identically"
                    )
            rebind_counters(index, counters)
            self._members[member_id] = CatalogMember(member_id, index, counters)
        return member_id

    def remove(self, index_id: str) -> None:
        with self._lock:
            if index_id not in self._members:
                raise CatalogError(f"catalog has no member {index_id!r}")
            if len(self._members) == 1:
                raise CatalogError("cannot remove the catalog's last member")
            del self._members[index_id]

    def member(self, index_id: str) -> CatalogMember:
        try:
            return self._members[index_id]
        except KeyError:
            raise CatalogError(f"catalog has no member {index_id!r}") from None

    def get(self, index_id: str) -> MetricIndex:
        return self.member(index_id).index

    def ids(self) -> list[str]:
        return list(self._members)

    def members(self) -> list[CatalogMember]:
        return list(self._members.values())

    @property
    def primary(self) -> CatalogMember:
        if not self._members:
            raise CatalogError("catalog has no members")
        return next(iter(self._members.values()))

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, index_id: str) -> bool:
        return index_id in self._members

    def __iter__(self):
        return iter(self._members.values())

    # -- fan-out mutation ----------------------------------------------------

    def insert(self, obj, object_id: int | None = None) -> int:
        """Insert into every member, forcing one shared object id.

        The primary assigns (or validates) the id; every other member is
        told that id explicitly so all members keep answering
        identically.  A member that cannot insert raises -- after the
        primary already has -- so the failure is loud (a
        :class:`CatalogError` naming the divergence), never a silently
        inconsistent catalog.
        """
        members = self.members()
        new_id = members[0].index.insert(obj, object_id=object_id)
        for m in members[1:]:
            try:
                got = m.index.insert(obj, object_id=new_id)
            except Exception as exc:
                raise CatalogError(
                    f"insert fan-out diverged: member {m.index_id!r} failed "
                    f"after {members[0].index_id!r} inserted id {new_id} ({exc})"
                ) from exc
            if got != new_id:
                raise CatalogError(
                    f"insert fan-out diverged: member {m.index_id!r} assigned "
                    f"id {got}, primary assigned {new_id}"
                )
        return new_id

    def delete(self, object_id: int) -> None:
        """Delete one object from every member (loud on divergence)."""
        members = self.members()
        members[0].index.delete(object_id)
        for m in members[1:]:
            try:
                m.index.delete(object_id)
            except Exception as exc:
                raise CatalogError(
                    f"delete fan-out diverged: member {m.index_id!r} failed "
                    f"after {members[0].index_id!r} deleted id {object_id} "
                    f"({exc})"
                ) from exc

    # -- snapshots -----------------------------------------------------------

    def save(self, path) -> Path:
        """Snapshot every member plus a manifest naming them in order.

        Writes ``{stem}.member{i:02d}.snap`` per member and
        ``{stem}.catalog.json``; returns the manifest path (the thing
        ``repro serve --snapshot`` and :meth:`load` take).
        """
        stem = _manifest_stem(Path(path))
        stem.parent.mkdir(parents=True, exist_ok=True)
        entries = []
        for i, m in enumerate(self.members()):
            part = stem.parent / f"{stem.name}.member{i:02d}.snap"
            info = save_index(m.index, part)
            entries.append(
                {
                    "id": m.index_id,
                    "snapshot": part.name,
                    "index": info.index_name,
                    "objects": info.n_objects,
                }
            )
        primary = self.primary
        manifest = {
            "kind": CATALOG_MANIFEST_KIND,
            "dataset": primary.index.space.dataset.name,
            "distance": primary.index.space.dataset.distance.name,
            "n_objects": len(primary.index.space),
            "members": entries,
        }
        manifest_path = stem.parent / f"{stem.name}.catalog.json"
        manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        return manifest_path

    @classmethod
    def load(cls, path) -> "IndexCatalog":
        """Restore a whole catalog from its manifest -- zero compdists."""
        manifest = load_catalog_manifest(path)
        catalog = cls()
        for entry in manifest["members"]:
            counters = CostCounters()
            index = load_index(entry["snapshot"], counters=counters)
            catalog.register(index, index_id=entry["id"], counters=counters)
        return catalog

    def reload(self, path) -> SnapshotInfo:
        """Hot-swap the whole membership for one restored from ``path``.

        All members restore before the swap (the catalog keeps answering
        from the old ones until the new set is fully ready); the swap is
        a single dict assignment.  Member counters restart fresh -- the
        planner's epsilon-greedy refresh re-learns any cost drift.
        Returns a :class:`~repro.service.snapshot.SnapshotInfo` describing
        the restored primary (shape-compatible with single-snapshot
        reloads, so the HTTP admin surface needs no special case).
        """
        fresh = IndexCatalog.load(path)
        with self._lock:
            self._members = fresh._members
        primary = self.primary
        return SnapshotInfo(
            format_version=0,
            index_name=" + ".join(self.ids()),
            index_class="IndexCatalog",
            n_objects=len(primary.index.space),
            distance_name=primary.index.space.dataset.distance.name,
            dataset_name=primary.index.space.dataset.name,
            payload_bytes=0,
        )

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """Per-member cost counters (id -> index name + compdists/PA)."""
        out = {}
        for m in self.members():
            snap = m.counters.snapshot()
            out[m.index_id] = {
                "index": m.index.name,
                "distance_computations": snap.distance_computations,
                "page_accesses": snap.page_accesses,
                "prune_stages": {
                    "prefix": snap.prune_prefix,
                    "refine": snap.prune_refine,
                    "validated": snap.prune_validated,
                    "ptolemaic": snap.prune_ptolemaic,
                },
            }
        return out
