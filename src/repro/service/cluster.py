"""Multi-process serving cluster: a router fronting N backend servers.

One :class:`~repro.service.http.HttpQueryServer` process is GIL-bound --
its numpy kernels release the GIL only inside ``pairwise``, so a single
process caps out well below the hardware.  This module scales the same
HTTP surface across processes:

* **shard mode** -- each backend hosts one shard of a
  :class:`~repro.core.sharded.ShardedIndex` (split into per-shard
  snapshots by :func:`save_split` / ``repro snapshot --split N``).  The
  router scatter-gathers every query over all backends on a thread pool
  and merges the partial answers with the *exact* merge helpers sharded
  fan-out uses in-process (:meth:`ShardedIndex.merge_range_answers`,
  :meth:`ShardedIndex.merge_knn_answers`), so a routed answer is
  bit-for-bit the single-process answer: sorted id lists for MRQ,
  canonical ``(distance, id)`` tie-breaking for MkNNQ.  Every shard must
  be live; a missing shard is a clear 503 naming the shard id.
* **replica mode** -- each backend hosts the full index.  The router
  load-balances with least-in-flight routing, retries an idempotent query
  once on another backend when a connection dies mid-call, and answers
  503 only when *no* backend is live.  Mutations fan out to every replica
  (all must be live) and are never retried.

Either way the router speaks both wire codecs end-to-end: request bodies
are forwarded **verbatim** (same ``Content-Type``, ``Authorization``
passed through), shard-mode backend responses travel binary and are
re-encoded per the client's ``Accept``, replica-mode responses are
relayed untouched.  Health-checked membership (a background prober marks
backends down and back up), zero-downtime rolling ``POST /admin/reload``
(backends hot-swap one at a time while the others keep answering), and
per-backend telemetry (fan-out latency, in-flight, mark-downs, client
retries) in the shared :class:`~repro.obs.metrics.MetricsRegistry`.

:class:`ClusterSupervisor` spawns, supervises, and drains the whole
topology as child processes (``repro cluster --backends N`` is its CLI
form); :class:`ClusterRouter` alone fronts backends started elsewhere.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Sequence

from ..core.sharded import ShardedIndex
from ..obs.metrics import MetricsRegistry
from . import wire
from .http import (
    ServiceClient,
    _BadRequest,
    _Handler,
    _HttpAppBase,
    encode_neighbors,
)
from .snapshot import load_index, save_index
from .wire import BINARY_CONTENT_TYPE

__all__ = [
    "CLUSTER_MANIFEST_KIND",
    "ClusterError",
    "ClusterRouter",
    "ClusterSupervisor",
    "load_cluster_manifest",
    "save_split",
    "split_snapshot",
]

CLUSTER_MANIFEST_KIND = "repro-cluster"


class ClusterError(RuntimeError):
    """Raised for invalid topologies, manifests, or failed backend spawns."""


# -- per-shard snapshots + manifest -------------------------------------------


def _manifest_stem(path: Path) -> Path:
    """The naming stem: ``color.cluster.json`` and ``color.snap`` -> ``color``."""
    if path.name.endswith(".cluster.json"):
        return path.with_name(path.name[: -len(".cluster.json")])
    return path.with_suffix("") if path.suffix else path


def save_split(index: ShardedIndex, path) -> Path:
    """Save each shard of a ``ShardedIndex`` as its own snapshot + manifest.

    Writes ``{stem}.shard{i:02d}.snap`` for each part of
    :meth:`ShardedIndex.split` (a part answers in **global** ids, so a
    backend hosting it needs no id translation) and a
    ``{stem}.cluster.json`` manifest naming them in shard order.  Returns
    the manifest path -- the thing ``repro cluster --snapshot`` takes.
    """
    if not isinstance(index, ShardedIndex):
        raise ClusterError(
            f"can only split a ShardedIndex, got {type(index).__name__}"
        )
    stem = _manifest_stem(Path(path))
    stem.parent.mkdir(parents=True, exist_ok=True)
    shards = []
    for i, part in enumerate(index.split()):
        part_path = stem.parent / f"{stem.name}.shard{i:02d}.snap"
        info = save_index(part, part_path)
        shards.append({"snapshot": part_path.name, "objects": info.n_objects})
    manifest_path = stem.parent / f"{stem.name}.cluster.json"
    manifest = {
        "kind": CLUSTER_MANIFEST_KIND,
        "mode": "shard",
        "index": index.name,
        "n_objects": len(index.space),
        "shards": shards,
    }
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return manifest_path


def split_snapshot(snapshot_path, out) -> Path:
    """Split a snapshot holding a ``ShardedIndex`` into per-shard snapshots.

    Loads the snapshot, splits it, and writes the parts + manifest next to
    ``out`` (see :func:`save_split`).  Returns the manifest path.
    """
    index = load_index(snapshot_path)
    if not isinstance(index, ShardedIndex):
        raise ClusterError(
            f"{snapshot_path} holds a {type(index).__name__}; only a "
            "ShardedIndex snapshot can be split into shard backends"
        )
    return save_split(index, out)


def load_cluster_manifest(path) -> dict:
    """Parse and validate a cluster manifest; snapshot paths come back absolute."""
    path = Path(path)
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ClusterError(f"cannot read cluster manifest {path}: {exc}") from None
    if not isinstance(manifest, dict) or manifest.get("kind") != CLUSTER_MANIFEST_KIND:
        raise ClusterError(f"{path} is not a repro cluster manifest")
    shards = manifest.get("shards")
    if not isinstance(shards, list) or not shards:
        raise ClusterError(f"{path} names no shard snapshots")
    for entry in shards:
        snap = path.parent / entry["snapshot"]
        if not snap.exists():
            raise ClusterError(f"{path} names missing shard snapshot {snap}")
        entry["snapshot"] = str(snap)
    return manifest


# -- router internals ---------------------------------------------------------


class _Relay(Exception):
    """A ready-to-send response decided mid-route (errors, backend relays)."""

    def __init__(self, status: int, payload: dict):
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload


class _RouterCtx:
    """One routed request: raw body + the headers the router must honour."""

    __slots__ = ("body", "content_type", "accept", "authorization", "binary")

    def __init__(self, body, content_type, accept, authorization, binary):
        self.body = body
        self.content_type = content_type
        self.accept = accept
        self.authorization = authorization
        self.binary = binary  # client asked for a binary response

    def payload(self) -> dict:
        """Decode the body per its ``Content-Type`` (only when a route
        genuinely needs a field -- forwarding never re-encodes)."""
        if wire.accepts_binary(self.content_type):
            try:
                payload = wire.loads(self.body)
            except wire.WireError as exc:
                raise _BadRequest(f"malformed binary body: {exc}") from None
        else:
            try:
                payload = json.loads(self.body)
            except json.JSONDecodeError as exc:
                raise _BadRequest(f"malformed JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a payload object")
        return payload

    def forward_headers(self, accept: str | None = None) -> dict:
        """Headers for a backend call mirroring this request."""
        headers = {}
        if self.content_type:
            headers["Content-Type"] = self.content_type
        accept = accept if accept is not None else self.accept
        if accept:
            headers["Accept"] = accept
        if self.authorization:
            headers["Authorization"] = self.authorization
        return headers


class _RouterHandler(_Handler):
    """The shared HTTP handler, with POST routing over raw bodies.

    GET endpoints (``/healthz`` / ``/stats`` / ``/metrics``) come from the
    base handler unchanged -- the router duck-types the same ``health()``
    / ``stats()`` surface.  POST bodies are *not* decoded here: routes
    receive the raw bytes plus a :class:`_RouterCtx` so forwarding stays
    codec-blind, and reply either with a payload dict (re-encoded per the
    client's ``Accept``) or a verbatim ``(status, blob, content_type)``
    relay of one backend's response.
    """

    server_version = "repro-router/1"

    def _send_blob(self, status: int, blob: bytes, content_type: str | None) -> None:
        if self.app.draining:
            self.close_connection = True
        self._log_status, self._log_bytes = status, len(blob)
        self.send_response(status)
        self.send_header("Content-Type", content_type or "application/json")
        self.send_header("Content-Length", str(len(blob)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(blob)

    def _handle_post(self) -> None:
        app = self.app
        binary = self._negotiate()
        route = app.post_routes.get(self.path)
        if route is None:
            self._drain_body()
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        auth_error = app._auth_error(self.path, self.headers.get("Authorization"))
        if auth_error is not None:
            self._drain_body()
            self._send_json(401, {"error": auth_error})
            return
        if not app._begin_request():
            self._drain_body()
            self._send_json(
                503,
                {
                    "error": (
                        "draining: shutting down"
                        if app.draining
                        else f"at capacity ({app.max_inflight} in flight)"
                    )
                },
            )
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            self._log_req_bytes = max(0, length)
            body = self.rfile.read(length) if length > 0 else b""
            if not body:
                raise _BadRequest("request body must be a payload object")
            ctx = _RouterCtx(
                body=body,
                content_type=self.headers.get("Content-Type"),
                accept=self.headers.get("Accept"),
                authorization=self.headers.get("Authorization"),
                binary=binary,
            )
            out = route(ctx)
            if len(out) == 2:
                self._send_json(out[0], out[1])
            else:
                self._send_blob(*out)
        except _Relay as exc:
            self._send_json(exc.status, exc.payload)
        except _BadRequest as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # fan-out/merge errors -> 500, not a hang
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        finally:
            app._end_request()


class _Backend:
    """One backend's routing state: address, clients, liveness, counters."""

    def __init__(self, backend_id: int, host: str, port: int, timeout: float):
        self.backend_id = backend_id
        self.host = host
        self.port = int(port)
        # forwarding client (pooled keep-alive per router thread) and a
        # separate short-timeout prober client, so a backend wedged
        # mid-query cannot stall the health loop behind a long timeout
        self.client = ServiceClient(host, port, timeout=timeout)
        self.probe_client = ServiceClient(host, port, timeout=min(2.0, timeout))
        self.up = True
        self.inflight = 0
        self.served = 0
        self.markdowns = 0
        self.lock = threading.Lock()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        self.client.close()
        self.probe_client.close()


def _parse_backend(spec, backend_id: int, timeout: float) -> _Backend:
    if isinstance(spec, _Backend):
        return spec
    if isinstance(spec, str):
        host, _, port = spec.rpartition(":")
        if not host or not port.isdigit():
            raise ClusterError(f"backend spec {spec!r} is not 'host:port'")
        return _Backend(backend_id, host, int(port), timeout)
    host, port = spec
    return _Backend(backend_id, host, int(port), timeout)


# retryable transport failures when talking to a backend: the backend
# died, restarted, or dropped the connection -- never an application error
_BACKEND_ERRORS = (OSError, http.client.HTTPException)


class ClusterRouter(_HttpAppBase):
    """Front N ``HttpQueryServer`` backends behind one HTTP endpoint.

    Args:
        backends: backend addresses, in shard order for shard mode --
            ``(host, port)`` tuples or ``"host:port"`` strings.
        mode: ``"shard"`` (each backend holds one shard; queries
            scatter-gather over all of them) or ``"replica"`` (each
            backend holds the full index; queries load-balance).
        host / port: the router's own bind address (port 0 = ephemeral).
        max_inflight: admission bound, as on :class:`HttpQueryServer`.
        timeout: per-backend-call socket timeout, seconds.
        probe_interval_s: health-probe period; 0 disables the prober
            (membership then changes only on request failures).
        metrics: optional registry; adds router fan-out latency,
            per-backend up/in-flight gauges, and mark-down counters next
            to the standard ``repro_http_*`` request metrics.
        auth_token: optional bearer token checked at the router's edge for
            mutation/admin paths.  Independently of it, every request's
            ``Authorization`` header is forwarded to the backends, so
            backend tokens are enforced end-to-end either way.

    The router holds no index: shard-mode merging uses the same static
    :class:`ShardedIndex` merge helpers the in-process fan-out uses, which
    is what makes routed answers bit-for-bit identical to single-process
    answers for both codecs.
    """

    _handler_class = _RouterHandler
    _thread_name = "repro-router"

    def __init__(
        self,
        backends: Sequence,
        mode: str = "shard",
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 128,
        timeout: float = 30.0,
        probe_interval_s: float = 2.0,
        access_log=None,
        metrics: MetricsRegistry | None = None,
        slow_query_ms: float | None = None,
        slow_query_log=None,
        auth_token: str | None = None,
    ):
        if mode not in ("shard", "replica"):
            raise ClusterError(f"mode must be 'shard' or 'replica', got {mode!r}")
        if not backends:
            raise ClusterError("a cluster needs at least one backend")
        self.mode = mode
        self.timeout = float(timeout)
        self.probe_interval_s = float(probe_interval_s)
        self._backends = [
            _parse_backend(spec, i, self.timeout) for i, spec in enumerate(backends)
        ]
        super().__init__(
            host=host,
            port=port,
            max_inflight=max_inflight,
            access_log=access_log,
            metrics=metrics,
            slow_query_ms=slow_query_ms,
            slow_query_log=slow_query_log,
            auth_token=auth_token,
        )
        self.post_routes = {
            "/range": lambda ctx: self._route_query(ctx, "/range"),
            "/knn": lambda ctx: self._route_query(ctx, "/knn"),
            "/range_many": lambda ctx: self._route_query(ctx, "/range_many"),
            "/knn_many": lambda ctx: self._route_query(ctx, "/knn_many"),
            "/insert": lambda ctx: self._route_mutation(ctx, "/insert"),
            "/delete": lambda ctx: self._route_mutation(ctx, "/delete"),
            "/admin/reload": self._route_reload,
        }
        self._admin_lock = threading.Lock()  # one rolling reload at a time
        self._pool = ThreadPoolExecutor(
            max_workers=min(32, max(8, 4 * len(self._backends))),
            thread_name_prefix="repro-router-fanout",
        )
        self._probe_stop = threading.Event()
        self._probe_thread: threading.Thread | None = None
        self._m_fanout = self._m_markdowns = None
        if metrics is not None:
            self._m_fanout = metrics.histogram(
                "repro_router_fanout_ms",
                "Backend fan-out wall time by endpoint, milliseconds.",
                labelnames=("endpoint",),
            )
            self._m_markdowns = metrics.counter(
                "repro_router_backend_markdowns_total",
                "Times a backend was marked down (probe or request failure).",
                labelnames=("backend",),
            )
            up_gauge = metrics.gauge(
                "repro_router_backend_up",
                "1 while the backend is considered live, else 0.",
                labelnames=("backend",),
            )
            inflight_gauge = metrics.gauge(
                "repro_router_backend_inflight",
                "Requests the router currently has in flight per backend.",
                labelnames=("backend",),
            )
            retries_gauge = metrics.gauge(
                "repro_router_backend_client_retries",
                "Stale-socket retries the router's pooled client performed.",
                labelnames=("backend",),
            )
            for b in self._backends:
                up_gauge.labels(b.address).set_function(
                    lambda b=b: 1.0 if b.up else 0.0
                )
                inflight_gauge.labels(b.address).set_function(
                    lambda b=b: float(b.inflight)
                )
                retries_gauge.labels(b.address).set_function(
                    lambda b=b: float(b.client.retries)
                )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ClusterRouter":
        super().start()
        if self.probe_interval_s > 0:
            self._probe_thread = threading.Thread(
                target=self._probe_loop, name="repro-router-probe", daemon=True
            )
            self._probe_thread.start()
        return self

    def _on_drained(self) -> None:
        self._probe_stop.set()
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=5.0)
        self._pool.shutdown(wait=True)
        for backend in self._backends:
            backend.close()

    # -- membership ----------------------------------------------------------

    def _mark_down(self, backend: _Backend) -> None:
        with backend.lock:
            was_up, backend.up = backend.up, False
            if was_up:
                backend.markdowns += 1
        if was_up:
            # drop the pooled sockets: they may still reach the dead
            # backend's draining handler threads (or a predecessor on a
            # reused port), so readmission must reconnect from scratch
            backend.client.close()
            if self._m_markdowns is not None:
                self._m_markdowns.labels(backend.address).inc()

    def _mark_up(self, backend: _Backend) -> None:
        with backend.lock:
            backend.up = True

    def _probe_loop(self) -> None:
        """Periodic ``/healthz`` probes: mark backends down and back up.

        Probes run even while requests flow -- a request failure marks a
        backend down immediately, and only a successful probe brings it
        back, so a flapping backend cannot bounce per-request.
        """
        while not self._probe_stop.wait(self.probe_interval_s):
            for backend in self._backends:
                if self._probe_stop.is_set():
                    return
                try:
                    backend.probe_client.healthz()
                except Exception:
                    self._mark_down(backend)
                else:
                    self._mark_up(backend)

    def probe_now(self) -> None:
        """Run one synchronous probe round (tests and CLI readiness)."""
        for backend in self._backends:
            try:
                backend.probe_client.healthz()
            except Exception:
                self._mark_down(backend)
            else:
                self._mark_up(backend)

    # -- backend calls ---------------------------------------------------------

    def _call_backend(
        self, backend: _Backend, path: str, body, headers, idempotent=True
    ):
        """One forwarded call with in-flight accounting and fail-fast mark-down."""
        with backend.lock:
            backend.inflight += 1
        try:
            out = backend.client.forward(
                "POST", path, body=body, headers=headers, idempotent=idempotent
            )
        except _BACKEND_ERRORS:
            self._mark_down(backend)
            raise
        finally:
            with backend.lock:
                backend.inflight -= 1
                backend.served += 1
        return out

    @staticmethod
    def _decode_response(status: int, blob: bytes, content_type: str | None) -> dict:
        """A backend response body as a payload dict (either codec)."""
        if wire.accepts_binary(content_type):
            try:
                return wire.loads(blob)
            except wire.WireError as exc:
                return {"error": f"undecodable binary backend response: {exc}"}
        try:
            out = json.loads(blob) if blob else {}
        except json.JSONDecodeError:
            out = {"error": blob.decode("utf-8", "replace")}
        return out if isinstance(out, dict) else {"error": f"HTTP {status}"}

    # -- shard mode: scatter-gather --------------------------------------------

    def _scatter(self, ctx: _RouterCtx, path: str) -> list[dict]:
        """Forward the raw body to every backend; decoded payloads in shard order.

        Backends are asked for **binary** responses regardless of the
        client's codec (the router must decode partial answers to merge
        them, and the packed columnar form is the cheap one to decode);
        the merged answer is re-encoded per the client's ``Accept``.
        """
        down = [b.backend_id for b in self._backends if not b.up]
        if down:
            raise _Relay(
                503,
                {
                    "error": f"shard(s) {down} unavailable",
                    "missing_shards": down,
                },
            )
        headers = ctx.forward_headers(accept=BINARY_CONTENT_TYPE)
        t0 = time.perf_counter()
        futures = [
            self._pool.submit(self._call_backend, backend, path, ctx.body, headers)
            for backend in self._backends
        ]
        responses = []
        failed: list[int] = []
        for backend, future in zip(self._backends, futures):
            try:
                responses.append(future.result())
            except _BACKEND_ERRORS:
                failed.append(backend.backend_id)
                responses.append(None)
        if self._m_fanout is not None:
            self._m_fanout.labels(path).observe((time.perf_counter() - t0) * 1000.0)
        if failed:
            raise _Relay(
                503,
                {"error": f"shard(s) {failed} unavailable", "missing_shards": failed},
            )
        payloads = []
        for backend, (status, blob, content_type) in zip(self._backends, responses):
            payload = self._decode_response(status, blob, content_type)
            if status != 200:
                # all shards see the same request, so the first error is
                # representative (a 400 is a 400 everywhere); relay it
                raise _Relay(status, payload)
            payloads.append(payload)
        return payloads

    @staticmethod
    def _k_of(payload: dict) -> int:
        k = payload.get("k")
        if isinstance(k, bool) or not isinstance(k, (int, float)):
            raise _BadRequest("'k' must be a number")
        if k < 1 or k != int(k):
            raise _BadRequest("'k' must be a positive integer")
        return int(k)

    def _merge_shard_answers(self, ctx: _RouterCtx, path: str, payloads: list[dict]):
        if path == "/range":
            parts = [wire.unpack_id_list(p["ids"]) for p in payloads]
            merged = ShardedIndex.merge_range_answers(parts)
            if ctx.binary:
                return 200, {"ids": wire.pack_id_list(merged)}
            return 200, {"ids": [int(i) for i in merged]}
        if path == "/knn":
            k = self._k_of(ctx.payload())
            parts = [wire.unpack_neighbors(p["neighbors"]) for p in payloads]
            merged = ShardedIndex.merge_knn_answers(parts, k)
            if ctx.binary:
                return 200, {"neighbors": wire.pack_neighbors(merged)}
            return 200, {"neighbors": encode_neighbors(merged)}
        per_backend = [wire.unpack_id_lists(p["results"]) for p in payloads] if (
            path == "/range_many"
        ) else [wire.unpack_neighbor_lists(p["results"]) for p in payloads]
        lengths = {len(lists) for lists in per_backend}
        if len(lengths) != 1:
            raise _Relay(
                500, {"error": f"shards answered mismatched batch sizes {lengths}"}
            )
        if path == "/range_many":
            merged = [
                ShardedIndex.merge_range_answers(parts)
                for parts in zip(*per_backend)
            ]
            if ctx.binary:
                return 200, {"results": wire.pack_id_lists(merged)}
            return 200, {"results": [[int(i) for i in ids] for ids in merged]}
        k = self._k_of(ctx.payload())
        merged = [
            ShardedIndex.merge_knn_answers(parts, k) for parts in zip(*per_backend)
        ]
        if ctx.binary:
            return 200, {"results": wire.pack_neighbor_lists(merged)}
        return 200, {"results": [encode_neighbors(a) for a in merged]}

    # -- replica mode: least-in-flight -----------------------------------------

    def _pick_replica(self, exclude: set[int] = frozenset()) -> _Backend | None:
        """The live backend with the fewest in-flight requests.

        Ties break deterministically by total served then backend id, so
        an idle cluster round-robins instead of hammering backend 0.
        """
        best = None
        best_key = None
        for backend in self._backends:
            if not backend.up or backend.backend_id in exclude:
                continue
            with backend.lock:
                key = (backend.inflight, backend.served, backend.backend_id)
            if best_key is None or key < best_key:
                best, best_key = backend, key
        return best

    def _route_query(self, ctx: _RouterCtx, path: str):
        if self.mode == "shard":
            return self._merge_shard_answers(ctx, path, self._scatter(ctx, path))
        headers = ctx.forward_headers()
        tried: set[int] = set()
        soft: tuple | None = None
        last_error: Exception | None = None
        # one placement + one retry: a query is idempotent, so when the
        # picked backend's connection dies mid-call -- or it answers 503
        # (draining / at capacity) -- it is safe to re-ask a different
        # live backend once
        for _attempt in range(2):
            backend = self._pick_replica(exclude=tried)
            if backend is None:
                break
            tried.add(backend.backend_id)
            try:
                out = self._call_backend(backend, path, ctx.body, headers)
            except _BACKEND_ERRORS as exc:
                last_error = exc
                continue
            if out[0] == 503:
                soft = out
                continue
            return out
        if soft is not None:
            return soft  # every candidate shed load: relay the backend's 503
        if last_error is not None:
            raise _Relay(
                503, {"error": f"no live backend answered: {last_error}"}
            )
        raise _Relay(503, {"error": "no live backend"})

    # -- mutations + admin -----------------------------------------------------

    def _route_mutation(self, ctx: _RouterCtx, path: str):
        if self.mode == "shard":
            raise _Relay(
                501,
                {
                    "error": "mutations are not supported in shard mode "
                    "(rebuild and split a new snapshot, then rolling-reload)"
                },
            )
        if path == "/insert" and ctx.payload().get("object_id") is None:
            raise _BadRequest(
                "replica mode requires an explicit 'object_id' for /insert "
                "(auto-assigned ids would diverge across replicas)"
            )
        down = [b.backend_id for b in self._backends if not b.up]
        if down:
            # a mutation applied to a subset would silently fork the
            # replicas; require full membership instead
            raise _Relay(
                503,
                {"error": f"replica(s) {down} down; mutations need all replicas"},
            )
        headers = ctx.forward_headers()
        results = []
        for backend in self._backends:
            try:
                results.append(
                    self._call_backend(
                        backend, path, ctx.body, headers, idempotent=False
                    )
                )
            except _BACKEND_ERRORS as exc:
                applied = [b.backend_id for b in self._backends[: len(results)]]
                raise _Relay(
                    500,
                    {
                        "error": (
                            f"backend {backend.backend_id} failed mid-mutation "
                            f"({exc}); applied on {applied} -- replicas may "
                            "have diverged, rolling-reload a fresh snapshot"
                        )
                    },
                ) from None
        for status, blob, content_type in results:
            if status != 200:
                raise _Relay(status, self._decode_response(status, blob, content_type))
        return results[0]

    def _route_reload(self, ctx: _RouterCtx):
        """Zero-downtime rolling reload: one backend at a time, verified.

        Payload: ``{"snapshot": path}`` applies one snapshot to every
        backend (replica mode); ``{"snapshots": [p0..pN-1]}`` applies one
        per backend in shard order (shard mode).  Each backend hot-swaps
        while the others keep answering; a failure stops the roll and
        reports how far it got.
        """
        payload = ctx.payload()
        snapshots = payload.get("snapshots")
        if snapshots is None:
            snapshot = payload.get("snapshot")
            if not isinstance(snapshot, str) or not snapshot:
                raise _BadRequest("'snapshot' must be a path string")
            snapshots = [snapshot] * len(self._backends)
        if not isinstance(snapshots, list) or len(snapshots) != len(self._backends):
            raise _BadRequest(
                f"'snapshots' must list one path per backend "
                f"({len(self._backends)} needed)"
            )
        headers = {"Content-Type": "application/json"}
        if ctx.authorization:
            headers["Authorization"] = ctx.authorization
        with self._admin_lock:
            reloaded = []
            for backend, snapshot in zip(self._backends, snapshots):
                body = json.dumps({"snapshot": str(snapshot)}).encode("utf-8")
                try:
                    status, blob, content_type = self._call_backend(
                        backend, "/admin/reload", body, headers, idempotent=False
                    )
                except _BACKEND_ERRORS as exc:
                    raise _Relay(
                        500,
                        {
                            "error": f"backend {backend.backend_id} died during "
                            f"reload: {exc}",
                            "reloaded": reloaded,
                        },
                    ) from None
                response = self._decode_response(status, blob, content_type)
                if status != 200:
                    raise _Relay(
                        status,
                        {
                            "error": f"backend {backend.backend_id} refused reload: "
                            f"{response.get('error', status)}",
                            "reloaded": reloaded,
                        },
                    )
                reloaded.append(
                    {"backend": backend.backend_id, **response}
                )
        return 200, {"mode": self.mode, "reloaded": reloaded}

    # -- observability ---------------------------------------------------------

    def health(self) -> dict:
        live = [b.backend_id for b in self._backends if b.up]
        if self._draining:
            status = "draining"
        elif self.mode == "shard":
            status = "ok" if len(live) == len(self._backends) else "degraded"
        else:
            status = "ok" if live else "unavailable"
        return {
            "status": status,
            "role": "router",
            "mode": self.mode,
            "backends": len(self._backends),
            "live_backends": live,
            "uptime_s": round(time.monotonic() - self._t_start, 3),
        }

    def stats(self) -> dict:
        backends = []
        for b in self._backends:
            with b.lock:
                entry = {
                    "backend": b.backend_id,
                    "address": b.address,
                    "up": b.up,
                    "inflight": b.inflight,
                    "served": b.served,
                    "markdowns": b.markdowns,
                    **b.client.client_stats(),
                }
                up = b.up
            if up:
                # best effort: a catalog-backed backend exposes its planner's
                # routing stats; a dead or single-index backend never breaks
                # the router's own /stats
                try:
                    planner = b.probe_client.stats().get("planner")
                except Exception:
                    planner = None
                if planner is not None:
                    entry["planner"] = planner
            backends.append(entry)
        with self._lock:
            http_stats = {
                "active": self._active,
                "max_inflight": self.max_inflight,
                "served": self.requests_served,
                "rejected": self.rejected,
                "draining": self._draining,
            }
        return {
            "role": "router",
            "mode": self.mode,
            "http": http_stats,
            "backends": backends,
        }


# -- process supervision ------------------------------------------------------


class _BackendProcess:
    """One spawned ``repro serve`` child and the files that locate it."""

    def __init__(self, backend_id: int, process, port_file: Path):
        self.backend_id = backend_id
        self.process = process
        self.port_file = port_file
        self.port: int | None = None


class ClusterSupervisor:
    """Spawn, supervise, and drain a router + N backend topology.

    Each backend is a ``repro serve --http`` child process restoring one
    snapshot (a shard part in shard mode, the full snapshot in replica
    mode) on an ephemeral port published through ``--port-file``.  Once
    every backend answers ``/healthz``, the router starts in-process and
    fronts them.  :meth:`close` drains the router first (clients see 503,
    in-flight requests finish), then SIGINTs the backends and waits for
    their own graceful drains.

    Args:
        snapshots: one snapshot path per backend, in shard order.
        mode: ``"shard"`` or ``"replica"`` (see :class:`ClusterRouter`).
        host: bind address for router and backends.
        router_port: the router's port (0 = ephemeral).
        cache_size / cache_ttl_s: backend result-cache knobs.
        auth_token: bearer token handed to every backend *and* checked at
            the router's edge.
        max_inflight: router admission bound; backends get the same.
        startup_timeout_s: how long to wait for all backends to come up.
    """

    def __init__(
        self,
        snapshots: Sequence,
        mode: str = "shard",
        host: str = "127.0.0.1",
        router_port: int = 0,
        max_inflight: int = 128,
        cache_size: int = 1024,
        cache_ttl_s: float | None = None,
        auth_token: str | None = None,
        metrics: MetricsRegistry | None = None,
        timeout: float = 30.0,
        probe_interval_s: float = 2.0,
        startup_timeout_s: float = 60.0,
    ):
        if not snapshots:
            raise ClusterError("a cluster needs at least one backend snapshot")
        self.snapshots = [str(s) for s in snapshots]
        for snap in self.snapshots:
            if not Path(snap).exists():
                raise ClusterError(f"backend snapshot {snap} does not exist")
        self.mode = mode
        self.host = host
        self.router_port = router_port
        self.max_inflight = max_inflight
        self.cache_size = cache_size
        self.cache_ttl_s = cache_ttl_s
        self.auth_token = auth_token
        self.metrics = metrics
        self.timeout = timeout
        self.probe_interval_s = probe_interval_s
        self.startup_timeout_s = startup_timeout_s
        self.router: ClusterRouter | None = None
        self._children: list[_BackendProcess] = []
        self._workdir = None

    def _spawn_backend(self, backend_id: int, snapshot: str) -> _BackendProcess:
        port_file = Path(self._workdir.name) / f"backend{backend_id:02d}.port"
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--snapshot",
            snapshot,
            "--http",
            "0",
            "--host",
            self.host,
            "--port-file",
            str(port_file),
            "--cache-size",
            str(self.cache_size),
            "--max-inflight",
            str(self.max_inflight),
        ]
        if self.cache_ttl_s is not None:
            argv += ["--cache-ttl", str(self.cache_ttl_s)]
        if self.auth_token is not None:
            argv += ["--auth-token", self.auth_token]
        env = dict(os.environ)
        env.setdefault("PYTHONUNBUFFERED", "1")
        # the child must resolve the same `repro` package as this process,
        # even when it is importable only via sys.path (e.g. a test runner
        # injecting src/ without exporting PYTHONPATH)
        pkg_root = str(Path(__file__).resolve().parents[2])
        paths = env.get("PYTHONPATH", "")
        if pkg_root not in paths.split(os.pathsep):
            env["PYTHONPATH"] = pkg_root + (os.pathsep + paths if paths else "")
        process = subprocess.Popen(
            argv,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            env=env,
        )
        return _BackendProcess(backend_id, process, port_file)

    def _await_backends(self) -> None:
        deadline = time.monotonic() + self.startup_timeout_s
        for child in self._children:
            while child.port is None:
                if child.process.poll() is not None:
                    stderr = (child.process.stderr.read() or b"").decode(
                        "utf-8", "replace"
                    )
                    raise ClusterError(
                        f"backend {child.backend_id} exited with code "
                        f"{child.process.returncode} during startup:\n{stderr[-2000:]}"
                    )
                if time.monotonic() > deadline:
                    raise ClusterError(
                        f"backend {child.backend_id} did not publish its port "
                        f"within {self.startup_timeout_s}s"
                    )
                try:
                    text = child.port_file.read_text().strip()
                    if text:
                        child.port = int(text)
                        break
                except (OSError, ValueError):
                    pass
                time.sleep(0.05)
            client = ServiceClient(self.host, child.port, timeout=2.0)
            try:
                while True:
                    try:
                        client.healthz()
                        break
                    except Exception:
                        if child.process.poll() is not None:
                            raise ClusterError(
                                f"backend {child.backend_id} died before "
                                "answering /healthz"
                            ) from None
                        if time.monotonic() > deadline:
                            raise ClusterError(
                                f"backend {child.backend_id} did not answer "
                                f"/healthz within {self.startup_timeout_s}s"
                            ) from None
                        time.sleep(0.05)
            finally:
                client.close()

    def start(self) -> "ClusterSupervisor":
        if self.router is not None:
            raise RuntimeError("cluster already started")
        self._workdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        try:
            self._children = [
                self._spawn_backend(i, snap) for i, snap in enumerate(self.snapshots)
            ]
            self._await_backends()
            self.router = ClusterRouter(
                backends=[(self.host, child.port) for child in self._children],
                mode=self.mode,
                host=self.host,
                port=self.router_port,
                max_inflight=self.max_inflight,
                timeout=self.timeout,
                probe_interval_s=self.probe_interval_s,
                metrics=self.metrics,
                auth_token=self.auth_token,
            )
            self.router.start()
        except BaseException:
            self.close()
            raise
        return self

    @property
    def backend_ports(self) -> list[int]:
        return [child.port for child in self._children]

    def poll(self) -> list[int]:
        """Backend ids whose process has exited (the CLI's watchdog check)."""
        return [
            child.backend_id
            for child in self._children
            if child.process.poll() is not None
        ]

    def close(self, drain_timeout: float | None = None) -> None:
        """Drain the router, then gracefully stop every backend child."""
        if self.router is not None:
            self.router.close(drain_timeout=drain_timeout)
            self.router = None
        for child in self._children:
            if child.process.poll() is None:
                try:
                    child.process.send_signal(signal.SIGINT)
                except OSError:
                    pass
        deadline = time.monotonic() + 10.0
        for child in self._children:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                child.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                child.process.kill()
                child.process.wait(timeout=5.0)
            if child.process.stderr is not None:
                child.process.stderr.close()
        self._children = []
        if self._workdir is not None:
            self._workdir.cleanup()
            self._workdir = None

    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
