"""Binary wire codec: JSON-shaped payloads with raw numpy buffers.

PR 4's HTTP front-end showed that serving 282-d Color vectors is
codec-bound: the vectorized query kernels answer a whole batch in under a
millisecond while ``json.dumps``/``json.loads`` of float64 vectors -- one
Python float object per element, each formatted to shortest repr --
dominates the wire time.  This module removes that tax with a stdlib-only
framed binary encoding (content type :data:`BINARY_CONTENT_TYPE`,
negotiated via ``Content-Type`` / ``Accept`` so JSON clients keep working
unchanged).

Frame layout::

    MAGIC b"RPWB" (4) | version (1) | reserved (3, zero)
    | header length (4, little-endian u32) | header JSON (UTF-8)
    | array buffers (each 8-byte aligned, little-endian, C-contiguous)

The header JSON carries the payload *tree* -- the exact structure the JSON
protocol uses (``{"queries": ..., "radius": 2.0}``) -- with every numpy
array replaced by an ``{"$nd": i}`` placeholder, plus an ``arrays`` table
of ``(dtype, shape, offset, nbytes)`` entries describing the raw buffers
that follow.  :func:`loads` rebuilds the tree with ``np.frombuffer`` views
straight into the received body -- no per-element Python objects, and the
float64/int64 values are preserved **bit-for-bit** (raw little-endian
buffers, not decimal round-trips).

On top of the generic tree codec, the ``pack_* / unpack_*`` helpers give
query answers a flat columnar form (ragged lists of ids or neighbors
become offsets + value columns), so a ``/knn_many`` response is three
small arrays instead of thousands of JSON numbers.  Every ``unpack_*``
helper also accepts the JSON form, which is what lets
:class:`~repro.service.http.ServiceClient` share one decode path for both
protocols.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from ..core.queries import Neighbor

__all__ = [
    "BINARY_CONTENT_TYPE",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "WireError",
    "dumps",
    "loads",
    "accepts_binary",
    "pack_id_list",
    "unpack_id_list",
    "pack_id_lists",
    "unpack_id_lists",
    "pack_neighbors",
    "unpack_neighbors",
    "pack_neighbor_lists",
    "unpack_neighbor_lists",
]

BINARY_CONTENT_TYPE = "application/x-repro-binary"
WIRE_MAGIC = b"RPWB"
WIRE_VERSION = 1

_PREFIX = struct.Struct("<4sB3xI")  # magic, version, reserved, header length
_ALIGN = 8  # array buffers start on 8-byte boundaries (dtype alignment)

# dtype kinds allowed on the wire: bool, (un)signed ints, floats, complex.
# Object/str dtypes would need pickle -- exactly the codec being killed.
_WIRE_KINDS = frozenset("biufc")


class WireError(ValueError):
    """Raised for malformed binary frames; mapped to HTTP 400 by the server."""


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _wire_array(arr: np.ndarray) -> np.ndarray:
    """The array as the on-wire form: C-contiguous little-endian."""
    if arr.dtype.kind not in _WIRE_KINDS:
        raise WireError(
            f"dtype {arr.dtype} cannot travel in binary frames (numeric only)"
        )
    dtype = arr.dtype.newbyteorder("<")
    return np.ascontiguousarray(arr, dtype=dtype)


def _encode_tree(value, arrays: list[np.ndarray]):
    """Replace every ndarray in a JSON-like tree with an ``{"$nd": i}`` ref."""
    if isinstance(value, np.ndarray):
        arrays.append(_wire_array(value))
        return {"$nd": len(arrays) - 1}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        if "$nd" in value:
            raise WireError("payload dicts may not use the reserved key '$nd'")
        return {str(k): _encode_tree(v, arrays) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_tree(v, arrays) for v in value]
    return value


def dumps(payload) -> bytes:
    """Encode a JSON-like tree (numpy arrays allowed anywhere) to a frame."""
    arrays: list[np.ndarray] = []
    tree = _encode_tree(payload, arrays)
    table = []
    offset = 0
    for arr in arrays:
        offset = _align(offset)
        table.append(
            {
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": int(arr.nbytes),
            }
        )
        offset += arr.nbytes
    header = json.dumps({"tree": tree, "arrays": table}).encode("utf-8")
    parts = [_PREFIX.pack(WIRE_MAGIC, WIRE_VERSION, len(header)), header]
    written = 0
    for arr, entry in zip(arrays, table):
        pad = entry["offset"] - written
        if pad:
            parts.append(b"\x00" * pad)
        parts.append(arr.tobytes())
        written = entry["offset"] + entry["nbytes"]
    return b"".join(parts)


def _decode_tree(value, arrays: list[np.ndarray]):
    if isinstance(value, dict):
        if "$nd" in value:
            if len(value) != 1:
                raise WireError("malformed array placeholder")
            idx = value["$nd"]
            if not isinstance(idx, int) or not 0 <= idx < len(arrays):
                raise WireError(f"array reference {idx!r} out of range")
            return arrays[idx]
        return {k: _decode_tree(v, arrays) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_tree(v, arrays) for v in value]
    return value


def loads(data: bytes):
    """Decode a frame produced by :func:`dumps`.

    Array leaves come back as ``np.frombuffer`` views into ``data`` --
    zero-copy, read-only, values bit-for-bit the sender's.
    """
    if len(data) < _PREFIX.size:
        raise WireError("binary frame shorter than its fixed prefix")
    magic, version, header_len = _PREFIX.unpack_from(data)
    if magic != WIRE_MAGIC:
        raise WireError("bad magic: not a repro binary frame")
    if version != WIRE_VERSION:
        raise WireError(f"unsupported binary frame version {version}")
    body_start = _PREFIX.size + header_len
    if len(data) < body_start:
        raise WireError("binary frame truncated inside its header")
    try:
        header = json.loads(data[_PREFIX.size : body_start].decode("utf-8"))
        tree, table = header["tree"], header["arrays"]
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError) as exc:
        raise WireError(f"corrupt binary frame header: {exc}") from None
    arrays: list[np.ndarray] = []
    for entry in table:
        try:
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(s) for s in entry["shape"])
            offset = int(entry["offset"])
            nbytes = int(entry["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WireError(f"corrupt array table entry: {exc}") from None
        if dtype.kind not in _WIRE_KINDS:
            raise WireError(f"dtype {dtype} not allowed in binary frames")
        expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if nbytes != expected:
            raise WireError(
                f"array byte count {nbytes} does not match shape {shape} x {dtype}"
            )
        start = body_start + offset
        if start + nbytes > len(data):
            raise WireError("binary frame truncated inside an array buffer")
        arrays.append(
            np.frombuffer(data, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)), offset=start).reshape(shape)
        )
    return _decode_tree(tree, arrays)


def accepts_binary(header_value: str | None) -> bool:
    """True when an ``Accept``/``Content-Type`` header names the binary type."""
    return bool(header_value) and BINARY_CONTENT_TYPE in header_value


# -- columnar result forms ----------------------------------------------------
#
# Answers are ragged (one id list / neighbor list per query).  The packed
# form is offsets + value columns -- the flat layout the batch engines
# already produce values in -- so encoding is a handful of array builds, not
# one Python object per result element.


def pack_id_list(ids) -> np.ndarray:
    """A single MRQ answer as one int64 column."""
    return np.asarray(list(ids), dtype=np.int64)


def unpack_id_list(obj) -> list[int]:
    """Inverse of :func:`pack_id_list`; also accepts the JSON list form."""
    if isinstance(obj, np.ndarray):
        # tolist() on an integer column already yields Python ints in one
        # C loop; coerce the dtype first so that stays true for any sender.
        return np.asarray(obj, dtype=np.int64).tolist()
    return [int(i) for i in obj]


def _offsets_of(lists) -> np.ndarray:
    lengths = np.fromiter((len(l) for l in lists), dtype=np.int64, count=len(lists))
    offsets = np.zeros(len(lists) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return offsets


def pack_id_lists(lists) -> dict:
    """Batch MRQ answers as ``{"offsets": i64[q+1], "ids": i64[total]}``."""
    offsets = _offsets_of(lists)
    flat: list = []
    for ids in lists:
        flat.extend(ids)
    return {"offsets": offsets, "ids": np.asarray(flat, dtype=np.int64)}


def unpack_id_lists(obj) -> list[list[int]]:
    """Inverse of :func:`pack_id_lists`; also accepts the JSON nested form."""
    if isinstance(obj, dict):
        bounds = np.asarray(obj["offsets"], dtype=np.int64).tolist()
        values = unpack_id_list(obj["ids"])
        return [values[a:b] for a, b in zip(bounds, bounds[1:])]
    return [unpack_id_list(ids) for ids in obj]


def pack_neighbors(neighbors) -> dict:
    """One MkNNQ answer as ``{"dists": f8[n], "ids": i64[n]}`` columns."""
    dists = np.fromiter(
        (n.distance for n in neighbors), dtype=np.float64, count=len(neighbors)
    )
    ids = np.fromiter(
        (n.object_id for n in neighbors), dtype=np.int64, count=len(neighbors)
    )
    return {"dists": dists, "ids": ids}


def unpack_neighbors(obj) -> list[Neighbor]:
    """Inverse of :func:`pack_neighbors`; also accepts the JSON pair form."""
    if isinstance(obj, dict):
        dists = np.asarray(obj["dists"], dtype=np.float64).tolist()
        ids = unpack_id_list(obj["ids"])
        return [Neighbor(d, i) for d, i in zip(dists, ids)]
    return [Neighbor(float(d), int(i)) for d, i in obj]


def pack_neighbor_lists(lists) -> dict:
    """Batch MkNNQ answers as offsets + distance/id columns."""
    offsets = _offsets_of(lists)
    total = int(offsets[-1])
    dists = np.fromiter(
        (n.distance for ns in lists for n in ns), dtype=np.float64, count=total
    )
    ids = np.fromiter(
        (n.object_id for ns in lists for n in ns), dtype=np.int64, count=total
    )
    return {"offsets": offsets, "dists": dists, "ids": ids}


def unpack_neighbor_lists(obj) -> list[list[Neighbor]]:
    """Inverse of :func:`pack_neighbor_lists`; also accepts the JSON form."""
    if isinstance(obj, dict):
        bounds = np.asarray(obj["offsets"], dtype=np.int64).tolist()
        # tolist() already yields Python floats / ints, so Neighbor can be
        # built without per-element float()/int() round trips.
        dists = np.asarray(obj["dists"], dtype=np.float64).tolist()
        ids = unpack_id_list(obj["ids"])
        return [
            [Neighbor(d, i) for d, i in zip(dists[a:b], ids[a:b])]
            for a, b in zip(bounds, bounds[1:])
        ]
    return [unpack_neighbors(ns) for ns in obj]
