"""Micro-batching dispatcher: coalesce single queries into vectorised batches.

PR 1's batch execution layer answers a *batch* of queries 4.6-9.6x faster
than a per-query loop -- but online traffic arrives one query at a time,
from many concurrent callers.  The dispatcher bridges the two: callers
submit individual queries and get a Future; a background worker groups
compatible queries (same operation, same radius or k) and executes each
group as **one** ``range_query_many`` / ``knn_query_many`` call, so single
query traffic inherits the batch layer's throughput.

Two tuning knobs bound the coalescing:

* ``max_batch_size`` -- a group is dispatched as soon as it reaches this
  many queries (caps per-batch latency and memory);
* ``max_wait_ms`` -- the oldest query in a group never waits longer than
  this before dispatch (caps added latency when traffic is sparse; 0
  dispatches every group as soon as the worker sees it).

Groups are keyed ``(index_id, kind, param)``.  The index id matters when
one dispatcher serves a catalog of several hosted indexes: two members
answering the same radius must never have their queries coalesced into
one batch -- the batch executes against exactly one index, so a shared
``(kind, param)`` key would silently answer half the batch from the
wrong structure.  Single-index services pass their one namespace for
every submission and behave exactly as before.

The wait actually applied is *adaptive* (unless ``adaptive_wait=False``):
a per-(index_id, kind, param)-group EWMA of observed arrival intervals
estimates how long filling a batch from that group would take
(``ewma * (max_batch_size - 1)``), and the group's effective wait is that
estimate clamped to the configured ``max_wait_ms`` bound.  Rates are
tracked per group because only same-parameter queries against the same
index can ever share a batch -- a dense mix of distinct radii must still
read as sparse for every group.  A dense group fills batches quickly, so
its wait shrinks toward zero latency overhead; at the sparse extreme --
the group's EWMA interval at or beyond the bound itself, so not even one
more compatible arrival is expected inside it -- the wait collapses to
zero instead of stalling every caller for the full bound on the off
chance of company.  ``stats()`` exposes the most recently active group's
values.

Answers are contractually identical to direct per-query calls: the batch
layer guarantees ``query_many(qs)[i] == query(qs[i])``, and grouping keys
include the query parameter, so no approximation is introduced anywhere.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Callable

from ..obs import tracing
from ..obs.metrics import BATCH_SIZE_BUCKETS, MetricsRegistry

__all__ = ["MicroBatchDispatcher", "DispatcherStats"]


class DispatcherStats:
    """Counts of what the dispatcher coalesced (read via ``stats()``).

    Written by the worker thread (:meth:`record`, per dispatched batch) and
    by submitter threads (:meth:`record_wait`, per arrival) while
    ``as_dict()`` is read concurrently from ``QueryService.stats()`` -- so
    every update and every read holds one internal lock.  Without it a
    reader can observe a torn snapshot (``queries`` already incremented,
    ``batches`` not yet).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.queries = 0
        self.batches = 0
        self.largest_batch = 0
        # adaptive wait / arrival EWMA of the most recently active group
        self.current_wait_ms = 0.0
        self.ewma_arrival_ms: float | None = None

    def record(self, batch_size: int) -> None:
        with self._lock:
            self.queries += batch_size
            self.batches += 1
            self.largest_batch = max(self.largest_batch, batch_size)

    def record_wait(self, wait_ms: float, ewma_ms: float | None) -> None:
        """Publish the most recently active group's wait and arrival EWMA."""
        with self._lock:
            self.current_wait_ms = wait_ms
            self.ewma_arrival_ms = ewma_ms

    @property
    def mean_batch_size(self) -> float:
        with self._lock:
            return self.queries / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "queries": self.queries,
                "batches": self.batches,
                "mean_batch_size": (
                    round(self.queries / self.batches, 2) if self.batches else 0.0
                ),
                "largest_batch": self.largest_batch,
                "current_wait_ms": round(self.current_wait_ms, 4),
                "ewma_arrival_ms": (
                    None
                    if self.ewma_arrival_ms is None
                    else round(self.ewma_arrival_ms, 4)
                ),
            }


class MicroBatchDispatcher:
    """Group concurrent single-query submissions into batch calls.

    Args:
        execute_batch: ``execute_batch(index_id, kind, param, queries) ->
            results``, one result per query in order; ``index_id`` is the
            hosted index the group was submitted against, ``kind`` is
            ``"range"`` or ``"knn"`` and ``param`` the radius / k shared
            by the group.  The service facade passes its cache-aware
            batch executor here.
        max_batch_size: dispatch a group once it holds this many queries.
        max_wait_ms: upper bound on how long a group's oldest query waits,
            full or not.  With ``adaptive_wait`` the applied wait is
            usually below this bound (see module docstring).
        adaptive_wait: derive each group's applied wait from an EWMA of
            its observed arrival intervals, clamped to ``[0, max_wait_ms]``;
            False always waits the full configured bound.
        ewma_alpha: smoothing factor of the arrival-interval EWMA.

    Thread-safe; use as a context manager or call :meth:`close` so the
    worker thread is joined deterministically.
    """

    def __init__(
        self,
        execute_batch: Callable[[str, str, float, list], list],
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        adaptive_wait: bool = True,
        ewma_alpha: float = 0.2,
        metrics: MetricsRegistry | None = None,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self._execute_batch = execute_batch
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait_ms / 1000.0
        self.adaptive_wait = adaptive_wait
        self.ewma_alpha = ewma_alpha
        # arrival tracking is *per group*: batches only ever form inside
        # one (index_id, kind, param) group, so a globally dense stream of
        # distinct parameters must still read as sparse for each group.
        # Entries: key -> [last arrival, ewma interval or None, applied
        # wait].
        self._rates: "OrderedDict[tuple, list]" = OrderedDict()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        # (index_id, kind, param) -> list of (query, future, submit-time
        # span or None, enqueue time); arrival holds the enqueue time of
        # each group's oldest member
        self._pending: dict[tuple, list[tuple]] = {}
        self._arrival: dict[tuple, float] = {}
        self._closed = False
        self._queue_wait_ms = self._batch_size_hist = None
        if metrics is not None:
            self._queue_wait_ms = metrics.histogram(
                "repro_dispatcher_queue_wait_ms",
                "Time each query spent queued in the dispatcher before its "
                "batch executed, milliseconds.",
            )
            self._batch_size_hist = metrics.histogram(
                "repro_dispatcher_batch_size",
                "Number of queries coalesced into each dispatched batch.",
                buckets=BATCH_SIZE_BUCKETS,
            )
        self.stats = DispatcherStats()
        self.stats.record_wait(self.max_wait * 1000.0, None)
        self._worker = threading.Thread(
            target=self._run, name="repro-dispatcher", daemon=True
        )
        self._worker.start()

    # -- submission ----------------------------------------------------------

    def submit(self, index_id: str, kind: str, query_obj, param) -> Future:
        """Enqueue one query against one hosted index; the Future resolves
        to its answer list.  Only queries sharing the full
        ``(index_id, kind, param)`` key can be coalesced."""
        if kind not in ("range", "knn"):
            raise ValueError(f"kind must be 'range' or 'knn', got {kind!r}")
        future: Future = Future()
        key = (index_id, kind, float(param))
        with self._wake:
            if self._closed:
                raise RuntimeError("dispatcher is closed")
            now = time.monotonic()
            self._observe_arrival(key, now)
            group = self._pending.setdefault(key, [])
            if not group:
                self._arrival[key] = now
            # the submit-time span (the caller's dispatcher_wait span, if
            # traced) is where the batch's cost share will be attributed
            group.append((query_obj, future, tracing.current_span(), now))
            self._wake.notify()
        return future

    # bound on distinct (index_id, kind, param) rate entries kept; beyond it the
    # least recently active group's history is forgotten (it restarts at
    # the configured bound on its next arrival)
    _MAX_TRACKED_GROUPS = 4096

    def _observe_arrival(self, key: tuple, now: float) -> None:
        """Update one group's arrival EWMA and adaptive wait (lock held).

        The wait targets the expected time to *fill* a batch from this
        group's own arrivals, ``ewma * (max_batch_size - 1)``, clamped to
        the configured bound: waiting longer than the fill time cannot
        grow the batch any further before the size trigger fires.  When
        the group's expected interval reaches the bound itself, no
        companion arrival is likely inside it at all, so the wait drops to
        zero -- a sparse group dispatches immediately rather than paying
        the full bound per query for nothing.  Rates are per group because
        only same-(index_id, kind, param) queries can share a batch: a
        dense mix of distinct parameters must still count as sparse for
        each group.
        """
        rate = self._rates.get(key)
        if rate is None:
            while len(self._rates) >= self._MAX_TRACKED_GROUPS:
                self._rates.popitem(last=False)
            # nothing observed for this group yet: the configured bound
            self._rates[key] = [now, None, self.max_wait]
            return
        self._rates.move_to_end(key)
        # clamp idle gaps to twice the bound before they enter the EWMA: a
        # long pause says "sparse" exactly as loudly at 2x the bound as at
        # 1000x, and an uncapped gap would poison the estimate so badly
        # that the burst following the pause runs as singleton batches for
        # dozens of queries while it decays
        interval = min(now - rate[0], 2.0 * self.max_wait)
        rate[0] = now
        if rate[1] is None:
            rate[1] = interval
        else:
            rate[1] += self.ewma_alpha * (interval - rate[1])
        if self.adaptive_wait:
            if rate[1] >= self.max_wait:
                rate[2] = 0.0
            else:
                rate[2] = min(self.max_wait, rate[1] * (self.max_batch_size - 1))
        # stats reflect the most recently active group
        self.stats.record_wait(rate[2] * 1000.0, rate[1] * 1000.0)

    def _wait_of(self, key: tuple) -> float:
        """The applied coalescing wait for one group (lock held)."""
        rate = self._rates.get(key)
        return rate[2] if rate is not None else self.max_wait

    def range_query(self, query_obj, radius: float, index_id: str = "") -> list:
        """Blocking single MRQ through the batcher (for plain callers)."""
        return self.submit(index_id, "range", query_obj, radius).result()

    def knn_query(self, query_obj, k: int, index_id: str = "") -> list:
        """Blocking single MkNNQ through the batcher."""
        return self.submit(index_id, "knn", query_obj, k).result()

    # -- worker --------------------------------------------------------------

    def _take_ready(self, now: float, force: bool = False) -> list[tuple[tuple, list]]:
        """Pop every group that is full or past its deadline (lock held)."""
        ready = []
        for key in list(self._pending):
            group = self._pending[key]
            if (
                force
                or len(group) >= self.max_batch_size
                or now - self._arrival[key] >= self._wait_of(key)
            ):
                ready.append((key, group[: self.max_batch_size]))
                remainder = group[self.max_batch_size :]
                if remainder:
                    # keep the group's original arrival time: the overflow
                    # queries already waited, so the max_wait bound must
                    # keep counting from their enqueue, not restart
                    self._pending[key] = remainder
                else:
                    del self._pending[key]
                    del self._arrival[key]
        return ready

    def _next_deadline(self) -> float | None:
        if not self._arrival:
            return None
        return min(
            arrived + self._wait_of(key) for key, arrived in self._arrival.items()
        )

    def _run(self) -> None:
        while True:
            with self._wake:
                while not self._pending and not self._closed:
                    self._wake.wait()
                if self._closed and not self._pending:
                    return
                now = time.monotonic()
                # at close time everything pending is drained immediately
                ready = self._take_ready(now, force=self._closed)
                if not ready:
                    deadline = self._next_deadline()
                    # no group full or due yet: sleep until the oldest
                    # group's deadline or an arrival that fills one
                    self._wake.wait(timeout=max(0.0, (deadline or now) - now))
                    continue
            for (index_id, kind, param), group in ready:
                self._dispatch(index_id, kind, param, group)

    def _dispatch(self, index_id: str, kind: str, param: float, group: list) -> None:
        queries = [item[0] for item in group]
        spans = [item[2] for item in group]
        now = time.monotonic()
        for _, _, span_, t_enq in group:
            wait_ms = (now - t_enq) * 1000.0
            if self._queue_wait_ms is not None:
                self._queue_wait_ms.observe(wait_ms)
            if span_ is not None:
                span_.meta["queue_wait_ms"] = round(wait_ms, 3)
        if self._batch_size_hist is not None:
            self._batch_size_hist.observe(len(group))
        try:
            if any(span_ is not None for span_ in spans):
                # batch_execution inside the executor attributes its
                # measured cost delta back to these submit-time spans
                with tracing.attribution_scope(spans):
                    results = self._execute_batch(index_id, kind, param, queries)
            else:
                results = self._execute_batch(index_id, kind, param, queries)
        except BaseException as exc:  # propagate to every waiting caller
            for item in group:
                item[1].set_exception(exc)
            return
        self.stats.record(len(group))
        for item, result in zip(group, results):
            item[1].set_result(result)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop accepting queries, drain pending groups, join the worker."""
        with self._wake:
            self._closed = True
            self._wake.notify_all()
        self._worker.join()

    def __enter__(self) -> "MicroBatchDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
