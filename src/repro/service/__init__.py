"""Query service subsystem: snapshots, result caching, micro-batching.

Turns the library from a build-and-query toolkit into a long-running query
service (the ROADMAP's serving north star):

* :mod:`~repro.service.snapshot` -- serialise any built index to disk and
  restore it with zero distance computations (versioned format);
* :mod:`~repro.service.cache` -- an LRU over exact query results, keyed on
  (index, query, radius | k), with stats folded into
  :class:`~repro.core.counters.CostCounters`;
* :mod:`~repro.service.dispatcher` -- coalesces concurrent single-query
  callers into the batch execution layer's vectorised multi-query calls;
* :mod:`~repro.service.catalog` -- the :class:`IndexCatalog`: several
  hosted indexes over one dataset, kept answer-equivalent (fan-out
  mutations, whole-catalog snapshots), each with private cost counters;
* :mod:`~repro.service.costmodel` / :mod:`~repro.service.planner` -- the
  cost-based :class:`QueryPlanner`: per-(index, kind) least-squares cost
  models fitted online from counter deltas, routing every query to the
  predicted-cheapest catalog member (``repro plan`` explains the choice);
* :mod:`~repro.service.service` -- the :class:`QueryService` facade wiring
  the layers together (used by ``python -m repro serve``); pass
  ``catalog=`` instead of an index for planner-routed multi-index serving;
* :mod:`~repro.service.http` -- the JSON HTTP front-end over the facade
  (``python -m repro serve --http PORT``) and its :class:`ServiceClient`;
* :mod:`~repro.service.cluster` -- the multi-process topology layer: a
  router scatter-gathering over shard backends (or load-balancing over
  replicas) with health-checked membership and rolling reloads
  (``python -m repro cluster``).

Observability (:mod:`repro.obs`) threads through every layer: pass one
:class:`~repro.obs.metrics.MetricsRegistry` to :class:`QueryService` and
:class:`HttpQueryServer` for latency/queue/batch/cache metrics behind
``GET /metrics``, and serve with a slow-query threshold for per-request
trace spans with attributed batch costs.
"""

from .cache import QueryResultCache, query_key
from .catalog import (
    CatalogError,
    CatalogMember,
    IndexCatalog,
    is_catalog_manifest,
    load_catalog_manifest,
)
from .cluster import (
    ClusterError,
    ClusterRouter,
    ClusterSupervisor,
    load_cluster_manifest,
    save_split,
    split_snapshot,
)
from .costmodel import CostModel
from .dispatcher import DispatcherStats, MicroBatchDispatcher
from .http import HttpQueryServer, ServiceClient, ServiceClientError
from .planner import QueryPlanner
from .service import QueryService
from .snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SNAPSHOT_MAGIC,
    SnapshotError,
    SnapshotInfo,
    iter_components,
    load_index,
    rebind_counters,
    save_index,
    snapshot_info,
)

__all__ = [
    "CatalogError",
    "CatalogMember",
    "ClusterError",
    "ClusterRouter",
    "ClusterSupervisor",
    "CostModel",
    "DispatcherStats",
    "HttpQueryServer",
    "IndexCatalog",
    "MicroBatchDispatcher",
    "QueryPlanner",
    "QueryResultCache",
    "QueryService",
    "ServiceClient",
    "ServiceClientError",
    "SNAPSHOT_FORMAT_VERSION",
    "SNAPSHOT_MAGIC",
    "SnapshotError",
    "SnapshotInfo",
    "is_catalog_manifest",
    "iter_components",
    "load_catalog_manifest",
    "load_cluster_manifest",
    "load_index",
    "query_key",
    "save_split",
    "split_snapshot",
    "rebind_counters",
    "save_index",
    "snapshot_info",
]
