"""QueryService: the long-running serving facade over hosted indexes.

Composes the service-layer pieces into one front door:

* **snapshots** (:mod:`repro.service.snapshot`) -- host an index restored
  from disk (``QueryService.from_snapshot``) or save the hosted one
  (:meth:`QueryService.save`), so process restarts cost file IO, not
  distance computations;
* **result cache** (:mod:`repro.service.cache`) -- every query checks the
  LRU first; only misses reach an index, as one vectorised batch;
* **dispatcher** (:mod:`repro.service.dispatcher`) -- concurrent
  single-query callers are coalesced into batch calls, so online traffic
  inherits the batch layer's throughput;
* **catalog + planner** (:mod:`repro.service.catalog`,
  :mod:`repro.service.planner`) -- optionally, *several* index families
  hosted over the same dataset (``QueryService(catalog=...)``), with each
  cache-missed query or batch partition routed to the member a fitted
  cost model predicts cheapest.

The layering is strict: cache -> planner -> dispatcher -> index batch
call.  The LRU is consulted synchronously in the calling thread -- a hit
never pays the dispatcher's thread handoff or coalescing wait, which is
what makes warm repeat traffic an order of magnitude cheaper than
re-evaluation.  Only misses are routed and enter the dispatcher, which
groups them (deduplicated, per routed member) into one
``range_query_many`` / ``knn_query_many`` call and fills the cache on the
way out.  Answers are bit-for-bit identical to direct index calls -- the
cache stores exact results, the batch layer is contractually exact, and
catalog members are answer-equivalent by construction -- so one cache
namespace serves every member and routing is invisible in the results.

The classic single-index construction (``QueryService(index)``) is the
one-member special case: no catalog, no planner, the exact pre-catalog
API and stats shape.

Mutations (insert/delete) pass through to the hosted index (fanned out to
every catalog member) and invalidate the cache namespace, keeping served
answers consistent.  Invalidation is *partial*: only entries whose radius
ball (or kNN kth-distance ball) could contain the mutated object are
dropped; the rest keep serving (see
:meth:`QueryResultCache.invalidate_affected`).
"""

from __future__ import annotations

import threading
import time

from ..core.counters import CostCounters
from ..core.index import MetricIndex
from ..core.queries import Neighbor
from ..obs import tracing
from ..obs.metrics import MetricsRegistry
from .cache import QueryResultCache
from .catalog import CatalogError, IndexCatalog, is_catalog_manifest
from .dispatcher import MicroBatchDispatcher
from .planner import QueryPlanner
from .snapshot import load_index, rebind_counters, save_index, snapshot_info

__all__ = ["QueryService", "iter_pruners"]


def iter_pruners(index: MetricIndex):
    """Yield ``(owner, pruner)`` for every staged pruner in an index graph.

    Walks composite indexes (``ShardedIndex`` exposes ``shards``) so a
    service hosting a sharded pivot table reaches every shard's pruner.
    Indexes without a staged cascade (trees, externals) simply yield
    nothing.
    """
    pruner = getattr(index, "pruner", None)
    if pruner is not None:
        yield index, pruner
    for shard in getattr(index, "shards", ()) or ():
        yield from iter_pruners(shard)


class QueryService:
    """Serve MRQ/MkNNQ traffic from hosted indexes with caching + batching.

    Args:
        index: any built :class:`MetricIndex` (the classic single-index
            mode).  Mutually exclusive with ``catalog``.
        catalog: an :class:`~repro.service.catalog.IndexCatalog` of >= 1
            answer-equivalent members; every cache-missed query or batch
            partition is routed to the member the planner's fitted cost
            model predicts cheapest.  Pass ``planner_epsilon`` /
            ``planner_seed`` to tune exploration, and call
            ``service.planner.calibrate()`` (or construct via
            :meth:`from_snapshots`) for a deterministic seed-time model.
        index_id: cache namespace for this service; defaults to the
            index's paper name (single mode) or ``"catalog"`` (catalog
            mode -- members answer identically, so one namespace serves
            them all and a hit never cares who computed it).
        planner_epsilon: catalog mode only -- epsilon-greedy exploration
            rate of the planner (fraction of routes sent to a random
            member so the cost models track drift).
        planner_seed: catalog mode only -- seed of the planner's
            exploration RNG (deterministic routing for tests/benches).
        cache: a shared :class:`QueryResultCache`, or None to create a
            private one sized ``cache_size``.
        cache_size: capacity of the private cache (entries); 0 disables
            result caching entirely.
        cache_bytes: optional byte budget for the private cache -- evicts
            by accounted result size instead of entry count alone (see
            :class:`QueryResultCache`).
        cache_ttl_s: optional time-to-live for private-cache entries in
            seconds; expired lookups count as misses (see
            :class:`QueryResultCache`).  None keeps entries until evicted.
        max_batch_size / max_wait_ms / adaptive_wait: dispatcher knobs
            (see :class:`MicroBatchDispatcher`); ``use_dispatcher=False``
            runs without a background thread (single calls become
            one-query batches).
        counters: shared cost accumulator; defaults to the index's own.
            Cache hit/miss/eviction stats are folded into it.
        adaptive_pruning: opt every hosted staged pruner into online
            pivot re-ranking from observed per-pivot decided counts
            (see :meth:`~repro.core.staged.StagedPruner.enable_adaptive`).
            Off by default because re-ranking changes the budgeted
            Ptolemaic pair set mid-stream, which breaks the sequential
            vs batch cost-parity the bench suite asserts; a serving
            process has no such parity contract and benefits from the
            drift-tracking order.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, the service records batch-execution latency per
            query kind and passes the registry down to its private cache
            (cache outcome counters) and dispatcher (queue-wait and
            batch-size histograms).  None (the default) records nothing.
    """

    def __init__(
        self,
        index: MetricIndex | None = None,
        index_id: str | None = None,
        cache: QueryResultCache | None = None,
        cache_size: int = 1024,
        cache_bytes: int | None = None,
        cache_ttl_s: float | None = None,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        adaptive_wait: bool = True,
        use_dispatcher: bool = True,
        counters: CostCounters | None = None,
        metrics: MetricsRegistry | None = None,
        catalog: IndexCatalog | None = None,
        planner_epsilon: float = 0.05,
        planner_seed: int = 0,
        adaptive_pruning: bool = False,
    ):
        if (index is None) == (catalog is None):
            raise ValueError("pass exactly one of index= or catalog=")
        self.catalog = catalog
        if catalog is not None:
            if len(catalog) == 0:
                raise ValueError("catalog has no members")
            # the primary member stands in wherever a single index is
            # expected (payload decoding, health, dataset identity);
            # queries are routed per member by the planner
            self.index = catalog.primary.index
            self.index_id = index_id if index_id is not None else "catalog"
            # cache hit/miss accounting needs an accumulator that is not
            # any one member's (a hit belongs to the service, not to
            # whichever member happened to fill the entry)
            self.counters = counters if counters is not None else CostCounters()
            self.planner: QueryPlanner | None = QueryPlanner(
                catalog,
                epsilon=planner_epsilon,
                seed=planner_seed,
                metrics=metrics,
            )
        else:
            self.index = index
            self.index_id = index_id if index_id is not None else index.name
            if counters is not None:
                rebind_counters(index, counters)
            self.counters = index.space.counters
            self.planner = None
        self.adaptive_pruning = adaptive_pruning
        if adaptive_pruning:
            for _owner, pruner in self._hosted_pruners():
                enable = getattr(pruner, "enable_adaptive", None)
                if enable is not None:
                    enable()
        self.metrics = metrics
        if metrics is not None:
            batch_ms = metrics.histogram(
                "repro_service_batch_execute_ms",
                "wall milliseconds per batch index execution",
                labelnames=("kind",),
            )
            # children pre-resolved: observe() on the hot path skips the
            # label-lookup lock (same idiom as the cache's outcome counters)
            self._batch_ms = {
                "range": batch_ms.labels("range"),
                "knn": batch_ms.labels("knn"),
            }
        else:
            self._batch_ms = None
        self.cache = (
            cache
            if cache is not None
            else QueryResultCache(
                capacity=cache_size,
                counters=self.counters,
                capacity_bytes=cache_bytes,
                ttl_s=cache_ttl_s,
                metrics=metrics,
            )
        )
        self.dispatcher = (
            MicroBatchDispatcher(
                self._execute_misses,
                max_batch_size=max_batch_size,
                max_wait_ms=max_wait_ms,
                adaptive_wait=adaptive_wait,
                metrics=metrics,
            )
            if use_dispatcher
            else None
        )
        # where the hosted index came from, and how many hot reloads it
        # has seen -- surfaced by /healthz so cluster health checks can
        # tell a stale replica from a current one
        self.snapshot_path: str | None = None
        self.reload_generation = 0
        self._reload_lock = threading.Lock()

    # -- construction from disk ----------------------------------------------

    @classmethod
    def from_snapshot(cls, path, **kwargs) -> "QueryService":
        """Restore an index (or a whole catalog) from disk and serve it.

        The restore performs zero distance computations -- the whole point
        of snapshotting a built index.  A ``*.catalog.json`` manifest
        restores every member and serves in catalog mode (with a
        deterministic calibration pass, like :meth:`from_snapshots`).
        Keyword arguments are forwarded to the constructor.
        """
        if is_catalog_manifest(path):
            calibrate = kwargs.pop("calibrate", True)
            kwargs.pop("counters", None)
            catalog = IndexCatalog.load(path)
            service = cls(catalog=catalog, **kwargs)
            service.snapshot_path = str(path)
            if calibrate:
                service.planner.calibrate()
            return service
        counters = kwargs.pop("counters", None) or CostCounters()
        index = load_index(path, counters=counters)
        service = cls(index, counters=counters, **kwargs)
        service.snapshot_path = str(path)
        return service

    @classmethod
    def from_snapshots(cls, paths, calibrate: bool = True, **kwargs) -> "QueryService":
        """Restore several member snapshots as one routed catalog service.

        Each path restores one member; member ids default to the index
        paper names (deduplicated with ``#2``, ``#3``, ... when two
        snapshots hold the same family).  ``calibrate=True`` (default)
        runs the planner's deterministic seed-time pass so the very first
        query routes on a fitted cost model.
        """
        paths = list(paths)
        if len(paths) == 1 and is_catalog_manifest(paths[0]):
            return cls.from_snapshot(paths[0], calibrate=calibrate, **kwargs)
        catalog = IndexCatalog()
        for path in paths:
            counters = CostCounters()
            index = load_index(path, counters=counters)
            member_id, suffix = index.name, 2
            while member_id in catalog:
                member_id = f"{index.name}#{suffix}"
                suffix += 1
            catalog.register(index, index_id=member_id, counters=counters)
        service = cls(catalog=catalog, **kwargs)
        service.snapshot_path = str(paths[0]) if len(paths) == 1 else None
        if calibrate:
            service.planner.calibrate()
        return service

    def save(self, path):
        """Snapshot the hosted index to ``path`` (see :func:`save_index`);
        in catalog mode, the whole catalog (manifest + member snapshots,
        see :meth:`IndexCatalog.save`)."""
        if self.catalog is not None:
            return self.catalog.save(path)
        return save_index(self.index, path)

    def reload_from_snapshot(self, path):
        """Hot-swap the hosted index for one restored from ``path``.

        The restore (file IO + unpickling) happens before the swap, so the
        service keeps answering from the old index until the new one is
        fully ready; the swap itself is one attribute assignment followed
        by a cache invalidation of the index's namespace.  Correctness
        under concurrency: each batch call binds ``self.index`` exactly
        once *after* capturing the cache generation, and the invalidation
        bumps that generation -- so an in-flight answer computed against
        the old index can never be cached as the new index's answer (the
        conditional ``put`` drops it), and every stale cached entry is
        gone by the time :meth:`reload_from_snapshot` returns.

        The cache namespace (``index_id``) and the shared counters are
        kept, so serving stats accumulate across the swap.  Returns the
        new snapshot's :class:`~repro.service.snapshot.SnapshotInfo`.

        A catalog service reloads from a catalog manifest: every member
        restores before the swap, and the planner's cost models carry
        over (member ids persist across the swap; epsilon-greedy
        exploration re-learns any cost drift the new snapshots bring).
        """
        if self.catalog is not None:
            if not is_catalog_manifest(path):
                raise CatalogError(
                    f"{path} is not a catalog manifest; a catalog service "
                    "reloads from the manifest its save() wrote"
                )
            with self._reload_lock:
                info = self.catalog.reload(path)
                self.index = self.catalog.primary.index
                self.snapshot_path = str(path)
                self.reload_generation += 1
                self.cache.invalidate(self.index_id)
            if self.adaptive_pruning:
                for _owner, pruner in self._hosted_pruners():
                    enable = getattr(pruner, "enable_adaptive", None)
                    if enable is not None:
                        enable()
            return info
        info = snapshot_info(path)  # validate the header before restoring
        index = load_index(path, counters=self.counters)
        if self.adaptive_pruning:
            # restored pruners come back with the frozen build-time order;
            # re-opt them into online re-ranking before they see traffic
            for _owner, pruner in iter_pruners(index):
                enable = getattr(pruner, "enable_adaptive", None)
                if enable is not None:
                    enable()
        with self._reload_lock:
            self.index = index
            self.snapshot_path = str(path)
            self.reload_generation += 1
            self.cache.invalidate(self.index_id)
        return info

    # -- pruners ---------------------------------------------------------------

    def _hosted_pruners(self):
        """``(owner, pruner)`` pairs across the hosted index or catalog."""
        if self.catalog is not None:
            for member in self.catalog.members():
                yield from iter_pruners(member.index)
        else:
            yield from iter_pruners(self.index)

    # -- query surface --------------------------------------------------------

    def _resolve_pin(self, pin: str | None) -> str | None:
        """Validate an explicit member pin (the ``index=`` query kwarg)."""
        if pin is None:
            return None
        if self.catalog is None:
            if pin != self.index_id:
                raise ValueError(
                    f"this service hosts only {self.index_id!r}, cannot pin "
                    f"{pin!r}"
                )
            return None
        self.catalog.member(pin)  # raises CatalogError on unknown ids
        return pin

    def _route(self, kind: str, param: float, batch_size: int, pin: str | None) -> str:
        """The dispatcher group / executor target for one miss partition.

        Single mode: always the one hosted index (the service's own
        namespace doubles as the group id, exactly the pre-catalog
        behaviour).  Catalog mode: the pinned member, or whichever member
        the planner's cost model predicts cheapest.
        """
        if self.catalog is None:
            return self.index_id
        if pin is not None:
            return pin
        return self.planner.route(kind, param, batch_size)

    def _execute_misses(
        self, index_id: str, kind: str, param: float, queries: list
    ) -> list:
        """Answer cache-missed queries with one vectorised index call.

        This is the dispatcher's batch executor; ``index_id`` names the
        routed catalog member (or the service's own namespace in single
        mode).  Duplicate queries within the batch (concurrent callers
        asking the same thing) are deduplicated so each distinct query
        costs one evaluation; every answer is cached on the way out.  In
        catalog mode the member's counters are bracketed around the call
        and the measured delta feeds the planner's cost model.
        """
        if self.catalog is not None:
            member = self.catalog.member(index_id)
            index, exec_counters = member.index, member.counters
        else:
            index, exec_counters = self.index, self.counters
        results: list = [None] * len(queries)
        positions_by_key: dict = {}  # cache key -> positions awaiting it
        for i, query_obj in enumerate(queries):
            key = self.cache.make_key(self.index_id, kind, query_obj, param)
            positions_by_key.setdefault(key, []).append(i)
        distinct = [queries[positions[0]] for positions in positions_by_key.values()]
        # capture the invalidation epoch before evaluating: if a concurrent
        # insert/delete lands mid-evaluation, these answers predate it and
        # the conditional put drops them instead of caching stale results
        caching = self.cache.capacity > 0
        generation = self.cache.generation(self.index_id) if caching else 0
        observing = self.planner is not None
        before = exec_counters.counts() if observing else None
        t0 = (
            time.perf_counter()
            if (self._batch_ms is not None or observing)
            else 0.0
        )
        # the batch_execution scope measures this call's CostCounters
        # delta and attributes it to whoever is waiting: exactly to the
        # calling request when it runs its own batch, proportionally
        # (sum-exact) to the coalesced requests when the dispatcher
        # registered them; with no trace anywhere it is a no-op
        with tracing.batch_execution(
            kind, exec_counters, len(queries), len(distinct)
        ):
            if kind == "range":
                answers = index.range_query_many(distinct, param)
            else:
                answers = index.knn_query_many(distinct, int(param))
        if self._batch_ms is not None or observing:
            wall_ms = (time.perf_counter() - t0) * 1000.0
            if self._batch_ms is not None:
                self._batch_ms[kind].observe(wall_ms)
            if observing:
                delta = exec_counters.delta_since(before)
                self.planner.observe(
                    index_id,
                    kind,
                    param,
                    len(distinct),
                    len(index.space),
                    delta.distance_computations,
                    delta.page_reads,
                    wall_ms,
                )
        for (key, positions), answer in zip(positions_by_key.items(), answers):
            if caching:
                self.cache.put(
                    key, answer, generation=generation, query_obj=queries[positions[0]]
                )
            for i in positions:
                results[i] = list(answer)
        return results

    def _execute_batch(
        self, kind: str, param: float, queries: list, pin: str | None = None
    ) -> list:
        """Cache-aware batch: hits from the LRU, the whole miss partition
        routed to one member and answered in one index call."""
        if self.cache.capacity == 0:
            # disabled cache: every lookup would be a guaranteed miss --
            # skip the key hashing and the misleading miss accounting
            target = self._route(kind, param, len(queries), pin)
            return self._execute_misses(target, kind, param, queries)
        results: list = [None] * len(queries)
        misses: list[int] = []
        with tracing.span("cache_lookup", kind=kind) as lookup:
            for i, query_obj in enumerate(queries):
                key = self.cache.make_key(self.index_id, kind, query_obj, param)
                cached = self.cache.get(key)
                if cached is not None:
                    results[i] = cached
                else:
                    misses.append(i)
        if lookup is not None:
            lookup.meta["hits"] = len(queries) - len(misses)
            lookup.meta["misses"] = len(misses)
        if misses:
            target = self._route(kind, param, len(misses), pin)
            answers = self._execute_misses(
                target, kind, param, [queries[i] for i in misses]
            )
            for i, answer in zip(misses, answers):
                results[i] = answer
        return results

    def _query_one(self, kind: str, query_obj, param: float, pin: str | None = None):
        """Single query: synchronous cache check, dispatcher on a miss.

        The cache lookup runs in the calling thread, so warm repeat
        traffic never pays the dispatcher's handoff or coalescing wait;
        only misses are routed and enqueued for batching (the routed
        member is part of the dispatcher's group key, so only
        same-member queries coalesce).  A disabled cache (capacity 0) is
        bypassed entirely -- no key is hashed and no ``cache_miss`` is
        counted for a lookup that cannot ever hit.
        """
        if self.cache.capacity > 0:
            key = self.cache.make_key(self.index_id, kind, query_obj, param)
            with tracing.span("cache_lookup", kind=kind) as lookup:
                cached = self.cache.get(key)
            if lookup is not None:
                lookup.meta["outcome"] = "hit" if cached is not None else "miss"
            if cached is not None:
                return cached
        target = self._route(kind, param, 1, pin)
        if self.dispatcher is not None:
            # the submit-time span (this one) is what the dispatcher
            # carries to the batch execution for cost attribution
            with tracing.span("dispatcher_wait", kind=kind):
                return self.dispatcher.submit(target, kind, query_obj, param).result()
        return self._execute_misses(target, kind, param, [query_obj])[0]

    def range_query(self, query_obj, radius: float, index: str | None = None) -> list[int]:
        """One MRQ; misses coalesce with concurrent callers' traffic.
        ``index=`` pins a catalog member, bypassing the planner."""
        return self._query_one("range", query_obj, float(radius), self._resolve_pin(index))

    def knn_query(self, query_obj, k: int, index: str | None = None) -> list[Neighbor]:
        """One MkNNQ; misses coalesce with concurrent callers' traffic.
        ``index=`` pins a catalog member, bypassing the planner."""
        return self._query_one("knn", query_obj, float(k), self._resolve_pin(index))

    def submit_range(self, query_obj, radius: float):
        """Non-blocking MRQ: a Future resolving to the answer list."""
        return self._submit("range", query_obj, float(radius))

    def submit_knn(self, query_obj, k: int):
        """Non-blocking MkNNQ: a Future resolving to the neighbor list."""
        return self._submit("knn", query_obj, float(k))

    def _submit(self, kind: str, query_obj, param: float):
        if self.dispatcher is None:
            raise RuntimeError("service was built with use_dispatcher=False")
        if self.cache.capacity > 0:
            key = self.cache.make_key(self.index_id, kind, query_obj, param)
            cached = self.cache.get(key)
            if cached is not None:
                from concurrent.futures import Future

                future: Future = Future()
                future.set_result(cached)
                return future
        target = self._route(kind, param, 1, None)
        return self.dispatcher.submit(target, kind, query_obj, param)

    def range_query_many(
        self, queries, radius: float, index: str | None = None
    ) -> list[list[int]]:
        """Batched MRQ through the cache (already-batched callers skip the
        dispatcher -- there is nothing left to coalesce).  ``index=`` pins
        a catalog member, bypassing the planner."""
        return self._execute_batch(
            "range", float(radius), list(queries), self._resolve_pin(index)
        )

    def knn_query_many(
        self, queries, k: int, index: str | None = None
    ) -> list[list[Neighbor]]:
        """Batched MkNNQ through the cache."""
        return self._execute_batch(
            "knn", float(k), list(queries), self._resolve_pin(index)
        )

    # -- maintenance -----------------------------------------------------------

    def insert(self, obj, object_id: int | None = None) -> int:
        """Insert into the hosted index, dropping only the cached results
        whose radius ball (or kNN kth-distance ball) could contain the new
        object -- everything provably out of reach survives.  The ball
        checks use the raw (uncounted) metric so cache maintenance never
        inflates compdists.

        Mutations hold the reload lock: an acknowledged insert must land
        in the index that keeps serving, never in one a concurrent
        :meth:`reload_from_snapshot` is about to discard.  In catalog
        mode the insert fans out to every member (same object, same id,
        loud on divergence) so all members stay answer-equivalent."""
        with self._reload_lock:
            if self.catalog is not None:
                new_id = self.catalog.insert(obj, object_id=object_id)
            else:
                new_id = self.index.insert(obj, object_id=object_id)
            distance = self.index.space.distance
        self.cache.invalidate_affected(self.index_id, obj=obj, distance=distance)
        return new_id

    def delete(self, object_id: int) -> None:
        """Delete from the hosted index (every catalog member in catalog
        mode), dropping only the cached results that contained the victim
        (a non-member's removal cannot change an answer).  Holds the
        reload lock like :meth:`insert`."""
        with self._reload_lock:
            if self.catalog is not None:
                self.catalog.delete(object_id)
            else:
                self.index.delete(object_id)
        self.cache.invalidate_affected(self.index_id, object_id=object_id)

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """Serving stats: cache behaviour, dispatcher coalescing, counters.

        The single-index shape is unchanged from the pre-catalog service;
        catalog mode reports member-summed counters plus ``"planner"``
        (route counts, mispredict ratio) and ``"members"`` (per-member
        attributed costs) sections.
        """
        if self.catalog is not None:
            members = self.catalog.stats()
            distance_computations = sum(
                m["distance_computations"] for m in members.values()
            )
            page_accesses = sum(m["page_accesses"] for m in members.values())
            prune_stages = {
                stage: sum(m["prune_stages"][stage] for m in members.values())
                for stage in ("prefix", "refine", "validated", "ptolemaic")
            }
        else:
            snapshot = self.counters.snapshot()
            distance_computations = snapshot.distance_computations
            page_accesses = snapshot.page_accesses
            prune_stages = {
                "prefix": snapshot.prune_prefix,
                "refine": snapshot.prune_refine,
                "validated": snapshot.prune_validated,
                "ptolemaic": snapshot.prune_ptolemaic,
            }
        out = {
            "index": self.index_id,
            "cache": self.cache.stats(),
            "distance_computations": distance_computations,
            "page_accesses": page_accesses,
            "prune_stages": prune_stages,
        }
        pruners = [
            dict(pruner.stats(), index=owner.name)
            for owner, pruner in self._hosted_pruners()
            if hasattr(pruner, "stats")
        ]
        if pruners:
            out["pruning"] = pruners
        if self.catalog is not None:
            out["planner"] = self.planner.stats()
            out["members"] = members
        if self.dispatcher is not None:
            out["dispatcher"] = self.dispatcher.stats.as_dict()
        if self.metrics is not None:
            # percentile digests of every registered histogram (request
            # latency, queue wait, batch size, ...) plus counter values
            out["telemetry"] = self.metrics.summary()
        return out

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Drain and stop the dispatcher thread (idempotent)."""
        if self.dispatcher is not None:
            self.dispatcher.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
