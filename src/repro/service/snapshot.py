"""Index snapshots: serialise a built index, restore it without rebuilding.

The paper's experiments (and any real serving deployment) pay an index's
construction cost -- up to O(n^2) distance computations for AESA, full PSA
scans for EPT* -- once, then answer many queries.  Before this module every
process start repeated that cost.  A snapshot captures a built
:class:`~repro.core.index.MetricIndex` (its tables, tree nodes, page
stores, dataset and distance) so a later process restores it and serves
queries immediately, with **zero** build-time distance computations.

File format v2 (versioned; v1 files still load)::

    MAGIC (8 bytes) | header length (4 bytes, big-endian) | header JSON
    | pad to 4096 | array regions (each 4096-aligned, little-endian)
    | pickle payload

Every large numeric array in the index graph -- the dataset's vector
table, LAESA/EPT distance tables, page-store images -- is lifted out of
the pickle into a flat dtype-tagged **region** after the header
(``header["regions"]`` records dtype, shape, offset, nbytes per region);
the pickle payload references regions by number via pickle's
persistent-id hooks.  :func:`load_index` restores each region as a
``numpy.memmap`` (copy-on-write, so the restored index stays mutable
without ever writing the file): restore cost is the small pickle skeleton,
not the vector table -- near-instant start, lazy paging, and N replicas
mapping one snapshot share its OS page cache.  Page stores cooperate via
:meth:`~repro.storage.pager.PageStore._snapshot_state`, so CPT / external
page files become one region each and pages fault in on first read.

The JSON header carries the format version, the index class, and basic
provenance, so incompatible snapshots fail fast with a clear error instead
of unpickling garbage.  Every index upholds the snapshot contract
documented on :meth:`MetricIndex.prepare_snapshot` (picklable state,
buffered pages flushed), and :class:`~repro.core.counters.CostCounters`
drops its lock on pickling.

Round-trip equality contract (asserted by ``tests/test_service.py`` for
every index family): for any queries, the restored index returns answers
identical to the original's, and restoring performs no distance
computations or page writes beyond reading the file.

Multi-index deployments compose this format rather than extend it: an
:class:`~repro.service.catalog.IndexCatalog` saves one ``.snap`` per
member plus a ``{stem}.catalog.json`` manifest naming them (the same
idiom as the cluster layer's shard manifests), and the cluster layer's
``save_split`` writes per-shard ``.snap`` files behind a
``.cluster.json`` manifest.
"""

from __future__ import annotations

import io
import json
import pickle
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.counters import CostCounters
from ..core.index import MetricIndex
from ..core.metric_space import MetricSpace
from ..storage.pager import PageStore, Pager, _rebuild_page_store

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "SnapshotInfo",
    "save_index",
    "load_index",
    "snapshot_info",
    "iter_components",
]

SNAPSHOT_MAGIC = b"REPROSNP"
SNAPSHOT_FORMAT_VERSION = 2

# regions start and stay on this boundary: mmap offsets must be multiples
# of the allocation granularity (4096 on every platform we run on), and
# page alignment is what lets replicas share clean page-cache pages
_REGION_ALIGN = 4096
# arrays smaller than this stay inline in the pickle -- a region entry,
# its alignment slack, and an mmap each cost more than they save
_MIN_REGION_BYTES = 4096

# dtype kinds that may live in regions: bool, (un)signed ints, floats,
# complex -- anything bit-copyable; object/str arrays stay in the pickle
_REGION_KINDS = frozenset("biufc")


def _align_up(n: int) -> int:
    return (n + _REGION_ALIGN - 1) // _REGION_ALIGN * _REGION_ALIGN


class SnapshotError(RuntimeError):
    """Raised for malformed, truncated, or incompatible snapshot files."""


@dataclass(frozen=True)
class SnapshotInfo:
    """The parsed header of a snapshot file."""

    format_version: int
    index_name: str
    index_class: str
    n_objects: int
    distance_name: str
    dataset_name: str
    payload_bytes: int
    region_bytes: int = 0
    n_regions: int = 0

    def row(self) -> dict:
        return {
            "Index": self.index_name,
            "Class": self.index_class,
            "Objects": self.n_objects,
            "Distance": self.distance_name,
            "Dataset": self.dataset_name,
            "Payload": self.payload_bytes,
            "Regions": self.n_regions,
            "RegionBytes": self.region_bytes,
            "Format": self.format_version,
        }


def iter_components(index: MetricIndex):
    """Yield every repro component object reachable from an index.

    Walks the attribute graph (dicts, lists, tuples, and ``repro``-defined
    objects) once, cycle-safe.  The snapshot and service layers use it to
    find all :class:`MetricSpace` and :class:`Pager` instances regardless
    of index shape -- tables keep a mapping, CPT nests an M-tree with its
    own pager, ``ShardedIndex`` holds a list of inner indexes.
    """
    seen: set[int] = set()
    stack: list[object] = [index]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, (list, tuple)):
            stack.extend(obj)
            continue
        if isinstance(obj, dict):
            stack.extend(obj.values())
            continue
        module = getattr(type(obj), "__module__", "") or ""
        if not module.startswith("repro"):
            continue
        yield obj
        state = getattr(obj, "__dict__", None)
        if state:
            stack.extend(state.values())


def _spaces_of(index: MetricIndex) -> list[MetricSpace]:
    return [c for c in iter_components(index) if isinstance(c, MetricSpace)]


def _pagers_of(index: MetricIndex) -> list[Pager]:
    return [c for c in iter_components(index) if isinstance(c, Pager)]


def rebind_counters(index: MetricIndex, counters: CostCounters) -> None:
    """Point every space and page store in the index at one counter object.

    After restore this hands the whole graph a fresh accumulator (so
    serving stats start at zero); the service layer also uses it to share
    one counter across several hosted indexes.

    A :class:`~repro.core.sharded.ShardedIndex` in per-shard-counters mode
    is rebound structurally: the parent gets ``counters`` and each shard
    subtree gets its own fresh private accumulator.  Collapsing them onto
    one object would make every shard call count twice -- once through the
    shared object, once through the merged delta.
    """
    from ..core.sharded import ShardedIndex

    if isinstance(index, ShardedIndex) and index.per_shard_counters:
        index.space.counters = counters
        for shard in index.shards:
            rebind_counters(shard, CostCounters())
        return
    for space in _spaces_of(index):
        space.counters = counters
    for pager in _pagers_of(index):
        pager.store.counters = counters


class _SnapshotPickler(pickle.Pickler):
    """Pickler that lifts large numeric arrays out into file regions.

    ``persistent_id`` intercepts every eligible ndarray (numeric dtype,
    >= ``_MIN_REGION_BYTES``), appends its on-disk form (little-endian,
    C-contiguous) to :attr:`regions`, and emits an ``("ndarray-region",
    i)`` reference into the pickle stream.  Repeated references to one
    array object collapse to one region (pickle checks persistent ids
    before its memo), so shared tables stay shared after restore.

    ``reducer_override`` sends :class:`PageStore` through its packed
    region form -- the flat uint8 page image then gets caught by
    ``persistent_id`` like any other array.
    """

    def __init__(self, file):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.regions: list[np.ndarray] = []
        self._region_by_id: dict[int, int] = {}

    def persistent_id(self, obj):
        if (
            isinstance(obj, np.ndarray)
            and obj.dtype.kind in _REGION_KINDS
            and obj.nbytes >= _MIN_REGION_BYTES
        ):
            idx = self._region_by_id.get(id(obj))
            if idx is None:
                idx = len(self.regions)
                self.regions.append(
                    np.ascontiguousarray(obj, dtype=obj.dtype.newbyteorder("<"))
                )
                self._region_by_id[id(obj)] = idx
            return ("ndarray-region", idx)
        return None

    def reducer_override(self, obj):
        if type(obj) is PageStore:
            directory, empty, packed = obj._snapshot_state()
            return (
                _rebuild_page_store,
                (obj.page_size, obj._next_id, directory, empty, packed),
            )
        return NotImplemented


class _SnapshotUnpickler(pickle.Unpickler):
    """Unpickler resolving region references to copy-on-write memmaps.

    ``mode="c"`` maps the file privately: reads fault pages straight from
    the OS page cache (shared across every process mapping the same
    snapshot), writes copy the touched page in memory -- the restored
    index stays fully mutable and the file is never modified.
    """

    def __init__(self, file, path: Path, table: list[dict], regions_start: int):
        super().__init__(file)
        self._path = path
        self._table = table
        self._regions_start = regions_start
        self._loaded: dict[int, np.ndarray] = {}

    def persistent_load(self, pid):
        try:
            kind, idx = pid
        except (TypeError, ValueError):
            raise SnapshotError(f"{self._path} has an unknown reference {pid!r}")
        if kind != "ndarray-region" or not 0 <= idx < len(self._table):
            raise SnapshotError(
                f"{self._path} references region {pid!r} outside its region table"
            )
        arr = self._loaded.get(idx)
        if arr is None:
            entry = self._table[idx]
            arr = np.memmap(
                self._path,
                dtype=np.dtype(entry["dtype"]),
                mode="c",
                offset=self._regions_start + entry["offset"],
                shape=tuple(entry["shape"]),
            )
            self._loaded[idx] = arr
        return arr


def save_index(
    index: MetricIndex, path, format_version: int = SNAPSHOT_FORMAT_VERSION
) -> SnapshotInfo:
    """Serialise a built index to ``path``; returns the written header.

    Calls the index's :meth:`~repro.core.index.MetricIndex.prepare_snapshot`
    hook, then flushes every reachable pager (belt and braces: an index
    that forgets the hook still snapshots a consistent page store), then
    writes the versioned header, the array regions (format 2), and the
    pickle of the remaining index graph.  ``format_version=1`` writes the
    legacy all-pickle format (kept for compatibility tests and the
    restore-speed benchmark).
    """
    if format_version not in (1, 2):
        raise ValueError(f"unknown snapshot format_version {format_version}")
    index.prepare_snapshot()
    for pager in _pagers_of(index):
        pager.prepare_snapshot()
    regions: list[np.ndarray] = []
    if format_version == 1:
        payload = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
    else:
        buffer = io.BytesIO()
        pickler = _SnapshotPickler(buffer)
        pickler.dump(index)
        payload = buffer.getvalue()
        regions = pickler.regions
    table = []
    offset = 0
    for arr in regions:
        offset = _align_up(offset)
        table.append(
            {
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": int(arr.nbytes),
            }
        )
        offset += arr.nbytes
    regions_span = _align_up(offset)
    space = index.space
    header = {
        "format_version": format_version,
        "index_name": index.name,
        "index_class": f"{type(index).__module__}.{type(index).__qualname__}",
        "n_objects": len(space),
        "distance_name": space.distance.name,
        "dataset_name": space.dataset.name,
        "payload_bytes": len(payload),
        "region_bytes": sum(int(arr.nbytes) for arr in regions),
        "n_regions": len(regions),
    }
    if format_version >= 2:
        header["regions"] = table
        header["regions_span"] = regions_span
    header_blob = json.dumps(header, sort_keys=True).encode("utf-8")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(SNAPSHOT_MAGIC)
        fh.write(len(header_blob).to_bytes(4, "big"))
        fh.write(header_blob)
        if format_version >= 2:
            written = fh.tell()
            fh.write(b"\x00" * (_align_up(written) - written))
            base = fh.tell()
            for arr, entry in zip(regions, table):
                pad = (base + entry["offset"]) - fh.tell()
                if pad:
                    fh.write(b"\x00" * pad)
                fh.write(memoryview(arr).cast("B"))
            pad = (base + regions_span) - fh.tell()
            if pad:
                fh.write(b"\x00" * pad)
        fh.write(payload)
    known = {k: header[k] for k in SnapshotInfo.__dataclass_fields__ if k in header}
    return SnapshotInfo(**known)


def _read_header(fh, path: Path) -> tuple[SnapshotInfo, dict, int]:
    """Parse the prefix; returns (info, raw header, prefix byte length)."""
    magic = fh.read(len(SNAPSHOT_MAGIC))
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotError(f"{path} is not a repro snapshot (bad magic)")
    length_bytes = fh.read(4)
    if len(length_bytes) != 4:
        raise SnapshotError(f"{path} is truncated (no header length)")
    header_len = int.from_bytes(length_bytes, "big")
    header_blob = fh.read(header_len)
    try:
        header = json.loads(header_blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{path} has a corrupt header: {exc}") from None
    version = header.get("format_version")
    if version not in (1, 2):
        raise SnapshotError(
            f"{path} uses snapshot format {version}; this build reads "
            f"formats 1..{SNAPSHOT_FORMAT_VERSION}"
        )
    known = {k: header[k] for k in SnapshotInfo.__dataclass_fields__ if k in header}
    prefix_len = len(SNAPSHOT_MAGIC) + 4 + header_len
    return SnapshotInfo(**known), header, prefix_len


def _validated_regions(header: dict, path: Path, file_size: int, prefix_len: int):
    """Check the v2 region table against the file; returns (table, start, span).

    Every failure mode -- nonsense offsets, dtype/shape/nbytes mismatch,
    regions poking past the file -- raises :class:`SnapshotError` before
    any mmap or unpickle happens.
    """
    table = header.get("regions", [])
    regions_start = _align_up(prefix_len)
    try:
        regions_span = int(header["regions_span"])
    except (KeyError, TypeError, ValueError):
        raise SnapshotError(f"{path} v2 header is missing its region span") from None
    for i, entry in enumerate(table):
        try:
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(s) for s in entry["shape"])
            offset = int(entry["offset"])
            nbytes = int(entry["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"{path} has a corrupt region table entry {i}: {exc}"
            ) from None
        if dtype.kind not in _REGION_KINDS:
            raise SnapshotError(
                f"{path} region {i} has non-numeric dtype {dtype}"
            )
        if any(s < 0 for s in shape) or nbytes != dtype.itemsize * int(
            np.prod(shape, dtype=np.int64)
        ):
            raise SnapshotError(
                f"{path} region {i} is corrupt: {nbytes} bytes does not match "
                f"shape {shape} x {dtype}"
            )
        if offset < 0 or offset + nbytes > regions_span:
            raise SnapshotError(
                f"{path} region {i} lies outside the declared region span"
            )
        if regions_start + offset + nbytes > file_size:
            raise SnapshotError(
                f"{path} is truncated inside memmap region {i} "
                f"(need {regions_start + offset + nbytes} bytes, file has {file_size})"
            )
    return table, regions_start, regions_span


def snapshot_info(path) -> SnapshotInfo:
    """Parse and validate a snapshot's header without loading the payload."""
    path = Path(path)
    with open(path, "rb") as fh:
        info, _, _ = _read_header(fh, path)
    return info


def load_index(path, counters: CostCounters | None = None) -> MetricIndex:
    """Restore an index from a snapshot file.

    The restored index is handed ``counters`` (or a fresh zeroed
    :class:`CostCounters`) across all of its spaces and page stores, so
    serving measurements start clean.  No distance computations happen:
    the tables, trees, and page stores come back exactly as saved -- under
    format 2 the heavy arrays come back as copy-on-write memmaps, so the
    restore cost is the pickle skeleton, not the vector table.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        info, header, prefix_len = _read_header(fh, path)
        if info.format_version >= 2:
            fh.seek(0, 2)
            file_size = fh.tell()
            table, regions_start, regions_span = _validated_regions(
                header, path, file_size, prefix_len
            )
            payload_start = regions_start + regions_span
            if payload_start + info.payload_bytes > file_size:
                raise SnapshotError(f"{path} is truncated (payload short)")
            fh.seek(payload_start)
            payload = fh.read(info.payload_bytes)
            unpickler = _SnapshotUnpickler(
                io.BytesIO(payload), path, table, regions_start
            )
            loader = unpickler.load
        else:
            payload = fh.read(info.payload_bytes)
            if len(payload) != info.payload_bytes:
                raise SnapshotError(f"{path} is truncated (payload short)")
            loader = lambda: pickle.loads(payload)  # noqa: E731
        try:
            index = loader()
        except SnapshotError:
            raise
        except Exception as exc:
            raise SnapshotError(f"{path} payload failed to unpickle: {exc}") from exc
    if not isinstance(index, MetricIndex):
        raise SnapshotError(
            f"{path} payload is a {type(index).__name__}, not a MetricIndex"
        )
    rebind_counters(index, counters if counters is not None else CostCounters())
    return index
