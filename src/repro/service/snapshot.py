"""Index snapshots: serialise a built index, restore it without rebuilding.

The paper's experiments (and any real serving deployment) pay an index's
construction cost -- up to O(n^2) distance computations for AESA, full PSA
scans for EPT* -- once, then answer many queries.  Before this module every
process start repeated that cost.  A snapshot captures a built
:class:`~repro.core.index.MetricIndex` (its tables, tree nodes, page
stores, dataset and distance) so a later process restores it and serves
queries immediately, with **zero** build-time distance computations.

File format (versioned)::

    MAGIC (8 bytes) | header length (4 bytes, big-endian) | header JSON
    | pickle payload

The JSON header carries the format version, the index class, and basic
provenance, so incompatible snapshots fail fast with a clear error instead
of unpickling garbage.  The payload is a pickle of the whole index object
graph; every index upholds the snapshot contract documented on
:meth:`MetricIndex.prepare_snapshot` (picklable state, buffered pages
flushed), and :class:`~repro.core.counters.CostCounters` drops its lock on
pickling.

Round-trip equality contract (asserted by ``tests/test_service.py`` for
every index family): for any queries, the restored index returns answers
identical to the original's, and restoring performs no distance
computations or page writes beyond reading the file.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass
from pathlib import Path

from ..core.counters import CostCounters
from ..core.index import MetricIndex
from ..core.metric_space import MetricSpace
from ..storage.pager import Pager

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "SnapshotInfo",
    "save_index",
    "load_index",
    "snapshot_info",
    "iter_components",
]

SNAPSHOT_MAGIC = b"REPROSNP"
SNAPSHOT_FORMAT_VERSION = 1


class SnapshotError(RuntimeError):
    """Raised for malformed, truncated, or incompatible snapshot files."""


@dataclass(frozen=True)
class SnapshotInfo:
    """The parsed header of a snapshot file."""

    format_version: int
    index_name: str
    index_class: str
    n_objects: int
    distance_name: str
    dataset_name: str
    payload_bytes: int

    def row(self) -> dict:
        return {
            "Index": self.index_name,
            "Class": self.index_class,
            "Objects": self.n_objects,
            "Distance": self.distance_name,
            "Dataset": self.dataset_name,
            "Payload": self.payload_bytes,
            "Format": self.format_version,
        }


def iter_components(index: MetricIndex):
    """Yield every repro component object reachable from an index.

    Walks the attribute graph (dicts, lists, tuples, and ``repro``-defined
    objects) once, cycle-safe.  The snapshot and service layers use it to
    find all :class:`MetricSpace` and :class:`Pager` instances regardless
    of index shape -- tables keep a mapping, CPT nests an M-tree with its
    own pager, ``ShardedIndex`` holds a list of inner indexes.
    """
    seen: set[int] = set()
    stack: list[object] = [index]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, (list, tuple)):
            stack.extend(obj)
            continue
        if isinstance(obj, dict):
            stack.extend(obj.values())
            continue
        module = getattr(type(obj), "__module__", "") or ""
        if not module.startswith("repro"):
            continue
        yield obj
        state = getattr(obj, "__dict__", None)
        if state:
            stack.extend(state.values())


def _spaces_of(index: MetricIndex) -> list[MetricSpace]:
    return [c for c in iter_components(index) if isinstance(c, MetricSpace)]


def _pagers_of(index: MetricIndex) -> list[Pager]:
    return [c for c in iter_components(index) if isinstance(c, Pager)]


def rebind_counters(index: MetricIndex, counters: CostCounters) -> None:
    """Point every space and page store in the index at one counter object.

    After restore this hands the whole graph a fresh accumulator (so
    serving stats start at zero); the service layer also uses it to share
    one counter across several hosted indexes.

    A :class:`~repro.core.sharded.ShardedIndex` in per-shard-counters mode
    is rebound structurally: the parent gets ``counters`` and each shard
    subtree gets its own fresh private accumulator.  Collapsing them onto
    one object would make every shard call count twice -- once through the
    shared object, once through the merged delta.
    """
    from ..core.sharded import ShardedIndex

    if isinstance(index, ShardedIndex) and index.per_shard_counters:
        index.space.counters = counters
        for shard in index.shards:
            rebind_counters(shard, CostCounters())
        return
    for space in _spaces_of(index):
        space.counters = counters
    for pager in _pagers_of(index):
        pager.store.counters = counters


def save_index(index: MetricIndex, path) -> SnapshotInfo:
    """Serialise a built index to ``path``; returns the written header.

    Calls the index's :meth:`~repro.core.index.MetricIndex.prepare_snapshot`
    hook, then flushes every reachable pager (belt and braces: an index
    that forgets the hook still snapshots a consistent page store), then
    pickles the index graph behind a versioned header.
    """
    index.prepare_snapshot()
    for pager in _pagers_of(index):
        pager.prepare_snapshot()
    payload = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
    space = index.space
    header = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "index_name": index.name,
        "index_class": f"{type(index).__module__}.{type(index).__qualname__}",
        "n_objects": len(space),
        "distance_name": space.distance.name,
        "dataset_name": space.dataset.name,
        "payload_bytes": len(payload),
    }
    header_blob = json.dumps(header, sort_keys=True).encode("utf-8")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(SNAPSHOT_MAGIC)
        fh.write(len(header_blob).to_bytes(4, "big"))
        fh.write(header_blob)
        fh.write(payload)
    return SnapshotInfo(**header)


def _read_header(fh, path: Path) -> tuple[SnapshotInfo, dict]:
    magic = fh.read(len(SNAPSHOT_MAGIC))
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotError(f"{path} is not a repro snapshot (bad magic)")
    length_bytes = fh.read(4)
    if len(length_bytes) != 4:
        raise SnapshotError(f"{path} is truncated (no header length)")
    header_blob = fh.read(int.from_bytes(length_bytes, "big"))
    try:
        header = json.loads(header_blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{path} has a corrupt header: {exc}") from None
    version = header.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"{path} uses snapshot format {version}; this build reads "
            f"format {SNAPSHOT_FORMAT_VERSION}"
        )
    known = {k: header[k] for k in SnapshotInfo.__dataclass_fields__ if k in header}
    return SnapshotInfo(**known), header


def snapshot_info(path) -> SnapshotInfo:
    """Parse and validate a snapshot's header without loading the payload."""
    path = Path(path)
    with open(path, "rb") as fh:
        info, _ = _read_header(fh, path)
    return info


def load_index(path, counters: CostCounters | None = None) -> MetricIndex:
    """Restore an index from a snapshot file.

    The restored index is handed ``counters`` (or a fresh zeroed
    :class:`CostCounters`) across all of its spaces and page stores, so
    serving measurements start clean.  No distance computations happen:
    the tables, trees, and page stores come back exactly as saved.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        info, _ = _read_header(fh, path)
        payload = fh.read(info.payload_bytes)
    if len(payload) != info.payload_bytes:
        raise SnapshotError(f"{path} is truncated (payload short)")
    try:
        index = pickle.loads(payload)
    except Exception as exc:
        raise SnapshotError(f"{path} payload failed to unpickle: {exc}") from exc
    if not isinstance(index, MetricIndex):
        raise SnapshotError(
            f"{path} payload is a {type(index).__name__}, not a MetricIndex"
        )
    rebind_counters(index, counters if counters is not None else CostCounters())
    return index
