"""Per-(index, kind) cost models fitted online from counter observations.

The planner needs an answer to one question: *given this query's radius or
k and this batch size, which catalog member is predicted cheapest?*  The
model behind that answer is deliberately small:

* every executed batch yields one **observation** -- the member that ran
  it, the query kind, the radius/k, the batch size, the dataset
  cardinality, and the measured per-query cost (compdists, page reads,
  wall milliseconds) taken from the member's private
  :class:`~repro.core.counters.CostCounters` delta (the same sum-exact
  bracketing the telemetry layer has used since PR 7);
* per ``(index_id, kind)`` the last ``window`` observations are kept and a
  least-squares fit maps the feature row ``[1, param, param^2, batch_size,
  cardinality]`` to the three per-query cost targets.  The quadratic term
  matters: MRQ cost grows superlinearly in the radius for every pivot
  filter (the candidate ball's volume does), and a straight line
  misorders members between calibrated radii;
* fits refresh lazily (every ``refit_every`` records), so the hot path
  pays one deque append and the occasional tiny ``lstsq`` on a <=window x 5
  matrix.

With fewer observations than features the normal equations are
underdetermined; ``lstsq``'s minimum-norm solution is still usable, but to
keep early routing sane the prediction falls back to the plain
per-observation mean until ``MIN_FIT_OBSERVATIONS`` records exist.  All
predictions are clamped at zero -- a negative predicted cost is an
artifact, not a bargain.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["CostModel", "Observation", "MIN_FIT_OBSERVATIONS"]

# below this many observations a least-squares plane is pure extrapolation;
# predict from the running mean instead
MIN_FIT_OBSERVATIONS = 6

_TARGETS = ("compdists", "page_reads", "wall_ms")


@dataclass
class Observation:
    """One executed batch, reduced to per-query features and costs."""

    param: float
    batch_size: int
    cardinality: int
    compdists: float  # per query
    page_reads: float  # per query
    wall_ms: float  # per query

    def features(self) -> list[float]:
        return [
            1.0,
            self.param,
            self.param * self.param,
            float(self.batch_size),
            float(self.cardinality),
        ]

    def targets(self) -> list[float]:
        return [self.compdists, self.page_reads, self.wall_ms]


class CostModel:
    """Windowed least-squares cost models, one per ``(index_id, kind)``.

    Thread-safe: observations arrive from the dispatcher worker and from
    direct batch callers concurrently with the planner's predictions.
    """

    def __init__(self, window: int = 512, refit_every: int = 16):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if refit_every < 1:
            raise ValueError(f"refit_every must be >= 1, got {refit_every}")
        self.window = window
        self.refit_every = refit_every
        self._lock = threading.Lock()
        self._obs: dict[tuple, deque] = {}
        self._coef: dict[tuple, np.ndarray | None] = {}  # 5 x 3, or None
        self._dirty: dict[tuple, int] = {}  # records since last fit

    # -- recording -----------------------------------------------------------

    def record(
        self,
        index_id: str,
        kind: str,
        param: float,
        batch_size: int,
        cardinality: int,
        compdists: float,
        page_reads: float,
        wall_ms: float,
    ) -> None:
        """Log one executed batch (totals; stored as per-query costs)."""
        batch_size = max(1, int(batch_size))
        obs = Observation(
            param=float(param),
            batch_size=batch_size,
            cardinality=int(cardinality),
            compdists=compdists / batch_size,
            page_reads=page_reads / batch_size,
            wall_ms=wall_ms / batch_size,
        )
        key = (index_id, kind)
        with self._lock:
            bucket = self._obs.get(key)
            if bucket is None:
                bucket = self._obs[key] = deque(maxlen=self.window)
            bucket.append(obs)
            self._dirty[key] = self._dirty.get(key, 0) + 1

    def n_observations(self, index_id: str, kind: str) -> int:
        with self._lock:
            bucket = self._obs.get((index_id, kind))
            return len(bucket) if bucket is not None else 0

    # -- fitting -------------------------------------------------------------

    def _fit_locked(self, key: tuple) -> None:
        """Refit one model if its window changed since the last fit."""
        if self._dirty.get(key, 0) == 0 and key in self._coef:
            return
        bucket = self._obs.get(key)
        self._dirty[key] = 0
        if bucket is None or len(bucket) < MIN_FIT_OBSERVATIONS:
            self._coef[key] = None
            return
        rows = list(bucket)
        X = np.array([o.features() for o in rows], dtype=np.float64)
        Y = np.array([o.targets() for o in rows], dtype=np.float64)
        # normalise columns so lstsq conditioning survives cardinality ~1e4
        # next to an intercept of 1; scale back into the coefficients
        scale = np.maximum(np.abs(X).max(axis=0), 1e-12)
        coef, *_ = np.linalg.lstsq(X / scale, Y, rcond=None)
        self._coef[key] = coef / scale[:, None]

    def predict(
        self,
        index_id: str,
        kind: str,
        param: float,
        batch_size: int = 1,
        cardinality: int = 0,
    ) -> dict | None:
        """Predicted per-query cost, or None with no observations yet.

        Returns ``{"compdists", "page_reads", "wall_ms"}``, each clamped
        at zero.  Below :data:`MIN_FIT_OBSERVATIONS` records the
        prediction is the window mean (feature-independent).
        """
        key = (index_id, kind)
        probe = Observation(
            param=float(param),
            batch_size=max(1, int(batch_size)),
            cardinality=int(cardinality),
            compdists=0.0,
            page_reads=0.0,
            wall_ms=0.0,
        )
        with self._lock:
            bucket = self._obs.get(key)
            if not bucket:
                return None
            self._dirty.setdefault(key, len(bucket))
            # refit when enough new records accumulated, when no fit exists
            # yet, or when the last fit fell back to the mean but fresh
            # records may have pushed the window past the fit threshold
            if (
                self._dirty[key] >= self.refit_every
                or key not in self._coef
                or (self._coef[key] is None and self._dirty[key] > 0)
            ):
                self._fit_locked(key)
            coef = self._coef.get(key)
            if coef is None:
                Y = np.array([o.targets() for o in bucket], dtype=np.float64)
                values = Y.mean(axis=0)
            else:
                values = np.asarray(probe.features(), dtype=np.float64) @ coef
        values = np.maximum(values, 0.0)
        return dict(zip(_TARGETS, (float(v) for v in values)))

    def cost(
        self,
        index_id: str,
        kind: str,
        param: float,
        batch_size: int = 1,
        cardinality: int = 0,
    ) -> float | None:
        """Scalar routing cost: predicted per-query wall milliseconds."""
        predicted = self.predict(index_id, kind, param, batch_size, cardinality)
        return None if predicted is None else predicted["wall_ms"]

    # -- introspection -------------------------------------------------------

    def measured_means(self, index_id: str, kind: str) -> dict | None:
        """Window means of the raw measured per-query costs (for explain)."""
        with self._lock:
            bucket = self._obs.get((index_id, kind))
            if not bucket:
                return None
            Y = np.array([o.targets() for o in bucket], dtype=np.float64)
        return dict(zip(_TARGETS, (float(v) for v in Y.mean(axis=0))))
