"""HTTP front-end: the :class:`QueryService` surface as JSON over a socket.

Until this module, "serving" meant in-process concurrent callers -- the
snapshots, the LRU result cache, and the micro-batching dispatcher were all
unreachable from another process.  :class:`HttpQueryServer` closes that gap
with a stdlib-only threaded HTTP server:

* **endpoints** -- ``POST /range``, ``POST /knn``, their batch variants
  ``POST /range_many`` / ``POST /knn_many``, mutations ``POST /insert`` /
  ``POST /delete``, observability ``GET /stats`` / ``GET /healthz``, and
  ``POST /admin/reload`` to hot-swap a newer snapshot;
* **layering preserved** -- each handler thread calls straight into the
  hosted :class:`~repro.service.service.QueryService`, so wire traffic
  flows through the exact cache -> dispatcher -> batch stack in-process
  callers use: concurrent HTTP clients' single queries coalesce into
  vectorised ``*_query_many`` calls, and repeats are absorbed by the LRU;
* **backpressure** -- at most ``max_inflight`` requests run at once;
  excess requests are rejected immediately with ``503`` instead of
  queueing without bound;
* **graceful shutdown** -- :meth:`HttpQueryServer.close` stops admitting
  work (new requests get 503), waits for every in-flight request to
  finish, drains the dispatcher (``service.close()``), and only then
  closes the listening socket.

Wire formats: **JSON** (the default; bodies both ways) and the **binary
fast path** of :mod:`repro.service.wire`, negotiated per request via
``Content-Type`` (request body) and ``Accept`` (response body) naming
``application/x-repro-binary`` -- JSON clients keep working unchanged
against a binary-capable server.  Under JSON, vector queries travel as
JSON arrays and are decoded to the hosted dataset's dtype, string queries
(the Words workload) as JSON strings; kNN answers are
``[distance, object_id]`` pairs.  Python's JSON float encoding is
shortest-repr and round-trips float64 exactly; the binary frames carry
raw little-endian buffers.  Either way HTTP answers are **bit-for-bit**
the answers a direct :class:`QueryService` call returns -- asserted in
``tests/test_http.py`` and by the CI loopback smoke.  Binary request
bodies decode straight to numpy (one ``frombuffer`` view for a whole
query batch, no per-element Python objects), which is what removes the
codec tax on the 282-d Color workload.

An optional **structured access log** (``access_log=<file-like>``, off by
default; ``repro serve --http --access-log PATH``) writes one JSON line
per request: method, path, status, response bytes, wall milliseconds, and
the negotiated codec.

:class:`ServiceClient` is the matching programmatic client (one pooled
stdlib ``http.client`` keep-alive connection per client, transparently
re-established on stale sockets; ``binary=True`` switches it to the
binary protocol); see ``examples/http_quickstart.py`` for the full
lifecycle.
"""

from __future__ import annotations

import hmac
import http.client
import json
import socket
import sys
import threading
import time
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..core.queries import Neighbor
from ..obs import tracing
from ..obs.metrics import BYTE_SIZE_BUCKETS, MetricsRegistry
from . import wire
from .snapshot import SnapshotError
from .service import QueryService
from .wire import BINARY_CONTENT_TYPE, WireError

__all__ = [
    "HttpQueryServer",
    "ServiceClient",
    "ServiceClientError",
    "encode_object",
    "encode_neighbors",
    "decode_neighbors",
    "BINARY_CONTENT_TYPE",
]


# -- wire codec ---------------------------------------------------------------


def encode_object(obj):
    """A JSON-safe representation of a query/dataset object.

    Numpy vectors become JSON arrays (``tolist`` yields Python floats whose
    shortest-repr JSON encoding round-trips float64 exactly); strings and
    other JSON-native objects pass through.
    """
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return obj


def encode_neighbors(neighbors) -> list:
    """kNN answers as ``[distance, object_id]`` pairs."""
    return [[float(n.distance), int(n.object_id)] for n in neighbors]


def decode_neighbors(payload) -> list[Neighbor]:
    """The inverse of :func:`encode_neighbors`."""
    return [Neighbor(float(d), int(i)) for d, i in payload]


class _BadRequest(ValueError):
    """Raised by handlers for malformed bodies; mapped to HTTP 400."""


# -- server -------------------------------------------------------------------


class _ThreadedServer(ThreadingHTTPServer):
    """One handler thread per connection, none of them blocking exit.

    ``daemon_threads`` keeps idle keep-alive connections from pinning the
    process; ``block_on_close`` is off because :meth:`HttpQueryServer.close`
    performs its own (stronger) drain: it waits for in-flight *requests*,
    not for connection threads that may sit idle in a keep-alive read.
    """

    daemon_threads = True
    block_on_close = False
    allow_reuse_address = True
    # the socketserver default backlog of 5 resets bursts of concurrent
    # connects; admission control is the app's job (max_inflight -> 503),
    # so the kernel queue must be deep enough to let every burst reach it
    request_queue_size = 128


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1"
    # keep-alive clients send many small request/response pairs on one
    # socket; without TCP_NODELAY the Nagle + delayed-ACK interaction can
    # stall each exchange by ~40 ms
    disable_nagle_algorithm = True

    @property
    def app(self) -> "_HttpAppBase":
        return self.server.app

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the structured access log replaces stderr noise

    # set per request by _send_json / do_*; consumed by the access log
    # and the request metrics
    _log_status = 0
    _log_bytes = 0
    _log_req_bytes = 0
    _log_codec = "json"

    def _send_json(self, status: int, payload: dict) -> None:
        """Send a response in the request's negotiated codec.

        Despite the name (kept for the JSON-era tests that monkeypatch
        around it), the payload is encoded with the binary wire codec when
        the request's ``Accept`` header asked for it -- error payloads
        included, so a binary client never has to guess a response's
        format from its status code.
        """
        if self.app.draining:
            # graceful drain: answer, then shed the keep-alive connection so
            # pooled clients reconnect (and find the listener gone once the
            # drain completes) instead of talking to a lingering handler
            self.close_connection = True
        if getattr(self, "_binary_accept", False):
            blob = wire.dumps(payload)
            content_type = BINARY_CONTENT_TYPE
        else:
            blob = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self._log_status, self._log_bytes = status, len(blob)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        if self.close_connection:
            # tell keep-alive clients the connection ends with this reply
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(blob)

    def _send_text(self, status: int, text: str) -> None:
        """Send a plain-text response (the Prometheus exposition format)."""
        if self.app.draining:
            self.close_connection = True
        blob = text.encode("utf-8")
        self._log_status, self._log_bytes = status, len(blob)
        self._log_codec = "text"
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(blob)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(blob)

    # early-reply paths (404/503) discard the request body up to this much;
    # a body any bigger is not worth reading just to be polite
    _DRAIN_LIMIT = 1 << 20

    def _drain_body(self) -> None:
        """Consume the unread request body before an early reply.

        Replying with body bytes still queued desynchronises keep-alive
        parsing and -- worse -- makes the kernel RST the connection, which
        can destroy the 503 before the client reads it.  Bodies within the
        limit are drained fully (connection stays reusable); anything
        larger is abandoned and the connection closed after the reply.
        """
        try:
            remaining = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            remaining = 0
        budget = self._DRAIN_LIMIT
        while remaining > 0 and budget > 0:
            chunk = self.rfile.read(min(65536, remaining, budget))
            if not chunk:
                break
            remaining -= len(chunk)
            budget -= len(chunk)
        if remaining > 0:
            self.close_connection = True

    def _read_payload(self) -> dict:
        """The request body as a payload dict, per its ``Content-Type``."""
        length = int(self.headers.get("Content-Length") or 0)
        self._log_req_bytes = max(0, length)
        body = self.rfile.read(length) if length > 0 else b""
        if not body:
            raise _BadRequest("request body must be a payload object")
        if wire.accepts_binary(self.headers.get("Content-Type")):
            try:
                payload = wire.loads(body)
            except WireError as exc:
                raise _BadRequest(f"malformed binary body: {exc}") from None
        else:
            try:
                payload = json.loads(body)
            except json.JSONDecodeError as exc:
                raise _BadRequest(f"malformed JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a payload object")
        return payload

    def _negotiate(self) -> bool:
        """Fix this request's response codec from its ``Accept`` header."""
        self._binary_accept = wire.accepts_binary(self.headers.get("Accept"))
        if self._binary_accept or wire.accepts_binary(
            self.headers.get("Content-Type")
        ):
            self._log_codec = "binary"
        return self._binary_accept

    def do_GET(self) -> None:
        self._logged(self._handle_get)

    def do_POST(self) -> None:
        self._logged(self._handle_post)

    def _logged(self, inner) -> None:
        """Run one request inside its observation envelope.

        The envelope is layered strictly cheapest-first: with no access
        log, no metrics registry, and no slow-query threshold configured
        this is one extra attribute check per request.  When configured it
        (1) records per-endpoint latency/size/outcome metrics, (2) emits
        the structured access-log line, and (3) -- for query endpoints
        under a slow-query threshold -- runs the request inside a root
        trace span and writes the span tree (with attributed batch costs)
        to the slow-query log when the request overruns the threshold.
        """
        app = self.app
        traced = (
            app.slow_query_ms is not None
            and self.command == "POST"
            and self.path in app.post_routes
        )
        plain = app.access_log is None and app.metrics is None and not traced
        if plain:
            inner()
            return
        root = None
        t0 = time.perf_counter()
        try:
            if traced:
                with tracing.start_trace(
                    "request", method=self.command, path=self.path
                ) as root:
                    inner()
            else:
                inner()
        finally:
            wall_ms = (time.perf_counter() - t0) * 1000.0
            app._observe_request(
                path=self.path,
                status=self._log_status,
                wall_ms=wall_ms,
                resp_bytes=self._log_bytes,
                req_bytes=self._log_req_bytes,
                codec=self._log_codec,
            )
            if app.access_log is not None:
                app._log_access(
                    method=self.command,
                    path=self.path,
                    status=self._log_status,
                    nbytes=self._log_bytes,
                    wall_ms=wall_ms,
                    codec=self._log_codec,
                )
            if root is not None and wall_ms >= app.slow_query_ms:
                app._log_slow_query(
                    root,
                    method=self.command,
                    path=self.path,
                    status=self._log_status,
                    codec=self._log_codec,
                )

    def _handle_get(self) -> None:
        self._negotiate()
        # observability endpoints bypass backpressure: health checks and
        # stats scrapes must keep answering while queries saturate the limit
        if self.path == "/healthz":
            self._send_json(200, self.app.health())
        elif self.path == "/stats":
            self._send_json(200, self.app.stats())
        elif self.path == "/metrics":
            if self.app.metrics is None:
                self._send_json(
                    404,
                    {"error": "metrics not enabled (serve with --metrics)"},
                )
            else:
                self._send_text(200, self.app.metrics.render())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _handle_post(self) -> None:
        app = self.app
        binary = self._negotiate()
        route = app.post_routes.get(self.path)
        if route is None:
            self._drain_body()
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        auth_error = app._auth_error(self.path, self.headers.get("Authorization"))
        if auth_error is not None:
            self._drain_body()
            self._send_json(401, {"error": auth_error})
            return
        if not app._begin_request():
            self._drain_body()
            self._send_json(
                503,
                {
                    "error": (
                        "draining: shutting down"
                        if app.draining
                        else f"at capacity ({app.max_inflight} in flight)"
                    )
                },
            )
            return
        try:
            payload = self._read_payload()
            self._send_json(200, route(payload, binary))
        except _BadRequest as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # index/service errors -> 500, not a hang
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        finally:
            app._end_request()


class _HttpAppBase:
    """Lifecycle, admission, and observability shared by HTTP front-ends.

    Both :class:`HttpQueryServer` (one in-process service) and the cluster
    router (:mod:`repro.service.cluster`) expose the same HTTP surface;
    this base owns everything that is not about *answering*: the threaded
    listener, background-thread start/join, the drain-then-close shutdown,
    ``max_inflight`` admission, bearer-token checks on mutation/admin
    paths, per-endpoint request metrics, and the structured access and
    slow-query logs.  Subclasses provide ``post_routes`` (path ->
    handler), ``health()`` / ``stats()``, and the :meth:`_on_drained`
    hook that runs between the request drain and the socket close.
    """

    # paths that require ``Authorization: Bearer <token>`` when an
    # auth_token is configured; query and observability paths stay open
    _PROTECTED_PATHS = frozenset({"/insert", "/delete", "/admin/reload"})
    _handler_class = _Handler
    _thread_name = "repro-http"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        access_log=None,
        metrics: MetricsRegistry | None = None,
        slow_query_ms: float | None = None,
        slow_query_log=None,
        auth_token: str | None = None,
    ):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if slow_query_ms is not None and slow_query_ms < 0:
            raise ValueError(f"slow_query_ms must be >= 0, got {slow_query_ms}")
        self.max_inflight = int(max_inflight)
        self.access_log = access_log
        self.metrics = metrics
        self.auth_token = auth_token
        self.slow_query_ms = slow_query_ms
        self.slow_query_log = (
            slow_query_log
            if slow_query_log is not None
            else (sys.stderr if slow_query_ms is not None else None)
        )
        self._slow_lock = threading.Lock()
        self._access_lock = threading.Lock()
        self._t_start = time.monotonic()
        self._m_requests = self._m_latency = None
        self._m_resp_bytes = self._m_wire_bytes = None
        if metrics is not None:
            self._m_requests = metrics.counter(
                "repro_http_requests_total",
                "HTTP requests by endpoint and status code.",
                labelnames=("endpoint", "status"),
            )
            self._m_latency = metrics.histogram(
                "repro_http_request_ms",
                "End-to-end request wall time by endpoint, milliseconds.",
                labelnames=("endpoint",),
            )
            self._m_resp_bytes = metrics.histogram(
                "repro_http_response_bytes",
                "Response body size by wire codec, bytes.",
                labelnames=("codec",),
                buckets=BYTE_SIZE_BUCKETS,
            )
            self._m_wire_bytes = metrics.counter(
                "repro_http_wire_bytes_total",
                "Body bytes moved by wire codec and direction.",
                labelnames=("codec", "direction"),
            )
            metrics.gauge(
                "repro_http_inflight_requests",
                "Requests currently executing (admitted, not finished).",
            ).set_function(lambda: self._active)
            metrics.gauge(
                "repro_http_uptime_seconds",
                "Seconds since this server object was constructed.",
            ).set_function(lambda: time.monotonic() - self._t_start)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._active = 0
        self._draining = False
        self._closed = False
        self.requests_served = 0
        self.rejected = 0
        self._httpd = _ThreadedServer((host, port), self._handler_class)
        self._httpd.app = self
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def is_serving(self) -> bool:
        """True while the background accept loop is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "_HttpAppBase":
        """Serve from a background thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=self._thread_name,
            daemon=True,
        )
        self._thread.start()
        return self

    def join(self, timeout: float | None = None) -> None:
        """Block on the serving thread (the CLI's foreground wait)."""
        if self._thread is not None:
            self._thread.join(timeout)

    def close(self, drain_timeout: float | None = None) -> bool:
        """Graceful shutdown: requests, then :meth:`_on_drained`, then socket.

        1. stop admitting work -- new requests are rejected with 503;
        2. wait (up to ``drain_timeout``) for in-flight requests to finish;
        3. run the subclass's :meth:`_on_drained` hook (the query server
           drains its dispatcher there, the router its backend pool);
        4. only then stop the accept loop and close the listening socket.

        Idempotent.  With the default ``drain_timeout=None`` the drain
        waits as long as it takes, so requests admitted before the call
        complete with real answers, never connection resets.  Returns True
        for a clean drain; a finite timeout that expires returns False and
        shuts down anyway -- requests still in flight at that point may
        fail (the machinery they depend on is being closed), which is the
        caller's explicit trade when bounding the wait.
        """
        drained = True
        with self._idle:
            already = self._closed
            self._draining = True
            if not already:
                drained = self._idle.wait_for(
                    lambda: self._active == 0, timeout=drain_timeout
                )
                self._closed = True
        if already:
            return drained
        self._on_drained()
        if self._thread is not None:
            # shutdown() handshakes with serve_forever; calling it on a
            # never-started server would wait forever on an event only
            # serve_forever's exit can set
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        return drained

    def _on_drained(self) -> None:
        """Release owned resources; runs after the request drain, once."""

    def __enter__(self) -> "_HttpAppBase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request admission (backpressure + drain accounting) ------------------

    def _begin_request(self) -> bool:
        with self._lock:
            if self._draining or self._active >= self.max_inflight:
                self.rejected += 1
                return False
            self._active += 1
            return True

    def _end_request(self) -> None:
        with self._idle:
            self._active -= 1
            self.requests_served += 1
            if self._active == 0:
                self._idle.notify_all()

    def _auth_error(self, path: str, header: str | None) -> str | None:
        """None when the request may proceed, else the 401 error message.

        Token comparison is constant-time (:func:`hmac.compare_digest`);
        with no ``auth_token`` configured every path stays open.
        """
        if self.auth_token is None or path not in self._PROTECTED_PATHS:
            return None
        if not header or not header.startswith("Bearer "):
            return f"{path} requires 'Authorization: Bearer <token>'"
        if not hmac.compare_digest(header[len("Bearer ") :], self.auth_token):
            return "invalid bearer token"
        return None

    # -- observability ---------------------------------------------------------

    def _observe_request(
        self, path, status, wall_ms, resp_bytes, req_bytes, codec
    ) -> None:
        """Record one finished request into the metrics registry (if any).

        The endpoint label collapses unknown paths to ``other`` so a probe
        scanning random URLs cannot mint unbounded label children.
        """
        if self.metrics is None:
            return
        known = path in self.post_routes or path in ("/stats", "/healthz", "/metrics")
        endpoint = path if known else "other"
        self._m_requests.labels(endpoint, str(status)).inc()
        self._m_latency.labels(endpoint).observe(wall_ms)
        self._m_resp_bytes.labels(codec).observe(resp_bytes)
        self._m_wire_bytes.labels(codec, "out").inc(resp_bytes)
        if req_bytes:
            self._m_wire_bytes.labels(codec, "in").inc(req_bytes)

    def _log_slow_query(self, root, method, path, status, codec) -> None:
        """Write one slow request's JSON line: envelope + full span tree.

        The ``trace`` field is the root span's tree; ``batch_execute``
        spans inside it carry this request's attributed share of the
        batch's measured cost delta (``coalesced`` marks shared batches).
        """
        if self.slow_query_log is None:
            return
        record = {
            "ts": round(time.time(), 6),
            "kind": "slow_query",
            "method": method,
            "path": path,
            "status": status,
            "codec": codec,
            "wall_ms": round(root.wall_ms, 3) if root.wall_ms is not None else None,
            "threshold_ms": self.slow_query_ms,
            "trace": root.to_dict(),
        }
        line = json.dumps(record, sort_keys=True)
        with self._slow_lock:
            try:
                self.slow_query_log.write(line + "\n")
                self.slow_query_log.flush()
            except (OSError, ValueError):
                pass  # a full disk or closed sink must never fail a request

    def _log_access(self, **fields) -> None:
        """Append one JSON access-log line (called per request when enabled)."""
        fields["ts"] = round(time.time(), 6)
        fields["wall_ms"] = round(fields["wall_ms"], 3)
        line = json.dumps(fields, sort_keys=True)
        with self._access_lock:
            try:
                self.access_log.write(line + "\n")
                self.access_log.flush()
            except (OSError, ValueError):
                pass  # a full disk or closed sink must never fail a request


class HttpQueryServer(_HttpAppBase):
    """Expose one :class:`QueryService` as a threaded JSON HTTP server.

    Args:
        service: the (already built or restored) service to serve.
        host / port: bind address; port 0 picks a free ephemeral port
            (read it back from :attr:`port`).
        max_inflight: bound on concurrently executing requests -- the
            backpressure limit.  Requests beyond it receive ``503``
            immediately; clients are expected to retry.
        access_log: optional file-like object; when given, every request
            appends one JSON line (method, path, status, bytes, wall ms,
            codec).  Off by default -- serving must not pay logging IO
            unless asked to.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, ``GET /metrics`` serves its Prometheus text
            exposition, per-endpoint request latency/outcome/size metrics
            are recorded, and the percentile summaries appear under
            ``/stats``'s ``telemetry`` key (share the registry with the
            hosted service to get its cache/dispatcher/batch metrics in
            the same exposition).
        slow_query_ms: optional threshold in milliseconds; when set, every
            query request runs inside a trace span tree and any request
            slower than the threshold writes one JSON line -- including
            the span tree with per-request attributed batch costs -- to
            ``slow_query_log``.  0 traces (and logs) every query request.
        slow_query_log: file-like sink for slow-query lines; defaults to
            ``sys.stderr``.
        auth_token: optional bearer token; when set, ``/insert``,
            ``/delete``, and ``/admin/reload`` require
            ``Authorization: Bearer <token>`` and answer 401 without it.
            Query and observability endpoints stay open.

    Use :meth:`start` to serve from a background thread and :meth:`close`
    (or the context manager form) to shut down gracefully: draining
    requests, then the dispatcher, then the socket -- in that order.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        access_log=None,
        metrics: MetricsRegistry | None = None,
        slow_query_ms: float | None = None,
        slow_query_log=None,
        auth_token: str | None = None,
    ):
        self.service = service
        super().__init__(
            host=host,
            port=port,
            max_inflight=max_inflight,
            access_log=access_log,
            metrics=metrics,
            slow_query_ms=slow_query_ms,
            slow_query_log=slow_query_log,
            auth_token=auth_token,
        )
        self._admin_lock = threading.Lock()  # one reload at a time
        self.post_routes = {
            "/range": self._handle_range,
            "/knn": self._handle_knn,
            "/range_many": self._handle_range_many,
            "/knn_many": self._handle_knn_many,
            "/insert": self._handle_insert,
            "/delete": self._handle_delete,
            "/plan": self._handle_plan,
            "/admin/reload": self._handle_reload,
        }

    def _on_drained(self) -> None:
        # service.close() drains and joins the dispatcher worker, so every
        # coalesced batch an HTTP thread is waiting on resolves before the
        # listening socket goes away
        self.service.close()

    # -- observability ---------------------------------------------------------

    def health(self) -> dict:
        out = {
            "status": "draining" if self._draining else "ok",
            "index": self.service.index_id,
            "objects": len(self.service.index.space),
            "uptime_s": round(time.monotonic() - self._t_start, 3),
            "snapshot": self.service.snapshot_path,
            "reload_generation": self.service.reload_generation,
        }
        if getattr(self.service, "catalog", None) is not None:
            out["members"] = self.service.catalog.ids()
        return out

    def stats(self) -> dict:
        out = self.service.stats()
        with self._lock:
            out["http"] = {
                "active": self._active,
                "max_inflight": self.max_inflight,
                "served": self.requests_served,
                "rejected": self.rejected,
                "draining": self._draining,
            }
        return out

    # -- payload decoding ------------------------------------------------------

    def _decode_object(self, value, field: str = "query"):
        """A wire value as a query/dataset object of the hosted dataset.

        Vector datasets decode JSON arrays -- or binary-frame numpy views
        -- to their numpy dtype (shape checked against the dataset's
        dimensionality); everything else (strings for Words) passes
        through as-is.
        """
        if value is None:
            raise _BadRequest(f"missing {field!r}")
        dataset = self.service.index.space.dataset
        if dataset.is_vector:
            try:
                arr = np.asarray(value, dtype=dataset.objects.dtype)
            except (TypeError, ValueError):
                raise _BadRequest(
                    f"{field!r} must be a numeric array for this index"
                ) from None
            if arr.shape != dataset.objects.shape[1:]:
                raise _BadRequest(
                    f"{field!r} has shape {arr.shape}, index expects "
                    f"{dataset.objects.shape[1:]}"
                )
            return arr
        if isinstance(value, np.ndarray):
            raise _BadRequest(f"{field!r} must not be an array for this index")
        return value

    def _decode_many(self, payload) -> list:
        queries = payload.get("queries")
        if isinstance(queries, np.ndarray):
            # binary fast path: one 2-d (batch x dim) buffer for the whole
            # batch -- validate once, hand the index row views, never touch
            # a per-element Python object
            dataset = self.service.index.space.dataset
            if not dataset.is_vector:
                raise _BadRequest("'queries' must not be an array for this index")
            if queries.ndim != 2 or queries.shape[1:] != dataset.objects.shape[1:]:
                raise _BadRequest(
                    f"'queries' has shape {queries.shape}, index expects "
                    f"(batch, {', '.join(map(str, dataset.objects.shape[1:]))})"
                )
            if queries.shape[0] == 0:
                raise _BadRequest("'queries' must be a non-empty batch")
            return list(np.asarray(queries, dtype=dataset.objects.dtype))
        if not isinstance(queries, list) or not queries:
            raise _BadRequest("'queries' must be a non-empty JSON array")
        return [self._decode_object(q, "queries[]") for q in queries]

    @staticmethod
    def _number(payload, field: str) -> float:
        value = payload.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise _BadRequest(f"{field!r} must be a number")
        return float(value)

    def _k(self, payload) -> int:
        k = self._number(payload, "k")
        if k < 1 or k != int(k):
            raise _BadRequest("'k' must be a positive integer")
        return int(k)

    def _pin(self, payload: dict) -> str | None:
        """The optional ``"index"`` field: pin one catalog member by id."""
        pin = payload.get("index")
        if pin is None:
            return None
        if not isinstance(pin, str) or not pin:
            raise _BadRequest("'index' must be a member id string")
        catalog = getattr(self.service, "catalog", None)
        if catalog is None:
            raise _BadRequest(
                "'index' pinning requires a catalog service; this server "
                f"hosts only {self.service.index_id!r}"
            )
        if pin not in catalog:
            raise _BadRequest(
                f"unknown index {pin!r}; members: {', '.join(catalog.ids())}"
            )
        return pin

    # -- query endpoints -------------------------------------------------------

    def _handle_range(self, payload: dict, binary: bool = False) -> dict:
        query = self._decode_object(payload.get("query"))
        radius = self._number(payload, "radius")
        ids = self.service.range_query(query, radius, index=self._pin(payload))
        if binary:
            return {"ids": wire.pack_id_list(ids)}
        return {"ids": [int(i) for i in ids]}

    def _handle_knn(self, payload: dict, binary: bool = False) -> dict:
        query = self._decode_object(payload.get("query"))
        k = self._k(payload)
        neighbors = self.service.knn_query(query, k, index=self._pin(payload))
        if binary:
            return {"neighbors": wire.pack_neighbors(neighbors)}
        return {"neighbors": encode_neighbors(neighbors)}

    def _handle_range_many(self, payload: dict, binary: bool = False) -> dict:
        queries = self._decode_many(payload)
        radius = self._number(payload, "radius")
        answers = self.service.range_query_many(
            queries, radius, index=self._pin(payload)
        )
        if binary:
            return {"results": wire.pack_id_lists(answers)}
        return {"results": [[int(i) for i in ids] for ids in answers]}

    def _handle_knn_many(self, payload: dict, binary: bool = False) -> dict:
        queries = self._decode_many(payload)
        k = self._k(payload)
        answers = self.service.knn_query_many(queries, k, index=self._pin(payload))
        if binary:
            return {"results": wire.pack_neighbor_lists(answers)}
        return {"results": [encode_neighbors(a) for a in answers]}

    def _handle_plan(self, payload: dict, binary: bool = False) -> dict:
        """The planner's explain table for one query shape (catalog only)."""
        planner = getattr(self.service, "planner", None)
        if planner is None:
            raise _BadRequest(
                "this server hosts a single index; /plan requires a "
                "catalog service (repro serve --snapshot A --snapshot B)"
            )
        if "radius" in payload:
            kind, param = "range", self._number(payload, "radius")
        elif "k" in payload:
            kind, param = "knn", float(self._k(payload))
        else:
            raise _BadRequest("pass 'radius' (MRQ) or 'k' (MkNNQ) to plan")
        batch_size = 1
        if "batch_size" in payload:
            batch_size = self._number(payload, "batch_size")
            if batch_size < 1 or batch_size != int(batch_size):
                raise _BadRequest("'batch_size' must be a positive integer")
            batch_size = int(batch_size)
        return {"plan": planner.explain(kind, param, batch_size)}

    # -- mutation + admin endpoints --------------------------------------------

    @staticmethod
    def _object_id(payload, required: bool) -> int | None:
        object_id = payload.get("object_id")
        if object_id is None and not required:
            return None
        # bool subclasses int: JSON true must not silently target id 1
        if not isinstance(object_id, int) or isinstance(object_id, bool):
            raise _BadRequest("'object_id' must be an integer")
        return object_id

    def _handle_insert(self, payload: dict, binary: bool = False) -> dict:
        obj = self._decode_object(payload.get("object"), "object")
        object_id = self._object_id(payload, required=False)
        return {"object_id": int(self.service.insert(obj, object_id=object_id))}

    def _handle_delete(self, payload: dict, binary: bool = False) -> dict:
        object_id = self._object_id(payload, required=True)
        self.service.delete(object_id)
        return {"deleted": object_id}

    def _handle_reload(self, payload: dict, binary: bool = False) -> dict:
        path = payload.get("snapshot")
        if not isinstance(path, str) or not path:
            raise _BadRequest("'snapshot' must be a path string")
        with self._admin_lock:
            try:
                info = self.service.reload_from_snapshot(path)
            except (OSError, SnapshotError) as exc:
                raise _BadRequest(f"cannot reload {path!r}: {exc}") from None
        return {
            "reloaded": path,
            "index": info.index_name,
            "objects": info.n_objects,
            "distance": info.distance_name,
            "dataset": info.dataset_name,
        }


# -- client -------------------------------------------------------------------


class ServiceClientError(RuntimeError):
    """A non-200 response from the server; carries the HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Programmatic client for :class:`HttpQueryServer` (stdlib only).

    Connections are **pooled keep-alive**: the server speaks HTTP/1.1, so
    sequential calls from a thread reuse one TCP connection instead of
    paying a handshake per request (``connections_opened`` counts how many
    sockets were actually created).  The pool is per *thread* -- a client
    shared across threads gives each thread its own pooled connection, so
    concurrent callers still fan out in parallel (and still coalesce in
    the server's dispatcher).  A request that hits a stale pooled socket
    -- the server dropped an idle keep-alive connection, or the process
    was restarted -- is transparently retried once on a fresh connection;
    errors on a brand-new connection propagate, and mutations
    (:meth:`insert` / :meth:`delete`) are never resent -- a retry could
    double-apply one whose connection died after the server processed it.
    Use as a context manager (or call :meth:`close`) to release the
    pooled sockets.

    Query objects are encoded with :func:`encode_object` (numpy vectors
    accepted directly); kNN answers come back as
    :class:`~repro.core.queries.Neighbor` lists, bit-for-bit equal to a
    direct :class:`QueryService` call's.

    ``binary=True`` switches the wire format to
    :mod:`repro.service.wire`'s framed binary codec: request bodies carry
    raw numpy buffers (a whole ``*_query_many`` vector batch travels as
    one 2-D matrix), ``Accept`` asks the server for binary responses, and
    answers decode from flat columnar arrays.  Same endpoints, same
    answers bit-for-bit -- only the codec tax changes.
    """

    # a stale pooled socket surfaces as one of these on the next request;
    # they are safe to retry once on a fresh connection because the request
    # never reached (or never completed at) the application layer
    _RETRYABLE = (
        http.client.RemoteDisconnected,
        http.client.CannotSendRequest,
        http.client.BadStatusLine,
        ConnectionResetError,
        BrokenPipeError,
    )

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        binary: bool = False,
        auth_token: str | None = None,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.binary = bool(binary)
        self.auth_token = auth_token
        self.connections_opened = 0
        # stale-socket retries actually performed (each one re-sent a
        # request on a fresh connection) -- the observable trace of
        # server restarts and dropped keep-alive sockets
        self.retries = 0
        self._local = threading.local()
        self._lock = threading.Lock()  # guards the counter and registry
        # (owning thread, connection) pairs: the registry lets close()
        # release every thread's pooled socket, and lets _connect prune
        # sockets whose owning thread exited (nothing would reuse them,
        # and each pins a server handler thread in a keep-alive read)
        self._conns: list[tuple[threading.Thread, HTTPConnection]] = []

    # -- connection pool -------------------------------------------------------

    def _pooled(self) -> HTTPConnection | None:
        """This thread's live pooled connection, if any."""
        conn = getattr(self._local, "conn", None)
        if conn is not None and conn.sock is None:
            # closed underneath (close() was called, or the exchange that
            # carried a Connection: close reply already dropped the socket)
            self._discard(conn)
            conn = None
        return conn

    def _connect(self) -> HTTPConnection:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        conn.connect()
        # pooled sockets carry many small exchanges: disable Nagle so a
        # request is not held back waiting for the previous delayed ACK
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._lock:
            self.connections_opened += 1
            kept = []
            for thread, pooled in self._conns:
                if thread.is_alive():
                    kept.append((thread, pooled))
                else:
                    pooled.close()
            kept.append((threading.current_thread(), conn))
            self._conns = kept
        self._local.conn = conn
        return conn

    def _discard(self, conn: HTTPConnection) -> None:
        conn.close()
        if getattr(self._local, "conn", None) is conn:
            self._local.conn = None
        with self._lock:
            self._conns = [(t, c) for t, c in self._conns if c is not conn]

    def close(self) -> None:
        """Close every pooled connection (the client stays usable)."""
        with self._lock:
            conns, self._conns = self._conns, []
        for _thread, conn in conns:
            conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request machinery -----------------------------------------------------

    def _exchange(self, conn: HTTPConnection, method, path, body, headers):
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        blob = response.read()  # drain fully so the connection stays reusable
        content_type = response.getheader("Content-Type")
        if response.will_close:
            self._discard(conn)
        return response.status, blob, content_type

    def _roundtrip(
        self,
        method: str,
        path: str,
        body,
        headers: dict,
        idempotent: bool = True,
    ) -> tuple[int, bytes, str | None]:
        """One exchange with the stale-socket retry: (status, body, type)."""
        conn = self._pooled()
        reused = conn is not None
        if conn is None:
            conn = self._connect()
        try:
            return self._exchange(conn, method, path, body, headers)
        except self._RETRYABLE:
            self._discard(conn)
            # only idempotent requests may be resent: a mutation whose
            # connection died *after* the server processed it (response
            # phase) would double-apply on retry
            if not reused or not idempotent:
                raise
            with self._lock:
                self.retries += 1
            conn = self._connect()
            try:
                return self._exchange(conn, method, path, body, headers)
            except Exception:
                self._discard(conn)
                raise
        except Exception:
            # unknown failure mid-exchange: the connection state is
            # indeterminate, so do not reuse it
            self._discard(conn)
            raise

    def forward(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict | None = None,
        idempotent: bool = True,
    ) -> tuple[int, bytes, str | None]:
        """Exchange a raw request verbatim: ``(status, body, content_type)``.

        The codec-blind escape hatch the cluster router is built on: the
        caller supplies the exact body bytes and headers (any codec, any
        ``Accept``), the response comes back undecoded, and non-200
        statuses are returned -- not raised -- so the router can relay a
        backend's error payload to its own client untouched.  The pooled
        connection, stale-socket retry, and ``retries`` accounting are
        shared with the typed methods.
        """
        hdrs = dict(headers or {})
        if self.auth_token is not None:
            hdrs.setdefault("Authorization", f"Bearer {self.auth_token}")
        return self._roundtrip(method, path, body, hdrs, idempotent=idempotent)

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        idempotent: bool = True,
        raw: bool = False,
    ):
        body = None
        headers = {}
        if self.binary:
            headers["Accept"] = BINARY_CONTENT_TYPE
        if self.auth_token is not None:
            headers["Authorization"] = f"Bearer {self.auth_token}"
        if payload is not None:
            if self.binary:
                body = wire.dumps(payload)
                headers["Content-Type"] = BINARY_CONTENT_TYPE
            else:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
        status, blob, content_type = self._roundtrip(
            method, path, body, headers, idempotent=idempotent
        )
        if raw and status == 200:
            # text endpoints (/metrics): hand back the body verbatim
            return blob.decode("utf-8")
        # decode by the *response's* Content-Type, not by what was asked
        # for: error paths and non-binary servers may answer JSON to a
        # binary-accepting client
        if wire.accepts_binary(content_type):
            try:
                out = wire.loads(blob)
            except WireError as exc:
                out = {"error": f"undecodable binary response: {exc}"}
        else:
            try:
                out = json.loads(blob) if blob else {}
            except json.JSONDecodeError:
                out = {"error": blob.decode("utf-8", "replace")}
        if status != 200:
            raise ServiceClientError(status, out.get("error", "unexpected response"))
        return out

    # -- queries ---------------------------------------------------------------

    def _encode_query(self, obj):
        """One query in this client's wire form (ndarray under binary)."""
        if self.binary and isinstance(obj, np.ndarray):
            return obj
        return encode_object(obj)

    def _encode_batch(self, queries):
        """A query batch: one 2-D matrix under binary when vectors stack."""
        queries = list(queries)
        if self.binary:
            try:
                qmat = np.asarray(queries)
            except (ValueError, TypeError):
                qmat = None
            if qmat is not None and qmat.ndim == 2 and qmat.dtype.kind in "biufc":
                return qmat
        return [encode_object(q) for q in queries]

    def range_query(self, query_obj, radius: float, index: str | None = None) -> list[int]:
        payload = {"query": self._encode_query(query_obj), "radius": float(radius)}
        if index is not None:
            payload["index"] = index
        ids = self._request("POST", "/range", payload)["ids"]
        return wire.unpack_id_list(ids)

    def knn_query(self, query_obj, k: int, index: str | None = None) -> list[Neighbor]:
        payload = {"query": self._encode_query(query_obj), "k": int(k)}
        if index is not None:
            payload["index"] = index
        neighbors = self._request("POST", "/knn", payload)["neighbors"]
        return wire.unpack_neighbors(neighbors)

    def range_query_many(
        self, queries, radius: float, index: str | None = None
    ) -> list[list[int]]:
        payload = {"queries": self._encode_batch(queries), "radius": float(radius)}
        if index is not None:
            payload["index"] = index
        results = self._request("POST", "/range_many", payload)["results"]
        return wire.unpack_id_lists(results)

    def knn_query_many(
        self, queries, k: int, index: str | None = None
    ) -> list[list[Neighbor]]:
        payload = {"queries": self._encode_batch(queries), "k": int(k)}
        if index is not None:
            payload["index"] = index
        results = self._request("POST", "/knn_many", payload)["results"]
        return wire.unpack_neighbor_lists(results)

    def plan(
        self,
        radius: float | None = None,
        k: int | None = None,
        batch_size: int = 1,
    ) -> list[dict]:
        """The server planner's explain rows (catalog services only)."""
        if (radius is None) == (k is None):
            raise ValueError("pass exactly one of radius= or k=")
        payload: dict = {"batch_size": int(batch_size)}
        if radius is not None:
            payload["radius"] = float(radius)
        else:
            payload["k"] = int(k)
        return self._request("POST", "/plan", payload)["plan"]

    # -- mutations + admin -----------------------------------------------------

    def insert(self, obj, object_id: int | None = None) -> int:
        payload = {"object": self._encode_query(obj)}
        if object_id is not None:
            payload["object_id"] = int(object_id)
        return int(
            self._request("POST", "/insert", payload, idempotent=False)["object_id"]
        )

    def delete(self, object_id: int) -> None:
        self._request("POST", "/delete", {"object_id": int(object_id)}, idempotent=False)

    def reload(self, snapshot_path) -> dict:
        return self._request("POST", "/admin/reload", {"snapshot": str(snapshot_path)})

    # -- observability ---------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def metrics_text(self) -> str:
        """The server's ``GET /metrics`` Prometheus exposition, verbatim."""
        return self._request("GET", "/metrics", raw=True)

    def client_stats(self) -> dict:
        """This client's own counters (no server round-trip)."""
        with self._lock:
            return {
                "connections_opened": self.connections_opened,
                "retries": self.retries,
                "pooled": len(self._conns),
            }
