"""SPB-tree: the Space-filling-curve and Pivot-based B+-tree (Chen et al.,
ICDE 2015 -- the paper's own prior work, Section 5.4).

Pipeline: pivot mapping -> discretisation -> Hilbert key -> B+-tree.

* Each object's mapped vector I(o) is discretised onto a 2^bits grid; the
  grid cell is encoded as one integer by a Hilbert curve, which (to a large
  extent) preserves pivot-space proximity -- so B+-tree order clusters
  similar objects, and the RAF (written in key order) keeps them on nearby
  pages.  This is where the SPB-tree's storage/I/O wins come from.
* Leaf B+-tree entries hold (key, (object_id, RAF pointer)).  The key alone
  reproduces the *approximate* pre-computed distances: cell c covers
  [c*eps, (c+1)*eps) per pivot.  Lemma 1 and Lemma 4 therefore work without
  touching the RAF; only survivors that cannot be validated cost a page
  read plus a distance computation.  The approximation also weakens pruning
  slightly -- the paper's stated SPB-tree trade-off for continuous metrics.
* Non-leaf entries carry the MBB of their subtree in grid space via B+-tree
  augmentation (the paper stores the box as two SFC-encoded corners; we
  store the corner coordinate tuples, which is the same information).
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from ..btree.bptree import Augmentation, BPlusTree
from ..core.index import MetricIndex
from ..core.mapping import PivotMapping
from ..core.metric_space import MetricSpace
from ..core.pivot_filter import (
    mbb_max_dist_many_queries,
    mbb_min_dist_many_queries,
)
from ..core.queries import KnnHeap, Neighbor
from ..sfc.hilbert import HilbertCurve
from ..storage.pager import Pager
from ..storage.raf import RandomAccessFile, RecordPointer
from .batch import drain_record_chunks

__all__ = ["SPBTree"]


class SPBTree(MetricIndex):
    """See module docstring."""

    name = "SPB-tree"
    is_disk_based = True

    def __init__(
        self,
        space: MetricSpace,
        mapping: PivotMapping,
        pager: Pager,
        bits: int,
        curve_cls=HilbertCurve,
    ):
        super().__init__(space)
        self.mapping = mapping
        self.pager = pager
        self.bits = bits
        self.curve = curve_cls(bits=bits, dims=mapping.n_pivots)
        # grid resolution: the paper approximates continuous distances by
        # discrete cells of width eps
        max_d = max(mapping.matrix.max(), 1e-9) if mapping.matrix.size else 1.0
        self.eps = float(max_d) / self.curve.max_coordinate * (1 + 1e-9)
        self.btree = BPlusTree(
            pager,
            augmentation=Augmentation(
                from_entry=self._entry_summary, merge=self._merge_summaries
            ),
        )
        self.raf = RandomAccessFile(pager)
        self._pointers: dict[int, RecordPointer] = {}

    # -- augmentation: grid-space MBBs ------------------------------------------

    def _entry_summary(self, key, value):
        coords = self.curve.decode(key)
        return (coords, coords)

    @staticmethod
    def _merge_summaries(summaries):
        lows = tuple(min(s[0][i] for s in summaries) for i in range(len(summaries[0][0])))
        highs = tuple(max(s[1][i] for s in summaries) for i in range(len(summaries[0][1])))
        return (lows, highs)

    # -- discretisation ------------------------------------------------------------

    def _grid_cell(self, vec: np.ndarray) -> np.ndarray:
        cell = np.floor(np.asarray(vec, dtype=np.float64) / self.eps).astype(np.int64)
        return np.clip(cell, 0, self.curve.max_coordinate)

    def _cell_bounds(self, coords) -> tuple[np.ndarray, np.ndarray]:
        """Continuous [low, high] distance bounds covered by a grid cell."""
        cell = np.asarray(coords, dtype=np.float64)
        return cell * self.eps, (cell + 1.0) * self.eps

    def _cell_lower_bound(self, qdists: np.ndarray, coords) -> float:
        lows, highs = self._cell_bounds(coords)
        gaps = np.maximum(np.maximum(lows - qdists, qdists - highs), 0.0)
        return float(gaps.max())

    def _cell_upper_bound(self, qdists: np.ndarray, coords) -> float:
        coords = np.asarray(coords)
        if coords.max() >= self.curve.max_coordinate:
            # a clipped cell no longer upper-bounds the true distance
            # (inserted objects may exceed the build-time grid), so Lemma 4
            # must not fire on it
            return float("inf")
        _, highs = self._cell_bounds(coords)
        return float((qdists + highs).min())

    # -- construction -----------------------------------------------------------------

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        pivot_ids,
        pager: Pager | None = None,
        page_size: int = 4096,
        bits: int = 8,
        curve_cls=HilbertCurve,
    ) -> "SPBTree":
        """Map, discretise, Hilbert-encode, and bulk-load in key order."""
        mapping = PivotMapping(space, pivot_ids)
        if pager is None:
            pager = Pager(page_size=page_size, counters=space.counters)
        index = cls(space, mapping, pager, bits, curve_cls)
        n = mapping.n_objects
        keyed = []
        for object_id in range(n):
            cell = index._grid_cell(mapping.vector(object_id))
            keyed.append((index.curve.encode(cell), object_id))
        keyed.sort()
        items = []
        for key, object_id in keyed:
            # RAF in SFC order: neighbouring keys share pages (the paper's
            # "maintains spatial proximity")
            pointer = index.raf.append((object_id, space.dataset[object_id]))
            index._pointers[object_id] = pointer
            items.append((key, (object_id, pointer)))
        index.btree.bulk_load(items)
        return index

    # -- queries --------------------------------------------------------------------------

    def range_query(self, query_obj, radius: float) -> list[int]:
        """MRQ: depth-first over the B+-tree with MBB pruning + validation."""
        qdists = self.mapping.map_query(query_obj)
        results: list[int] = []
        stack = [self.btree.root_page]
        while stack:
            node = self.btree.read_node(stack.pop())
            if node.is_leaf:
                for key, (object_id, pointer) in zip(node.keys, node.values):
                    if object_id not in self._pointers:
                        continue
                    coords = self.curve.decode(key)
                    if self._cell_lower_bound(qdists, coords) > radius:
                        continue  # Lemma 1 on the approximated distances
                    if self._cell_upper_bound(qdists, coords) <= radius:
                        results.append(object_id)  # Lemma 4: no I/O, no comp
                        continue
                    _, obj = self.raf.read(pointer)
                    if self.space.d(query_obj, obj) <= radius:
                        results.append(object_id)
            else:
                for child, aux in zip(node.children, node.aux):
                    if aux is not None:
                        lows, highs = aux
                        clows, _ = self._cell_bounds(lows)
                        _, chighs = self._cell_bounds(highs)
                        gaps = np.maximum(
                            np.maximum(clows - qdists, qdists - chighs), 0.0
                        )
                        if float(gaps.max()) > radius:
                            continue
                    stack.append(child)
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        """MkNNQ: best-first over nodes/entries by grid lower bound."""
        live = len(self._pointers)
        if live == 0:
            return []
        qdists = self.mapping.map_query(query_obj)
        heap = KnnHeap(min(k, live))
        counter = itertools.count()
        pq: list[tuple[float, int, bool, object]] = [
            (0.0, next(counter), False, self.btree.root_page)
        ]
        while pq:
            bound, _, is_entry, payload = heapq.heappop(pq)
            if bound > heap.radius:
                break
            if is_entry:
                object_id, pointer = payload
                _, obj = self.raf.read(pointer)
                heap.consider(object_id, self.space.d(query_obj, obj))
                continue
            node = self.btree.read_node(payload)
            if node.is_leaf:
                for key, (object_id, pointer) in zip(node.keys, node.values):
                    if object_id not in self._pointers:
                        continue
                    coords = self.curve.decode(key)
                    entry_bound = self._cell_lower_bound(qdists, coords)
                    if entry_bound <= heap.radius:
                        heapq.heappush(
                            pq,
                            (entry_bound, next(counter), True, (object_id, pointer)),
                        )
            else:
                for child, aux in zip(node.children, node.aux):
                    child_bound = 0.0
                    if aux is not None:
                        lows, highs = aux
                        clows, _ = self._cell_bounds(lows)
                        _, chighs = self._cell_bounds(highs)
                        gaps = np.maximum(
                            np.maximum(clows - qdists, qdists - chighs), 0.0
                        )
                        child_bound = float(gaps.max())
                    if child_bound <= heap.radius:
                        heapq.heappush(pq, (child_bound, next(counter), False, child))
        return heap.neighbors()

    # -- batch queries ---------------------------------------------------------------------

    def _leaf_cell_bounds_many(
        self, qmat: np.ndarray, coords: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-(query, entry) grid lower/upper bounds, decoded once per leaf.

        ``coords`` is the ``m x l`` matrix of grid cells of one leaf's keys
        (decoded once for the whole batch).  Mirrors
        :meth:`_cell_lower_bound` / :meth:`_cell_upper_bound` exactly,
        including the clipped-cell rule that disables Lemma 4 on cells at
        the grid edge.
        """
        lows = coords * self.eps
        highs = (coords + 1.0) * self.eps
        lower = mbb_min_dist_many_queries(qmat, lows, highs)
        upper = mbb_max_dist_many_queries(qmat, lows, highs)
        clipped = coords.max(axis=1) >= self.curve.max_coordinate
        if clipped.any():
            upper[:, clipped] = np.inf
        return lower, upper

    def _node_child_subsets(
        self, node, qmat: np.ndarray, active: np.ndarray, radii: np.ndarray
    ):
        """(child page, surviving query subset, bounds) for an internal node."""
        out = []
        for child, aux in zip(node.children, node.aux):
            if aux is None:
                out.append((child, active, np.zeros(active.size)))
                continue
            clows, _ = self._cell_bounds(aux[0])
            _, chighs = self._cell_bounds(aux[1])
            gaps = mbb_min_dist_many_queries(qmat[active], clows, chighs)[:, 0]
            keep = gaps <= radii
            if keep.any():
                out.append((child, active[keep], gaps[keep]))
        return out

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        """Batch MRQ: one B+-tree descent, grouped RAF verification.

        The whole batch descends the tree once with active query subsets
        (each touched node page read once per batch, versus once per
        visiting query sequentially); leaf keys are SFC-decoded once per
        batch, Lemma 1 / Lemma 4 run as (queries x entries) masks on the
        grid bounds, and the un-validated survivors are fetched from the
        RAF page-grouped before one vectorised verification per query.
        """
        queries = list(queries)
        if not queries:
            return []
        qmat = self.mapping.map_query_many(queries)
        results: list[list[int]] = [[] for _ in queries]
        candidates: list[list[int]] = [[] for _ in queries]
        pointer_of: dict[int, RecordPointer] = {}
        radii_template = np.full(len(queries), float(radius))
        stack = [(self.btree.root_page, np.arange(len(queries), dtype=np.intp))]
        while stack:
            page_id, active = stack.pop()
            node = self.btree.read_node(page_id)
            if node.is_leaf:
                live = [
                    (j, object_id, pointer)
                    for j, (object_id, pointer) in enumerate(node.values)
                    if object_id in self._pointers
                ]
                if not live:
                    continue
                coords = np.asarray(
                    [self.curve.decode(node.keys[j]) for j, _, _ in live]
                )
                lower, upper = self._leaf_cell_bounds_many(qmat[active], coords)
                for ai, qi in enumerate(active):
                    for pos in np.flatnonzero(lower[ai] <= radius):
                        _, object_id, pointer = live[pos]
                        if upper[ai, pos] <= radius:
                            results[qi].append(object_id)  # Lemma 4: no I/O
                        else:
                            candidates[qi].append(object_id)
                            pointer_of[object_id] = pointer
            else:
                subsets = self._node_child_subsets(
                    node, qmat, active, radii_template[active]
                )
                for child, sub, _bounds in subsets:
                    stack.append((child, sub))
        def handle(qi, ids, records):
            dists = self.space.d_many(queries[qi], [records[i][1] for i in ids])
            results[qi].extend(o for o, d in zip(ids, dists) if d <= radius)

        drain_record_chunks(self.raf, pointer_of, [list(ids) for ids in candidates], handle)
        return [sorted(r) for r in results]

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        """Batch MkNNQ: shared best-first frontier over nodes and entries.

        Node pops carry active query subsets (so each touched B+-tree page
        is read once per batch); leaf entries re-queue per (query, entry)
        under their grid lower bound, exactly like the sequential
        best-first walk, and entry pops verify through a batch-scoped RAF
        page cache -- at most one read per touched record page per batch.
        """
        queries = list(queries)
        if not queries:
            return []
        live = len(self._pointers)
        if live == 0:
            return [[] for _ in queries]
        kk = min(k, live)
        qmat = self.mapping.map_query_many(queries)
        heaps = [KnnHeap(kk) for _ in queries]
        counter = itertools.count()
        cache = self.pager.batch_reader()
        every = np.arange(len(queries), dtype=np.intp)
        # queue items: (bound, seq, kind, payload, active, bounds);
        # kind 0 = node with query subset, 1 = (query, entry)
        pq: list[tuple] = [
            (0.0, next(counter), 0, self.btree.root_page, every, np.zeros(len(queries)))
        ]
        while pq:
            bound, _, kind, payload, active, bounds = heapq.heappop(pq)
            if bound > max(heap.radius for heap in heaps):
                break
            if kind == 1:
                qi, object_id, pointer = payload
                if bound > heaps[qi].radius or object_id not in self._pointers:
                    continue
                record = self.raf.read_cached(cache, pointer)
                heaps[qi].consider(object_id, self.space.d(queries[qi], record[1]))
                continue
            radii = np.asarray([heaps[qi].radius for qi in active])
            alive = bounds <= radii
            if not alive.any():
                continue
            active = active[alive]
            node = self.btree.read_node(payload)
            if node.is_leaf:
                live_entries = [
                    (j, object_id, pointer)
                    for j, (object_id, pointer) in enumerate(node.values)
                    if object_id in self._pointers
                ]
                if not live_entries:
                    continue
                coords = np.asarray(
                    [self.curve.decode(node.keys[j]) for j, _, _ in live_entries]
                )
                lower, _ = self._leaf_cell_bounds_many(qmat[active], coords)
                for ai, qi in enumerate(active):
                    r = heaps[qi].radius
                    for pos in np.flatnonzero(lower[ai] <= r):
                        _, object_id, pointer = live_entries[pos]
                        heapq.heappush(
                            pq,
                            (
                                float(lower[ai, pos]),
                                next(counter),
                                1,
                                (int(qi), object_id, pointer),
                                None,
                                None,
                            ),
                        )
            else:
                radii = np.asarray([heaps[qi].radius for qi in active])
                for child, sub, child_bounds in self._node_child_subsets(
                    node, qmat, active, radii
                ):
                    heapq.heappush(
                        pq,
                        (
                            float(child_bounds.min()),
                            next(counter),
                            0,
                            child,
                            sub,
                            child_bounds,
                        ),
                    )
        return [heap.neighbors() for heap in heaps]

    # -- maintenance -----------------------------------------------------------------------

    def insert(self, obj, object_id: int | None = None) -> int:
        """|P| computations + B+-tree insert (augmented path updates)."""
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        vec = self.mapping.map_object(obj)
        if int(object_id) >= self.mapping.n_objects:
            self.mapping.append(vec)
        key = self.curve.encode(self._grid_cell(vec))
        pointer = self.raf.append((int(object_id), obj))
        self._pointers[int(object_id)] = pointer
        self.btree.insert(key, (int(object_id), pointer))
        return int(object_id)

    def delete(self, object_id: int) -> None:
        """Recompute the key (|P| computations), then B+-tree delete."""
        pointer = self._pointers.pop(object_id, None)
        if pointer is None:
            raise KeyError(f"object {object_id} is not in the index")
        vec = np.asarray(
            [
                self.space.d(self.space.dataset[object_id], p)
                for p in self.mapping.pivot_objects
            ]
        )
        key = self.curve.encode(self._grid_cell(vec))
        self.btree.delete(key, (object_id, pointer))
        self.raf.mark_deleted(pointer)

    # -- accounting --------------------------------------------------------------------------

    def storage_bytes(self) -> dict[str, int]:
        return {
            "memory": 8 * self.mapping.n_pivots,
            "disk": self.pager.disk_bytes(),
        }
