"""DEPT: a disk-resident EPT* with low construction cost.

The paper closes with: "extension of EPT(*) to a disk-based metric index
with a low construction cost is a promising direction" (Section 7).  This
module is that extension, built from the study's own ingredients:

* **Disk residency** -- the per-object pivot table lives in paged blocks
  (like the Omni sequential file) and the objects in an RAF, so memory holds
  only the pivot table *directory*;
* **Low construction cost** -- instead of running PSA per object (EPT*
  needs the full |CP| x n and |S| x n distance matrices), objects are routed
  to a small number of *groups* by their nearest routing candidate (a handful
  of distances per object), PSA runs **once per group** on a bounded member
  subsample, and each object then computes distances only to its group's l
  chosen pivots.  Construction costs O(n * (routing + l)) + O(1) group work,
  versus EPT*'s O(n * (|CP| + |S|)) -- while queries keep EPT*-style
  locally-tuned pivots.

The query algorithms are EPT's (scan the table blocks, Lemma 1, verify),
with the block scan paying page accesses like any disk index.
"""

from __future__ import annotations

import numpy as np

from ..core.index import MetricIndex
from ..core.metric_space import MetricSpace
from ..core.pivot_selection import hf
from ..core.queries import KnnHeap, Neighbor, best_first_knn
from ..storage.pager import Pager
from ..storage.raf import RandomAccessFile, RecordPointer
from .batch import drain_record_chunks

__all__ = ["DEPT"]


class DEPT(MetricIndex):
    """Disk-based Extreme Pivot Table (the paper's future-work direction)."""

    name = "DEPT"
    is_disk_based = True

    def __init__(
        self,
        space: MetricSpace,
        pager: Pager,
        candidate_ids: list[int],
        group_pivots: dict[int, list[int]],
    ):
        super().__init__(space)
        self.pager = pager
        self.raf = RandomAccessFile(pager)
        self.candidate_ids = candidate_ids  # HF candidate pool (global)
        self.group_pivots = group_pivots  # group -> candidate columns
        self._table_pages: list[int] = []
        self._pointers: dict[int, RecordPointer] = {}
        self._group_of: dict[int, int] = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        n_pivots_per_object: int = 5,
        candidate_scale: int = 40,
        sample_size: int = 32,
        n_groups: int = 8,
        members_per_group: int = 16,
        pager: Pager | None = None,
        page_size: int = 4096,
        seed: int = 0,
    ) -> "DEPT":
        n = len(space)
        if pager is None:
            pager = Pager(page_size=page_size, counters=space.counters)
        rng = np.random.default_rng(seed)
        n_candidates = min(max(candidate_scale, n_pivots_per_object), n)
        candidates = hf(space, n_candidates, sample_size=min(256, n), seed=seed)

        # route every object to its nearest *routing* candidate -- the first
        # few HF foci are well spread, so a handful suffices; this is the
        # only per-object distance work besides the final l pivot columns
        routing = candidates[: min(n_groups, len(candidates))]
        routing_dists = space.pairwise_ids(routing, list(range(n)))
        groups = np.argmin(routing_dists, axis=0)

        # O(1)-sized PSA inputs: candidates vs query proxies, and per group a
        # bounded member subsample
        sample_ids = [
            int(i) for i in rng.choice(n, size=min(sample_size, n), replace=False)
        ]
        cand_sample = space.pairwise_ids(candidates, sample_ids)  # |CP| x |S|

        group_pivots: dict[int, list[int]] = {}
        for group in np.unique(groups):
            members = np.flatnonzero(groups == group)
            if len(members) > members_per_group:
                members = rng.choice(members, size=members_per_group, replace=False)
            member_ids = [int(i) for i in members]
            cand_member = space.pairwise_ids(candidates, member_ids)  # |CP| x m
            sample_member = space.pairwise_ids(sample_ids, member_ids)  # |S| x m
            denom = np.maximum(sample_member, 1e-12)
            gaps = np.abs(
                cand_sample[:, :, None] - cand_member[:, None, :]
            )  # |CP| x |S| x m
            ratios = (gaps / denom[None, :, :]).mean(axis=2)  # |CP| x |S|
            current = np.zeros(len(sample_ids))
            chosen: list[int] = []
            for _ in range(min(n_pivots_per_object, len(candidates))):
                scores = np.maximum(current[None, :], ratios).mean(axis=1)
                if chosen:
                    scores[chosen] = -1.0
                best = int(np.argmax(scores))
                chosen.append(best)
                current = np.maximum(current, ratios[best])
            group_pivots[int(group)] = chosen

        index = cls(space, pager, candidates, group_pivots)
        # write table blocks (group-clustered, so scans are I/O-local) + RAF;
        # each object computes distances to its group's l pivots only
        per_page = max(
            1, (page_size - 64) // (8 * n_pivots_per_object + 16)
        )
        order = sorted(range(n), key=lambda i: int(groups[i]))
        block_ids: list[int] = []
        block_rows: list[np.ndarray] = []
        block_groups: list[int] = []

        def flush():
            if not block_ids:
                return
            page = pager.allocate()
            pager.write(
                page,
                (list(block_ids), np.asarray(block_rows), list(block_groups)),
            )
            index._table_pages.append(page)
            block_ids.clear()
            block_rows.clear()
            block_groups.clear()

        for object_id in order:
            group = int(groups[object_id])
            cols = group_pivots[group]
            pivot_objs = space.dataset.gather([candidates[c] for c in cols])
            row = space.d_many(space.dataset[object_id], pivot_objs)
            block_ids.append(object_id)
            block_rows.append(row)
            block_groups.append(group)
            index._group_of[object_id] = group
            index._pointers[object_id] = index.raf.append(
                (object_id, space.dataset[object_id])
            )
            if len(block_ids) >= per_page:
                flush()
        flush()
        return index

    # -- queries -----------------------------------------------------------

    def _scan(self, query_obj, radius_fn, handler) -> None:
        """Scan table blocks; Lemma 1 with each group's pivots; verify."""
        qd_cache: dict[int, float] = {}

        def qd(col: int) -> float:
            if col not in qd_cache:
                qd_cache[col] = self.space.d(
                    query_obj, self.space.dataset[self.candidate_ids[col]]
                )
            return qd_cache[col]

        for page in self._table_pages:
            block_ids, rows, block_groups = self.pager.read(page)
            for i, object_id in enumerate(block_ids):
                if object_id not in self._pointers:
                    continue
                radius = radius_fn()
                cols = self.group_pivots[block_groups[i]]
                qdists = np.asarray([qd(c) for c in cols])
                if np.abs(qdists - rows[i]).max() > radius:
                    continue
                _, obj = self.raf.read(self._pointers[object_id])
                handler(object_id, obj)

    def range_query(self, query_obj, radius: float) -> list[int]:
        results: list[int] = []

        def handler(object_id, obj):
            if self.space.d(query_obj, obj) <= radius:
                results.append(object_id)

        self._scan(query_obj, lambda: radius, handler)
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        live = len(self._pointers)
        if live == 0:
            return []
        heap = KnnHeap(min(k, live))

        def handler(object_id, obj):
            heap.consider(object_id, self.space.d(query_obj, obj))

        self._scan(query_obj, lambda: heap.radius, handler)
        return heap.neighbors()

    # -- batch queries ---------------------------------------------------------

    def _scan_bounds_many(self, queries) -> tuple[list[int], np.ndarray]:
        """One table-block pass for the whole batch (table-style override).

        Each table page is read once per batch (the sequential scan reads
        every page once *per query*); query-pivot distances are computed
        with a single counted ``pairwise`` call covering exactly the
        candidate columns the sequential lazy cache would touch (the union
        of the live objects' group pivots), so MRQ compdists match the
        sequential loop.  Returns live ids in storage order and the
        ``q x n`` Lemma 1 lower-bound matrix over each object's own group
        pivots.
        """
        pages: list[tuple[list[int], np.ndarray, list[int]]] = []
        used_cols: list[int] = []
        seen_groups: set[int] = set()
        for page in self._table_pages:
            block_ids, rows, block_groups = self.pager.read(page)
            pages.append((block_ids, np.asarray(rows, dtype=np.float64), block_groups))
            for object_id, group in zip(block_ids, block_groups):
                if object_id in self._pointers and group not in seen_groups:
                    seen_groups.add(group)
                    for col in self.group_pivots[group]:
                        if col not in used_cols:
                            used_cols.append(col)
        if not used_cols:
            return [], np.empty((len(queries), 0), dtype=np.float64)
        col_pos = {col: pos for pos, col in enumerate(used_cols)}
        pivot_objs = self.space.dataset.gather(
            [self.candidate_ids[col] for col in used_cols]
        )
        qdists = self.space.pairwise_objects(queries, pivot_objs)  # q x |used|
        ids: list[int] = []
        blocks: list[np.ndarray] = []
        for block_ids, rows, block_groups in pages:
            live = [
                i for i, object_id in enumerate(block_ids)
                if object_id in self._pointers
            ]
            if not live:
                continue
            bounds = np.empty((len(queries), len(live)), dtype=np.float64)
            for out_pos, i in enumerate(live):
                cols = [col_pos[c] for c in self.group_pivots[block_groups[i]]]
                bounds[:, out_pos] = np.abs(qdists[:, cols] - rows[i]).max(axis=1)
            ids.extend(block_ids[i] for i in live)
            blocks.append(bounds)
        if not ids:
            return [], np.empty((len(queries), 0), dtype=np.float64)
        return ids, np.concatenate(blocks, axis=1)

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        """Batch MRQ: shared bound matrix + page-grouped RAF verification."""
        queries = list(queries)
        if not queries:
            return []
        ids, lower = self._scan_bounds_many(queries)
        survivors = lower <= radius
        ids_arr = np.asarray(ids, dtype=np.intp)
        results: list[list[int]] = [[] for _ in queries]
        pending = [
            [int(i) for i in ids_arr[survivors[qi]]] for qi in range(len(queries))
        ]

        def handle(qi, ids, records):
            dists = self.space.d_many(queries[qi], [records[i][1] for i in ids])
            results[qi].extend(o for o, d in zip(ids, dists) if d <= radius)

        drain_record_chunks(self.raf, self._pointers, pending, handle)
        return [sorted(r) for r in results]

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        """Batch MkNNQ: best-first verification over the shared bounds.

        Candidates verify in ascending lower-bound order per query (fewer
        computations than the sequential storage-order scan, identical
        answers) through a batch-scoped RAF page cache, so each touched
        record page is read at most once per batch.
        """
        queries = list(queries)
        if not queries:
            return []
        live = len(self._pointers)
        if live == 0:
            return [[] for _ in queries]
        ids, lower = self._scan_bounds_many(queries)
        if not ids:
            return [[] for _ in queries]
        row_ids = np.asarray(ids, dtype=np.intp)
        cache = self.pager.batch_reader()

        def verifier(q):
            def verify(cand_ids):
                objs = [
                    self.raf.read_cached(cache, self._pointers[i])[1]
                    for i in cand_ids
                ]
                return self.space.d_many(q, objs)

            return verify

        return [
            best_first_knn(lower[qi], row_ids, min(k, live), verifier(q))
            for qi, q in enumerate(queries)
        ]

    # -- maintenance ----------------------------------------------------------

    def insert(self, obj, object_id: int | None = None) -> int:
        """Assign to the nearest candidate's group: |CP| computations."""
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        cand_d = self.space.d_many(
            obj, self.space.dataset.gather(self.candidate_ids)
        )
        group = int(np.argmin(cand_d))
        if group not in self.group_pivots:
            # adopt the globally best columns of an existing group
            group = next(iter(self.group_pivots))
        cols = self.group_pivots[group]
        page = self.pager.allocate()
        self.pager.write(
            page,
            ([int(object_id)], cand_d[cols].reshape(1, -1), [group]),
        )
        self._table_pages.append(page)
        self._group_of[int(object_id)] = group
        self._pointers[int(object_id)] = self.raf.append((int(object_id), obj))
        return int(object_id)

    def delete(self, object_id: int) -> None:
        pointer = self._pointers.pop(object_id, None)
        if pointer is None:
            raise KeyError(f"object {object_id} is not in the index")
        self.raf.mark_deleted(pointer)
        self._group_of.pop(object_id, None)

    # -- accounting ---------------------------------------------------------------

    def storage_bytes(self) -> dict[str, int]:
        return {
            "memory": 8 * len(self.candidate_ids)
            + sum(8 * (len(v) + 1) for v in self.group_pivots.values()),
            "disk": self.pager.disk_bytes(),
        }
