"""Pivot-based external (disk) indexes: PM-tree, Omni-family, M-index(*), SPB-tree."""

from .dept import DEPT
from .mindex import MIndex, MIndexStar
from .mtree_index import MTreeIndex
from .omni import OmniBPlusTree, OmniRTree, OmniSequentialFile
from .pmtree import PMTree
from .spbtree import SPBTree

__all__ = [
    "DEPT",
    "MIndex",
    "MIndexStar",
    "MTreeIndex",
    "OmniBPlusTree",
    "OmniRTree",
    "OmniSequentialFile",
    "PMTree",
    "SPBTree",
]
