"""M-index and M-index* (Novak, Batko, Zezula 2011 + the paper's MBBs).

The M-index generalises iDistance to metric spaces (Section 5.3): objects
are clustered by *generalized hyperplane partitioning* (each object joins
its nearest pivot), and within cluster C_i an object is keyed by
``d(p_i, o) + (i-1) * d+``.  The structure is:

1. a pivot table,
2. a **cluster tree** (in memory) whose leaves track minkey/maxkey per
   cluster -- clusters exceeding ``maxnum`` objects are re-partitioned by
   their objects' nearest pivot among the *remaining* pivots, giving the
   dynamic tree of Figure 12(d);
3. a **B+-tree** over the keys -- we key by the tuple
   ``(cluster path, d(p_first, o))``, a lossless tuple form of the paper's
   flattened real-number key (each cluster is one contiguous key run, and
   within a run keys sort by the distance, which is all the flattened
   encoding provides);
4. an **RAF** storing each object together with all of its pre-computed
   pivot distances (cluster order, so cluster scans are I/O-local).

MRQ prunes clusters with Lemma 3 (double-pivot) and ring bounds
(minkey/maxkey), scans the surviving clusters' key ranges, and filters
fetched records with Lemma 1.  MkNNQ runs MRQs with an increasing radius --
the paper's stated weakness of the M-index.

**M-index*** (the paper's second contribution) additionally keeps each
cluster's MBB in pivot space, enabling Lemma 1 pruning of whole clusters, a
*single* best-first traversal for MkNNQ, and Lemma 4 validation that skips
both the RAF read and the distance computation for whole clusters.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from ..btree.bptree import BPlusTree
from ..core.index import MetricIndex
from ..core.mapping import PivotMapping
from ..core.metric_space import MetricSpace
from ..core.pivot_filter import (
    lower_bound,
    mbb_max_dist,
    mbb_min_dist,
    mbb_min_dist_many_queries,
    mbb_validate_mask_many_queries,
    upper_bound,
)
from ..core.queries import KnnHeap, Neighbor
from ..storage.pager import Pager
from ..storage.raf import RandomAccessFile, RecordPointer
from .batch import drain_record_chunks, merge_intervals

__all__ = ["MIndex", "MIndexStar"]


@dataclass
class _ClusterNode:
    """One node of the dynamic cluster tree.

    ``path`` is the pivot-index sequence identifying the cluster; internal
    nodes have ``children`` keyed by the next pivot index, leaves track key
    bounds, a member count, and (M-index* only) the cluster MBB.
    """

    path: tuple[int, ...]
    children: dict[int, "_ClusterNode"] | None = None
    count: int = 0
    min_dist: float = float("inf")  # min d(p_first, o) over members
    max_dist: float = -float("inf")
    mbb_lows: np.ndarray | None = None
    mbb_highs: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class MIndex(MetricIndex):
    """iDistance for metric spaces; see module docstring."""

    name = "M-index"
    is_disk_based = True
    track_mbbs = False

    def __init__(
        self,
        space: MetricSpace,
        mapping: PivotMapping,
        pager: Pager,
        maxnum: int,
    ):
        super().__init__(space)
        self.mapping = mapping
        self.pager = pager
        self.maxnum = maxnum
        self.btree = BPlusTree(pager)
        self.raf = RandomAccessFile(pager)
        self.root = _ClusterNode(path=())
        self.root.children = {}
        self._pointers: dict[int, RecordPointer] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        pivot_ids,
        pager: Pager | None = None,
        page_size: int = 4096,
        maxnum: int = 512,
    ) -> "MIndex":
        """Cluster all objects and bulk-load the B+-tree in key order.

        Partitioning happens in memory first (recursively splitting clusters
        larger than ``maxnum`` by the next-nearest remaining pivot), so the
        final paths are known before the RAF and B+-tree are written --
        objects land on disk in cluster order.
        """
        mapping = PivotMapping(space, pivot_ids)
        if pager is None:
            pager = Pager(page_size=page_size, counters=space.counters)
        index = cls(space, mapping, pager, maxnum)

        n = mapping.n_objects
        clusters: dict[tuple[int, ...], list[int]] = {}
        pending: list[tuple[tuple[int, ...], list[int]]] = [((), list(range(n)))]
        while pending:
            path, ids = pending.pop()
            if len(ids) <= maxnum or len(path) >= mapping.n_pivots:
                if path:
                    clusters[path] = ids
                    continue
            groups: dict[int, list[int]] = {}
            used = set(path)
            remaining = [j for j in range(mapping.n_pivots) if j not in used]
            for object_id in ids:
                vec = mapping.vector(object_id)
                nearest = min(remaining, key=lambda j: vec[j])
                groups.setdefault(nearest, []).append(object_id)
            for pivot, group_ids in groups.items():
                pending.append((path + (pivot,), group_ids))

        items = []
        for path in sorted(clusters):
            leaf = index._materialize_leaf(path)
            member_ids = sorted(
                clusters[path], key=lambda i: float(mapping.vector(i)[path[0]])
            )
            for object_id in member_ids:
                vec = mapping.vector(object_id)
                pointer = index.raf.append(
                    (object_id, space.dataset[object_id], vec)
                )
                index._pointers[object_id] = pointer
                items.append(((path, float(vec[path[0]])), (object_id, pointer)))
                index._register_into(leaf, vec)
        index.btree.bulk_load(items)
        return index

    def _cluster_path(self, vec: np.ndarray) -> tuple[int, ...]:
        """Descend the dynamic cluster tree by nearest-remaining-pivot."""
        node = self.root
        path: list[int] = []
        used: set[int] = set()
        while not node.is_leaf:
            remaining = [j for j in range(self.mapping.n_pivots) if j not in used]
            if not remaining:
                break
            nearest = min(remaining, key=lambda j: vec[j])
            path.append(nearest)
            used.add(nearest)
            child = node.children.get(nearest)
            if child is None:
                child = _ClusterNode(path=tuple(path))
                node.children[nearest] = child
            node = child
        return node.path

    def _materialize_leaf(self, path: tuple[int, ...]) -> _ClusterNode:
        """Create (or fetch) the leaf for ``path``, adding internal levels."""
        node = self.root
        for depth, pivot in enumerate(path):
            if node.is_leaf:
                node.children = {}
            child = node.children.get(pivot)
            if child is None:
                child = _ClusterNode(path=path[: depth + 1])
                node.children[pivot] = child
            node = child
        return node

    def _find_leaf(self, path: tuple[int, ...]) -> _ClusterNode:
        node = self.root
        for pivot in path:
            node = node.children[pivot]
        return node

    def _register(self, path: tuple[int, ...], vec: np.ndarray) -> None:
        """Update leaf statistics after adding one member; split when full."""
        leaf = self._find_leaf(path)
        self._register_into(leaf, vec)
        if leaf.count > self.maxnum and len(path) < self.mapping.n_pivots:
            self._split_cluster(leaf)

    def _split_cluster(self, leaf: _ClusterNode) -> None:
        """Re-partition an oversized cluster by the next-nearest pivot."""
        path = leaf.path
        members = list(self.btree.range_scan((path, -float("inf")), (path, float("inf"))))
        leaf.children = {}
        leaf.count = 0
        leaf.min_dist, leaf.max_dist = float("inf"), -float("inf")
        leaf.mbb_lows = leaf.mbb_highs = None
        used = set(path)
        remaining = [j for j in range(self.mapping.n_pivots) if j not in used]
        for key, (object_id, pointer) in members:
            self.btree.delete(key, (object_id, pointer))
            _, _, vec = self.raf.read(pointer)
            nearest = min(remaining, key=lambda j: vec[j])
            child_path = path + (nearest,)
            child = leaf.children.get(nearest)
            if child is None:
                child = _ClusterNode(path=child_path)
                leaf.children[nearest] = child
            new_key = (child_path, float(vec[child_path[0]]))
            self.btree.insert(new_key, (object_id, pointer))
            self._register_into(child, vec)
        for child in leaf.children.values():
            if child.count > self.maxnum and len(child.path) < self.mapping.n_pivots:
                self._split_cluster(child)

    def _register_into(self, leaf: _ClusterNode, vec: np.ndarray) -> None:
        leaf.count += 1
        d_first = float(vec[leaf.path[0]])
        leaf.min_dist = min(leaf.min_dist, d_first)
        leaf.max_dist = max(leaf.max_dist, d_first)
        if self.track_mbbs:
            if leaf.mbb_lows is None:
                leaf.mbb_lows = np.array(vec, dtype=np.float64)
                leaf.mbb_highs = np.array(vec, dtype=np.float64)
            else:
                np.minimum(leaf.mbb_lows, vec, out=leaf.mbb_lows)
                np.maximum(leaf.mbb_highs, vec, out=leaf.mbb_highs)

    # -- cluster enumeration with pruning ------------------------------------------

    def _candidate_clusters(self, qdists: np.ndarray, radius: float):
        """Leaves surviving Lemma 3 + ring pruning, depth-first."""
        stack: list[tuple[_ClusterNode, set[int]]] = [(self.root, set())]
        while stack:
            node, used = stack.pop()
            if node.is_leaf:
                if node.count == 0:
                    continue
                first = node.path[0]
                # ring bounds on d(q, p_first) (range-pivot flavour)
                if qdists[first] - radius > node.max_dist:
                    continue
                if qdists[first] + radius < node.min_dist:
                    continue
                yield node
                continue
            remaining = [j for j in range(self.mapping.n_pivots) if j not in used]
            if not remaining:
                continue
            best = min(float(qdists[j]) for j in remaining)
            for pivot, child in node.children.items():
                # Lemma 3: q is more than 2r closer to some other pivot
                if float(qdists[pivot]) - best > 2.0 * radius:
                    continue
                stack.append((child, used | {pivot}))

    def _scan_cluster(self, leaf, qdists, radius, handler) -> None:
        """Key-range scan of one cluster; Lemma 1 filter; verify via handler."""
        first = leaf.path[0]
        low = (leaf.path, float(qdists[first]) - radius)
        high = (leaf.path, float(qdists[first]) + radius)
        for _, (object_id, pointer) in self.btree.range_scan(low, high):
            if object_id not in self._pointers:
                continue  # deleted
            _, obj, vec = self.raf.read(pointer)
            if lower_bound(qdists, vec) > radius:
                continue  # Lemma 1, no distance computation
            handler(object_id, obj, vec)

    # -- batched cluster machinery ---------------------------------------------

    def _candidate_clusters_many(self, qmat: np.ndarray, radii: np.ndarray, active):
        """Batched :meth:`_candidate_clusters`: one descent per batch.

        ``radii`` is a full-length per-query radius vector (shared for MRQ,
        the round radius for the expanding MkNNQ); ``active`` indexes the
        queries still alive.  Yields (leaf, query subset) pairs where the
        subset is exactly the set of queries whose sequential traversal
        would reach the leaf.
        """
        stack = [(self.root, frozenset(), np.asarray(active, dtype=np.intp))]
        while stack:
            node, used, act = stack.pop()
            if not act.size:
                continue
            if node.is_leaf:
                if node.count == 0:
                    continue
                first = node.path[0]
                d1 = qmat[act, first]
                r = radii[act]
                keep = (d1 - r <= node.max_dist) & (d1 + r >= node.min_dist)
                sub = act[keep]
                if sub.size:
                    yield node, sub
                continue
            remaining = [j for j in range(self.mapping.n_pivots) if j not in used]
            if not remaining:
                continue
            best = qmat[np.ix_(act, remaining)].min(axis=1)
            for pivot, child in node.children.items():
                keep = qmat[act, pivot] - best <= 2.0 * radii[act]
                if keep.any():
                    stack.append((child, used | {pivot}, act[keep]))

    def _collect_cluster_candidates(
        self, leaf, qmat: np.ndarray, radii: np.ndarray, sub, candidates
    ) -> None:
        """Merged key-run scan of one cluster for a query subset.

        The subset's scan ranges are merged, each disjoint run is scanned
        once for the whole batch, and every query selects entries with the
        exact inclusive predicate the sequential :meth:`_scan_cluster`
        applies -- so per-query candidate sets are identical while each
        touched B+-tree leaf page is read once per batch.
        """
        first = leaf.path[0]
        spans = {
            int(qi): (
                float(qmat[qi, first]) - float(radii[qi]),
                float(qmat[qi, first]) + float(radii[qi]),
            )
            for qi in sub
        }
        keys: list[float] = []
        ids: list[int] = []
        for lo, hi in merge_intervals(spans.values()):
            for key, (object_id, _pointer) in self.btree.range_scan(
                (leaf.path, lo), (leaf.path, hi)
            ):
                if object_id not in self._pointers:
                    continue  # deleted
                keys.append(key[1])
                ids.append(object_id)
        if not keys:
            return
        key_arr = np.asarray(keys, dtype=np.float64)
        for qi in sub:
            lo, hi = spans[int(qi)]
            sel = (key_arr >= lo) & (key_arr <= hi)
            candidates[qi].extend(ids[j] for j in np.flatnonzero(sel))

    def _verify_candidates_into(
        self, queries, qmat: np.ndarray, radius: float, candidates, results
    ) -> None:
        """Grouped RAF verification: Lemma 1 on the stored vector, then d.

        Candidates are fetched page-grouped (each touched RAF page read at
        most once per batch); each query then applies the per-record checks
        of the sequential scan in one vectorised pass per chunk.
        """
        pending = [list(ids) for ids in candidates]
        drain_record_chunks(
            self.raf,
            self._pointers,
            pending,
            lambda qi, ids, records: self._filter_records(
                qi, queries[qi], qmat, radius, ids, records, results
            ),
        )

    def _filter_records(self, qi, q, qmat, radius, ids, records, results) -> None:
        """Per-record Lemma 1 filter + verification for one query's chunk."""
        vecs = np.asarray([records[i][2] for i in ids], dtype=np.float64)
        lb = np.abs(qmat[qi] - vecs).max(axis=1)
        survivors = [i for i, b in zip(ids, lb) if b <= radius]
        if survivors:
            dists = self.space.d_many(q, [records[i][1] for i in survivors])
            results[qi].extend(o for o, d in zip(survivors, dists) if d <= radius)

    # -- batch queries -----------------------------------------------------------

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        """Batch MRQ: one cluster-tree descent, merged key runs, grouped RAF."""
        queries = list(queries)
        if not queries:
            return []
        qmat = self.mapping.map_query_many(queries)
        radii = np.full(len(queries), float(radius))
        candidates: list[list[int]] = [[] for _ in queries]
        every = np.arange(len(queries), dtype=np.intp)
        for leaf, sub in self._candidate_clusters_many(qmat, radii, every):
            self._collect_cluster_candidates(leaf, qmat, radii, sub, candidates)
        results: list[list[int]] = [[] for _ in queries]
        self._verify_candidates_into(queries, qmat, radius, candidates, results)
        return [sorted(r) for r in results]

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        """Batch MkNNQ: the expanding-radius rounds run batch-wide.

        Every query follows the sequential radius schedule (same start,
        doubling), so each round shares one cluster-tree descent and one
        merged key-run scan per surviving cluster; records are read through
        a batch-scoped page cache, so the re-scanned rings of later rounds
        -- the M-index weakness the paper measures -- cost each RAF page at
        most one read per *batch* instead of per round per query.
        """
        queries = list(queries)
        if not queries:
            return []
        live = len(self._pointers)
        if live == 0:
            return [[] for _ in queries]
        kk = min(k, live)
        qmat = self.mapping.map_query_many(queries)
        heaps = [KnnHeap(kk) for _ in queries]
        computed: list[set[int]] = [set() for _ in queries]
        cache = self.pager.batch_reader()
        radius = max(self.mapping.max_distance_bound() / 128.0, 1e-9)
        active = np.arange(len(queries), dtype=np.intp)
        while active.size:
            radii = np.full(len(queries), radius)
            candidates: list[list[int]] = [[] for _ in queries]
            for leaf, sub in self._candidate_clusters_many(qmat, radii, active):
                self._collect_cluster_candidates(leaf, qmat, radii, sub, candidates)
            for qi in active:
                ids = sorted(
                    candidates[qi],
                    key=lambda i: (
                        self._pointers[i].page_id,
                        self._pointers[i].slot,
                    ),
                )
                fresh: list[int] = []
                objs: list = []
                for i in ids:
                    record = self.raf.read_cached(cache, self._pointers[i])
                    if np.abs(qmat[qi] - record[2]).max() > radius:
                        continue  # Lemma 1, as in the sequential scan
                    if i in computed[qi]:
                        continue
                    computed[qi].add(i)
                    fresh.append(i)
                    objs.append(record[1])
                if fresh:
                    dists = self.space.d_many(queries[qi], objs)
                    for object_id, d in zip(fresh, dists):
                        heaps[qi].consider(object_id, float(d))
            active = np.asarray(
                [
                    qi
                    for qi in active
                    if not (heaps[qi].is_full() and heaps[qi].radius <= radius)
                    and len(computed[qi]) < live
                ],
                dtype=np.intp,
            )
            radius *= 2.0
        return [heap.neighbors() for heap in heaps]

    # -- queries ----------------------------------------------------------------------

    def range_query(self, query_obj, radius: float) -> list[int]:
        qdists = self.mapping.map_query(query_obj)
        results: list[int] = []

        def handler(object_id, obj, vec):
            if self.space.d(query_obj, obj) <= radius:
                results.append(object_id)

        for leaf in self._candidate_clusters(qdists, radius):
            self._scan_cluster(leaf, qdists, radius, handler)
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        """Expanding-radius MkNNQ (the paper's stated M-index weakness).

        Every round re-traverses the cluster tree and re-scans B+-tree/RAF
        pages -- the redundant PA and CPU the paper measures.  Distances
        already verified are cached so compdists stay comparable to the
        M-index* (matching the paper's observation on Color/Synthetic).
        """
        live = len(self._pointers)
        if live == 0:
            return []
        k = min(k, live)
        qdists = self.mapping.map_query(query_obj)
        radius = max(self.mapping.max_distance_bound() / 128.0, 1e-9)
        heap = KnnHeap(k)
        computed: set[int] = set()

        def handler(object_id, obj, vec):
            if object_id in computed:
                return
            computed.add(object_id)
            heap.consider(object_id, self.space.d(query_obj, obj))

        while True:
            for leaf in self._candidate_clusters(qdists, radius):
                self._scan_cluster(leaf, qdists, radius, handler)
            if heap.is_full() and heap.radius <= radius:
                return heap.neighbors()
            if len(computed) >= live:
                return heap.neighbors()
            radius *= 2.0

    # -- maintenance ----------------------------------------------------------------------

    def insert(self, obj, object_id: int | None = None) -> int:
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        vec = self.mapping.map_object(obj)
        if int(object_id) >= self.mapping.n_objects:
            self.mapping.append(vec)
        path = self._cluster_path(vec)
        pointer = self.raf.append((int(object_id), obj, vec))
        self._pointers[int(object_id)] = pointer
        self.btree.insert((path, float(vec[path[0]])), (int(object_id), pointer))
        self._register(path, vec)
        return int(object_id)

    def delete(self, object_id: int) -> None:
        pointer = self._pointers.pop(object_id, None)
        if pointer is None:
            raise KeyError(f"object {object_id} is not in the index")
        vec = self.mapping.vector(object_id)
        path = self._cluster_path(vec)
        self.btree.delete((path, float(vec[path[0]])), (object_id, pointer))
        leaf = self._find_leaf(path)
        leaf.count -= 1  # bounds/MBB stay conservative
        self.raf.mark_deleted(pointer)

    # -- accounting --------------------------------------------------------------------------

    def storage_bytes(self) -> dict[str, int]:
        cluster_nodes = self._count_cluster_nodes(self.root)
        return {
            "memory": 8 * self.mapping.n_pivots + 64 * cluster_nodes,
            "disk": self.pager.disk_bytes(),
        }

    def _count_cluster_nodes(self, node: _ClusterNode) -> int:
        if node.is_leaf:
            return 1
        return 1 + sum(self._count_cluster_nodes(c) for c in node.children.values())


class MIndexStar(MIndex):
    """M-index + cluster MBBs + validation + single-pass best-first kNN."""

    name = "M-index*"
    track_mbbs = True

    def _candidate_clusters(self, qdists: np.ndarray, radius: float):
        """Adds Lemma 1 MBB pruning on top of the base cluster pruning."""
        for leaf in super()._candidate_clusters(qdists, radius):
            if leaf.mbb_lows is not None and mbb_min_dist(
                qdists, leaf.mbb_lows, leaf.mbb_highs
            ) > radius:
                continue
            yield leaf

    def _candidate_clusters_many(self, qmat: np.ndarray, radii: np.ndarray, active):
        """2-D Lemma 1 MBB pruning over (surviving queries x cluster)."""
        for leaf, sub in super()._candidate_clusters_many(qmat, radii, active):
            if leaf.mbb_lows is not None:
                box = mbb_min_dist_many_queries(
                    qmat[sub], leaf.mbb_lows, leaf.mbb_highs
                )[:, 0]
                sub = sub[box <= radii[sub]]
                if not sub.size:
                    continue
            yield leaf, sub

    def range_query(self, query_obj, radius: float) -> list[int]:
        qdists = self.mapping.map_query(query_obj)
        results: list[int] = []
        for leaf in self._candidate_clusters(qdists, radius):
            if leaf.mbb_lows is not None and mbb_max_dist(
                qdists, leaf.mbb_lows, leaf.mbb_highs
            ) <= radius:
                # Lemma 4 on the whole cluster: every member qualifies and the
                # B+-tree values carry the ids -- no RAF reads, no computations
                low = (leaf.path, -float("inf"))
                high = (leaf.path, float("inf"))
                for _, (object_id, _ptr) in self.btree.range_scan(low, high):
                    if object_id in self._pointers:
                        results.append(object_id)
                continue

            def handler(object_id, obj, vec):
                if upper_bound(qdists, vec) <= radius:  # Lemma 4 per object
                    results.append(object_id)
                elif self.space.d(query_obj, obj) <= radius:
                    results.append(object_id)

            self._scan_cluster(leaf, qdists, radius, handler)
        return sorted(results)

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        """Batch MRQ with whole-cluster Lemma 4 validation.

        Clusters validated for *any* of their surviving queries enumerate
        their B+-tree key run once and serve every validated query from
        that single scan (no RAF reads, no computations -- the sequential
        fast path, now amortised across the batch); the remaining queries
        go through the merged key runs and grouped RAF verification of the
        base class.
        """
        queries = list(queries)
        if not queries:
            return []
        qmat = self.mapping.map_query_many(queries)
        radii = np.full(len(queries), float(radius))
        candidates: list[list[int]] = [[] for _ in queries]
        results: list[list[int]] = [[] for _ in queries]
        every = np.arange(len(queries), dtype=np.intp)
        for leaf, sub in self._candidate_clusters_many(qmat, radii, every):
            if leaf.mbb_lows is not None:
                validated = mbb_validate_mask_many_queries(
                    qmat[sub], leaf.mbb_lows, leaf.mbb_highs, radius
                )[:, 0]
            else:
                validated = np.zeros(sub.size, dtype=bool)
            if validated.any():
                low = (leaf.path, -float("inf"))
                high = (leaf.path, float("inf"))
                members = [
                    object_id
                    for _, (object_id, _ptr) in self.btree.range_scan(low, high)
                    if object_id in self._pointers
                ]
                for qi in sub[validated]:
                    results[qi].extend(members)
            rest = sub[~validated]
            if rest.size:
                self._collect_cluster_candidates(leaf, qmat, radii, rest, candidates)
        self._verify_candidates_into(queries, qmat, radius, candidates, results)
        return [sorted(r) for r in results]

    def _filter_records(self, qi, q, qmat, radius, ids, records, results) -> None:
        """Adds per-record Lemma 4 validation before any computation."""
        vecs = np.asarray([records[i][2] for i in ids], dtype=np.float64)
        lb = np.abs(qmat[qi] - vecs).max(axis=1)
        upper = (qmat[qi] + vecs).min(axis=1)
        survivors: list[int] = []
        for i, b, u in zip(ids, lb, upper):
            if b > radius:
                continue  # Lemma 1
            if u <= radius:
                results[qi].append(i)  # Lemma 4: no distance computation
            else:
                survivors.append(i)
        if survivors:
            dists = self.space.d_many(q, [records[i][1] for i in survivors])
            results[qi].extend(o for o, d in zip(survivors, dists) if d <= radius)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        """Single best-first pass: clusters by MBB bound, entries by ring bound.

        Popping a cluster scans its B+-tree key run once and re-queues each
        entry under ``max(cluster MBB bound, |d(q,p_first) - d(o,p_first)|)``
        -- the ring part comes straight from the B+-tree key, so no RAF page
        is touched until an entry is actually popped for verification.  This
        is the single-traversal behaviour the paper credits for the
        M-index*'s improvement over the M-index in Figure 15.
        """
        live = len(self._pointers)
        if live == 0:
            return []
        k = min(k, live)
        qdists = self.mapping.map_query(query_obj)
        heap = KnnHeap(k)
        counter = itertools.count()
        # queue items: (bound, seq, kind, payload); kind 0 = cluster, 1 = entry
        pq: list[tuple[float, int, int, object]] = []
        for leaf in self._all_leaves(self.root):
            if leaf.count <= 0:
                continue
            bound = (
                mbb_min_dist(qdists, leaf.mbb_lows, leaf.mbb_highs)
                if leaf.mbb_lows is not None
                else 0.0
            )
            heapq.heappush(pq, (bound, next(counter), 0, leaf))
        while pq:
            bound, _, kind, payload = heapq.heappop(pq)
            if bound > heap.radius:
                break
            if kind == 1:
                object_id, pointer = payload
                _, obj, vec = self.raf.read(pointer)
                if lower_bound(qdists, vec) > heap.radius:
                    continue  # Lemma 1 with the full vector, post-tightening
                heap.consider(object_id, self.space.d(query_obj, obj))
                continue
            leaf = payload
            first = leaf.path[0]
            low = (leaf.path, -float("inf"))
            high = (leaf.path, float("inf"))
            for key, (object_id, pointer) in self.btree.range_scan(low, high):
                if object_id not in self._pointers:
                    continue
                ring = abs(float(qdists[first]) - key[1])
                entry_bound = max(bound, ring)
                if entry_bound <= heap.radius:
                    heapq.heappush(
                        pq, (entry_bound, next(counter), 1, (object_id, pointer))
                    )
        return heap.neighbors()

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        """Batch MkNNQ: one shared best-first pass for the whole batch.

        Clusters enter a shared priority queue with the active query
        subset and the 2-D MBB bounds; popping a cluster scans its B+-tree
        key run **once per batch** and re-queues per-(query, entry) items
        under ``max(cluster bound, ring bound)``, exactly as the sequential
        single traversal does per query.  Entry pops verify through a
        batch-scoped RAF page cache, so duplicate RAF accesses across
        queries -- the cost the paper's Figure 15 discussion is about --
        collapse to one read per touched page per batch.
        """
        queries = list(queries)
        if not queries:
            return []
        live = len(self._pointers)
        if live == 0:
            return [[] for _ in queries]
        kk = min(k, live)
        qmat = self.mapping.map_query_many(queries)
        heaps = [KnnHeap(kk) for _ in queries]
        counter = itertools.count()
        cache = self.pager.batch_reader()
        every = np.arange(len(queries), dtype=np.intp)
        # queue items: (bound, seq, kind, payload, active, bounds);
        # kind 0 = cluster (subset entry), 1 = (query, entry)
        pq: list[tuple] = []
        leaves = [leaf for leaf in self._all_leaves(self.root) if leaf.count > 0]
        if leaves:
            boxed = [leaf for leaf in leaves if leaf.mbb_lows is not None]
            bounds = np.zeros((len(queries), len(leaves)))
            if boxed and len(boxed) == len(leaves):
                bounds = mbb_min_dist_many_queries(
                    qmat,
                    np.asarray([leaf.mbb_lows for leaf in leaves]),
                    np.asarray([leaf.mbb_highs for leaf in leaves]),
                )
            else:
                for ci, leaf in enumerate(leaves):
                    if leaf.mbb_lows is not None:
                        bounds[:, ci] = mbb_min_dist_many_queries(
                            qmat, leaf.mbb_lows, leaf.mbb_highs
                        )[:, 0]
            for ci, leaf in enumerate(leaves):
                heapq.heappush(
                    pq,
                    (
                        float(bounds[:, ci].min()),
                        next(counter),
                        0,
                        leaf,
                        every,
                        bounds[:, ci],
                    ),
                )
        while pq:
            bound, _, kind, payload, active, bounds = heapq.heappop(pq)
            if bound > max(heap.radius for heap in heaps):
                break
            if kind == 1:
                qi, object_id, pointer = payload
                heap = heaps[qi]
                if bound > heap.radius or object_id not in self._pointers:
                    continue
                record = self.raf.read_cached(cache, pointer)
                if lower_bound(qmat[qi], record[2]) > heap.radius:
                    continue  # Lemma 1 with the full vector, post-tightening
                heap.consider(object_id, self.space.d(queries[qi], record[1]))
                continue
            leaf = payload
            radii = np.asarray([heaps[qi].radius for qi in active])
            alive = bounds <= radii
            if not alive.any():
                continue
            active, bounds = active[alive], bounds[alive]
            first = leaf.path[0]
            low = (leaf.path, -float("inf"))
            high = (leaf.path, float("inf"))
            entries = [
                (key[1], value)
                for key, value in self.btree.range_scan(low, high)
                if value[0] in self._pointers
            ]
            if not entries:
                continue
            key_arr = np.asarray([key for key, _ in entries], dtype=np.float64)
            for ai, qi in enumerate(active):
                ring = np.abs(float(qmat[qi, first]) - key_arr)
                entry_bounds = np.maximum(bounds[ai], ring)
                r = heaps[qi].radius
                for j in np.flatnonzero(entry_bounds <= r):
                    object_id, pointer = entries[j][1]
                    heapq.heappush(
                        pq,
                        (
                            float(entry_bounds[j]),
                            next(counter),
                            1,
                            (int(qi), object_id, pointer),
                            None,
                            None,
                        ),
                    )
        return [heap.neighbors() for heap in heaps]

    def _all_leaves(self, node: _ClusterNode):
        if node.is_leaf:
            yield node
            return
        for child in node.children.values():
            yield from self._all_leaves(child)
