"""The Omni-family (Traina Jr. et al., VLDB J. 2007).

All members share the same skeleton (Section 5.2 / Figure 11): a pivot
("foci") table, the mapped vectors I(o), and a **random access file** (RAF)
keeping the real objects *outside* the index so the object size does not
dictate the node layout.  They differ in how the mapped vectors are indexed:

* :class:`OmniSequentialFile` -- vectors in a flat paged file, scanned
  entirely ("LAESA stored on disk", as the paper puts it);
* :class:`OmniBPlusTree` -- one B+-tree per pivot over d(o, p_i); candidate
  id sets from per-pivot ranges are intersected;
* :class:`OmniRTree` -- a single R-tree over the l-dimensional mapped
  vectors, the family's best performer in the paper's experiments.

Queries verify candidates by fetching the object from the RAF (a counted
page access) and computing the true distance.
"""

from __future__ import annotations

import numpy as np

from ..btree.bptree import BPlusTree
from ..core.index import MetricIndex
from ..core.mapping import PivotMapping
from ..core.metric_space import MetricSpace
from ..core.pivot_filter import lower_bound_many
from ..core.queries import KnnHeap, Neighbor
from ..rtree.geometry import Rect
from ..rtree.rtree import RTree
from ..storage.pager import Pager
from ..storage.raf import RandomAccessFile, RecordPointer

__all__ = ["OmniSequentialFile", "OmniBPlusTree", "OmniRTree"]


class _OmniBase(MetricIndex):
    """Shared RAF handling for the Omni family."""

    is_disk_based = True

    def __init__(self, space: MetricSpace, mapping: PivotMapping, pager: Pager):
        super().__init__(space)
        self.mapping = mapping
        self.pager = pager
        self.raf = RandomAccessFile(pager)
        self._pointers: dict[int, RecordPointer] = {}

    def _store_objects(self, order) -> None:
        for object_id in order:
            self._pointers[object_id] = self.raf.append(
                (object_id, self.space.dataset[object_id])
            )

    def _fetch(self, object_id: int):
        """Read one object from the RAF (page access on cache miss)."""
        _, obj = self.raf.read(self._pointers[object_id])
        return obj

    def _verify(self, query_obj, object_id: int) -> float:
        return self.space.d(query_obj, self._fetch(object_id))

    def storage_bytes(self) -> dict[str, int]:
        return {
            "memory": 8 * self.mapping.n_pivots,
            "disk": self.pager.disk_bytes(),
        }


class OmniSequentialFile(_OmniBase):
    """Mapped vectors in a flat paged file, scanned in full per query."""

    name = "Omni-seq"

    def __init__(self, space, mapping, pager, per_page, vector_pages):
        super().__init__(space, mapping, pager)
        self._per_page = per_page
        self._vector_pages = vector_pages
        self._vector_page_of: dict[int, int] = {}

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        pivot_ids,
        pager: Pager | None = None,
        page_size: int = 4096,
    ) -> "OmniSequentialFile":
        mapping = PivotMapping(space, pivot_ids)
        if pager is None:
            pager = Pager(page_size=page_size, counters=space.counters)
        # vectors go to their own sequence of pages, read linearly on query
        per_page = max(1, (page_size - 64) // (8 * mapping.n_pivots + 12))
        vector_pages: list[int] = []
        n = mapping.n_objects
        index = cls(space, mapping, pager, per_page, vector_pages)
        for start in range(0, n, per_page):
            page = pager.allocate()
            block_ids = list(range(start, min(start + per_page, n)))
            pager.write(page, (block_ids, mapping.matrix[block_ids]))
            vector_pages.append(page)
            for object_id in block_ids:
                index._vector_page_of[object_id] = page
        index._store_objects(range(n))
        return index

    def _scan_candidates(self, query_pivot_dists, radius: float):
        """Read every vector page, yielding Lemma 1 survivors."""
        for page in self._vector_pages:
            block_ids, vectors = self.pager.read(page)
            if len(block_ids) == 0:
                continue
            lower = lower_bound_many(query_pivot_dists, vectors)
            for i in np.flatnonzero(lower <= radius):
                yield block_ids[i], lower[i]

    def range_query(self, query_obj, radius: float) -> list[int]:
        query_pivot_dists = self.mapping.map_query(query_obj)
        results = []
        for object_id, _ in self._scan_candidates(query_pivot_dists, radius):
            if object_id in self._pointers and self._verify(query_obj, object_id) <= radius:
                results.append(object_id)
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        query_pivot_dists = self.mapping.map_query(query_obj)
        heap = KnnHeap(k)
        for object_id, lower in self._scan_candidates(query_pivot_dists, float("inf")):
            if lower > heap.radius or object_id not in self._pointers:
                continue
            heap.consider(object_id, self._verify(query_obj, object_id))
        return heap.neighbors()

    def delete(self, object_id: int) -> None:
        """Remove the vector row in place, tombstone the RAF record."""
        pointer = self._pointers.pop(object_id, None)
        if pointer is None:
            raise KeyError(f"object {object_id} is not in the file")
        page = self._vector_page_of.pop(object_id)
        block_ids, vectors = self.pager.read(page)
        keep = [i for i, bid in enumerate(block_ids) if bid != object_id]
        self.pager.write(
            page, ([block_ids[i] for i in keep], vectors[keep])
        )
        self.raf.mark_deleted(pointer)

    def insert(self, obj, object_id: int | None = None) -> int:
        """Append the vector to the last page (new page when full)."""
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        vec = self.mapping.map_object(obj)
        target = self._vector_pages[-1] if self._vector_pages else None
        if target is not None:
            block_ids, vectors = self.pager.read(target)
            if len(block_ids) < self._per_page:
                self.pager.write(
                    target,
                    (
                        block_ids + [int(object_id)],
                        np.concatenate([vectors, vec.reshape(1, -1)])
                        if len(block_ids)
                        else vec.reshape(1, -1),
                    ),
                )
                self._vector_page_of[int(object_id)] = target
                self._pointers[int(object_id)] = self.raf.append((int(object_id), obj))
                return int(object_id)
        page = self.pager.allocate()
        self.pager.write(page, ([int(object_id)], vec.reshape(1, -1)))
        self._vector_pages.append(page)
        self._vector_page_of[int(object_id)] = page
        self._pointers[int(object_id)] = self.raf.append((int(object_id), obj))
        return int(object_id)


class OmniBPlusTree(_OmniBase):
    """One B+-tree per pivot over the single-coordinate projections."""

    name = "OmniB+"

    def __init__(self, space, mapping, pager, trees):
        super().__init__(space, mapping, pager)
        self.trees = trees

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        pivot_ids,
        pager: Pager | None = None,
        page_size: int = 4096,
    ) -> "OmniBPlusTree":
        mapping = PivotMapping(space, pivot_ids)
        if pager is None:
            pager = Pager(page_size=page_size, counters=space.counters)
        trees = []
        n = mapping.n_objects
        for j in range(mapping.n_pivots):
            tree = BPlusTree(pager)
            items = sorted(
                (float(mapping.matrix[i, j]), i) for i in range(n)
            )
            tree.bulk_load(items)
            trees.append(tree)
        index = cls(space, mapping, pager, trees)
        index._store_objects(range(n))
        return index

    def range_query(self, query_obj, radius: float) -> list[int]:
        query_pivot_dists = self.mapping.map_query(query_obj)
        candidates: set[int] | None = None
        for j, tree in enumerate(self.trees):
            low = float(query_pivot_dists[j]) - radius
            high = float(query_pivot_dists[j]) + radius
            ids = {object_id for _, object_id in tree.range_scan(low, high)}
            candidates = ids if candidates is None else candidates & ids
            if not candidates:
                return []
        results = []
        for object_id in candidates:
            if object_id in self._pointers and self._verify(query_obj, object_id) <= radius:
                results.append(object_id)
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        """Expanding-radius kNN (the family paper's approach for B+-trees)."""
        query_pivot_dists = self.mapping.map_query(query_obj)
        live = len(self._pointers)
        if live == 0:
            return []
        k = min(k, live)
        radius = self._initial_radius()
        heap = KnnHeap(k)
        seen: set[int] = set()
        while True:
            candidates: set[int] | None = None
            for j, tree in enumerate(self.trees):
                low = float(query_pivot_dists[j]) - radius
                high = float(query_pivot_dists[j]) + radius
                ids = {object_id for _, object_id in tree.range_scan(low, high)}
                candidates = ids if candidates is None else candidates & ids
            for object_id in candidates or ():
                if object_id in seen or object_id not in self._pointers:
                    continue
                seen.add(object_id)
                heap.consider(object_id, self._verify(query_obj, object_id))
            if heap.is_full() and heap.radius <= radius:
                return heap.neighbors()
            if len(seen) >= live:
                return heap.neighbors()
            radius *= 2.0

    def _initial_radius(self) -> float:
        span = float(self.mapping.matrix.max() - self.mapping.matrix.min())
        return max(span / 64.0, 1e-9)

    def delete(self, object_id: int) -> None:
        pointer = self._pointers.pop(object_id, None)
        if pointer is None:
            raise KeyError(f"object {object_id} is not in the index")
        vec = self.mapping.vector(object_id)
        for j, tree in enumerate(self.trees):
            tree.delete(float(vec[j]), object_id)
        self.raf.mark_deleted(pointer)

    def insert(self, obj, object_id: int | None = None) -> int:
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        vec = self.mapping.map_object(obj)
        if int(object_id) >= self.mapping.n_objects:
            self.mapping.append(vec)
        for j, tree in enumerate(self.trees):
            tree.insert(float(vec[j]), int(object_id))
        self._pointers[int(object_id)] = self.raf.append((int(object_id), obj))
        return int(object_id)


class OmniRTree(_OmniBase):
    """R-tree over the mapped vectors: the Omni family's strongest member."""

    name = "OmniR-tree"

    def __init__(self, space, mapping, pager, rtree):
        super().__init__(space, mapping, pager)
        self.rtree = rtree

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        pivot_ids,
        pager: Pager | None = None,
        page_size: int = 4096,
    ) -> "OmniRTree":
        mapping = PivotMapping(space, pivot_ids)
        if pager is None:
            pager = Pager(page_size=page_size, counters=space.counters)
        rtree = RTree(pager, dims=mapping.n_pivots)
        rtree.bulk_load(mapping.matrix, list(range(mapping.n_objects)))
        index = cls(space, mapping, pager, rtree)
        # store the RAF in R-tree leaf order so that objects verified
        # together share pages (the bulk-loaded clustered layout)
        if mapping.n_objects:
            leaf_order = [
                payload
                for _, payload in rtree.search_rect(
                    Rect(mapping.matrix.min(axis=0), mapping.matrix.max(axis=0))
                )
            ]
            seen = set(leaf_order)
            leaf_order.extend(i for i in range(mapping.n_objects) if i not in seen)
            index._store_objects(leaf_order)
        return index

    def range_query(self, query_obj, radius: float) -> list[int]:
        """MRQ: R-tree window query on SR(q), then verify via RAF."""
        query_pivot_dists = self.mapping.map_query(query_obj)
        window = Rect(query_pivot_dists - radius, query_pivot_dists + radius)
        results = []
        for _, object_id in self.rtree.search_rect(window):
            if object_id in self._pointers and self._verify(query_obj, object_id) <= radius:
                results.append(object_id)
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        """MkNNQ: best-first on the L-infinity mindist lower bound."""
        query_pivot_dists = self.mapping.map_query(query_obj)
        heap = KnnHeap(k)
        for bound, _, object_id in self.rtree.nearest_linf(query_pivot_dists):
            if bound > heap.radius:
                break
            if object_id not in self._pointers:
                continue
            heap.consider(object_id, self._verify(query_obj, object_id))
        return heap.neighbors()

    def delete(self, object_id: int) -> None:
        pointer = self._pointers.pop(object_id, None)
        if pointer is None:
            raise KeyError(f"object {object_id} is not in the index")
        self.rtree.delete(self.mapping.vector(object_id), object_id)
        self.raf.mark_deleted(pointer)

    def insert(self, obj, object_id: int | None = None) -> int:
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        vec = self.mapping.map_object(obj)
        if int(object_id) >= self.mapping.n_objects:
            self.mapping.append(vec)
        self.rtree.insert(vec, int(object_id))
        self._pointers[int(object_id)] = self.raf.append((int(object_id), obj))
        return int(object_id)
