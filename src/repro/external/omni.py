"""The Omni-family (Traina Jr. et al., VLDB J. 2007).

All members share the same skeleton (Section 5.2 / Figure 11): a pivot
("foci") table, the mapped vectors I(o), and a **random access file** (RAF)
keeping the real objects *outside* the index so the object size does not
dictate the node layout.  They differ in how the mapped vectors are indexed:

* :class:`OmniSequentialFile` -- vectors in a flat paged file, scanned
  entirely ("LAESA stored on disk", as the paper puts it);
* :class:`OmniBPlusTree` -- one B+-tree per pivot over d(o, p_i); candidate
  id sets from per-pivot ranges are intersected;
* :class:`OmniRTree` -- a single R-tree over the l-dimensional mapped
  vectors, the family's best performer in the paper's experiments.

Queries verify candidates by fetching the object from the RAF (a counted
page access) and computing the true distance.

Batch queries (``range_query_many`` / ``knn_query_many``) share one q x l
query-pivot matrix, evaluate Lemma 1 as 2-D masks per vector page / key
run / R-tree node, and fetch RAF candidates grouped by page -- see
:mod:`repro.external.batch` for the common recipe.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from ..btree.bptree import BPlusTree
from ..core.index import MetricIndex
from ..core.mapping import PivotMapping
from ..core.metric_space import MetricSpace
from ..core.pivot_filter import (
    lower_bound_many,
    lower_bound_many_queries,
    mbb_min_dist_many_queries,
    mbb_prune_mask_many_queries,
)
from ..core.queries import KnnHeap, Neighbor, best_first_knn
from ..core.staged import score_pivot_order
from ..rtree.geometry import Rect
from ..rtree.rtree import RTree
from ..storage.pager import Pager
from ..storage.raf import RandomAccessFile, RecordPointer
from .batch import drain_record_chunks, merge_intervals

__all__ = ["OmniSequentialFile", "OmniBPlusTree", "OmniRTree"]


class _OmniBase(MetricIndex):
    """Shared RAF handling for the Omni family."""

    is_disk_based = True

    def __init__(self, space: MetricSpace, mapping: PivotMapping, pager: Pager):
        super().__init__(space)
        self.mapping = mapping
        self.pager = pager
        self.raf = RandomAccessFile(pager)
        self._pointers: dict[int, RecordPointer] = {}
        # pruning-power pivot order for the staged MBB prune mask (scored
        # from the stored table: zero distance computations)
        self.pivot_order = score_pivot_order(mapping.matrix)
        l = mapping.n_pivots
        self.mbb_prefix = max(1, min(l - 1, (l + 3) // 4)) if l > 1 else 0

    def _store_objects(self, order) -> None:
        for object_id in order:
            self._pointers[object_id] = self.raf.append(
                (object_id, self.space.dataset[object_id])
            )

    def _fetch(self, object_id: int):
        """Read one object from the RAF (page access on cache miss)."""
        _, obj = self.raf.read(self._pointers[object_id])
        return obj

    def _verify(self, query_obj, object_id: int) -> float:
        return self.space.d(query_obj, self._fetch(object_id))

    def _verify_range_grouped(self, queries, radius, ids_per_query) -> list[list[int]]:
        """Batch MRQ verification with page-grouped RAF fetches.

        Every distinct candidate of the batch is fetched once (chunked,
        page-ordered), each query then verifies its own candidates with one
        vectorised distance call per chunk -- identical counted
        computations to the sequential per-candidate loop, far fewer page
        accesses.  Returns unsorted per-query id lists.
        """
        results: list[list[int]] = [[] for _ in queries]
        pending = [
            [i for i in ids if i in self._pointers] for ids in ids_per_query
        ]

        def handle(qi, ids, records):
            dists = self.space.d_many(queries[qi], [records[i][1] for i in ids])
            results[qi].extend(o for o, d in zip(ids, dists) if d <= radius)

        drain_record_chunks(self.raf, self._pointers, pending, handle)
        return results

    def _batch_knn_verifier(self, cache, query_obj):
        """Per-query ``verify_many`` over a shared batch-scoped page cache."""

        def verify(ids):
            objs = [
                self.raf.read_cached(cache, self._pointers[i])[1] for i in ids
            ]
            return self.space.d_many(query_obj, objs)

        return verify

    def storage_bytes(self) -> dict[str, int]:
        return {
            "memory": 8 * self.mapping.n_pivots,
            "disk": self.pager.disk_bytes(),
        }


class OmniSequentialFile(_OmniBase):
    """Mapped vectors in a flat paged file, scanned in full per query."""

    name = "Omni-seq"

    def __init__(self, space, mapping, pager, per_page, vector_pages):
        super().__init__(space, mapping, pager)
        self._per_page = per_page
        self._vector_pages = vector_pages
        self._vector_page_of: dict[int, int] = {}

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        pivot_ids,
        pager: Pager | None = None,
        page_size: int = 4096,
    ) -> "OmniSequentialFile":
        mapping = PivotMapping(space, pivot_ids)
        if pager is None:
            pager = Pager(page_size=page_size, counters=space.counters)
        # vectors go to their own sequence of pages, read linearly on query
        per_page = max(1, (page_size - 64) // (8 * mapping.n_pivots + 12))
        vector_pages: list[int] = []
        n = mapping.n_objects
        index = cls(space, mapping, pager, per_page, vector_pages)
        for start in range(0, n, per_page):
            page = pager.allocate()
            block_ids = list(range(start, min(start + per_page, n)))
            pager.write(page, (block_ids, mapping.matrix[block_ids]))
            vector_pages.append(page)
            for object_id in block_ids:
                index._vector_page_of[object_id] = page
        index._store_objects(range(n))
        return index

    def _scan_candidates(self, query_pivot_dists, radius: float):
        """Read every vector page, yielding Lemma 1 survivors."""
        for page in self._vector_pages:
            block_ids, vectors = self.pager.read(page)
            if len(block_ids) == 0:
                continue
            lower = lower_bound_many(query_pivot_dists, vectors)
            for i in np.flatnonzero(lower <= radius):
                yield block_ids[i], lower[i]

    def range_query(self, query_obj, radius: float) -> list[int]:
        query_pivot_dists = self.mapping.map_query(query_obj)
        results = []
        for object_id, _ in self._scan_candidates(query_pivot_dists, radius):
            if object_id in self._pointers and self._verify(query_obj, object_id) <= radius:
                results.append(object_id)
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        query_pivot_dists = self.mapping.map_query(query_obj)
        heap = KnnHeap(k)
        for object_id, lower in self._scan_candidates(query_pivot_dists, float("inf")):
            if lower > heap.radius or object_id not in self._pointers:
                continue
            heap.consider(object_id, self._verify(query_obj, object_id))
        return heap.neighbors()

    # -- batch queries --------------------------------------------------------

    def _scan_bounds_many(self, qmat: np.ndarray):
        """One pass over the vector pages for the whole batch.

        Each page is read once (the sequential loop reads every page once
        *per query*) and contributes a ``q x b`` Lemma 1 bound block.
        Returns ``(ids, q x n lower bounds)`` in storage order.
        """
        ids: list[int] = []
        blocks: list[np.ndarray] = []
        for page in self._vector_pages:
            block_ids, vectors = self.pager.read(page)
            if len(block_ids) == 0:
                continue
            ids.extend(block_ids)
            blocks.append(lower_bound_many_queries(qmat, vectors))
        if not ids:
            return [], np.empty((qmat.shape[0], 0), dtype=np.float64)
        return ids, np.concatenate(blocks, axis=1)

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        """Batch MRQ: one scan of the vector file, grouped RAF verification."""
        queries = list(queries)
        if not queries:
            return []
        qmat = self.mapping.map_query_many(queries)
        ids, lower = self._scan_bounds_many(qmat)
        survivors = lower <= radius
        ids_arr = np.asarray(ids, dtype=np.intp)
        candidates = [
            [int(i) for i in ids_arr[survivors[qi]]] for qi in range(len(queries))
        ]
        results = self._verify_range_grouped(queries, radius, candidates)
        return [sorted(r) for r in results]

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        """Batch MkNNQ: shared bound matrix, best-first verification, one
        RAF page read per touched page per batch."""
        queries = list(queries)
        if not queries:
            return []
        qmat = self.mapping.map_query_many(queries)
        ids, lower = self._scan_bounds_many(qmat)
        live = [j for j, oid in enumerate(ids) if oid in self._pointers]
        if not live:
            return [[] for _ in queries]
        row_ids = np.asarray([ids[j] for j in live], dtype=np.intp)
        lower = lower[:, live]
        cache = self.pager.batch_reader()
        return [
            best_first_knn(
                lower[qi], row_ids, k, self._batch_knn_verifier(cache, q)
            )
            for qi, q in enumerate(queries)
        ]

    def delete(self, object_id: int) -> None:
        """Remove the vector row in place, tombstone the RAF record."""
        pointer = self._pointers.pop(object_id, None)
        if pointer is None:
            raise KeyError(f"object {object_id} is not in the file")
        page = self._vector_page_of.pop(object_id)
        block_ids, vectors = self.pager.read(page)
        keep = [i for i, bid in enumerate(block_ids) if bid != object_id]
        self.pager.write(
            page, ([block_ids[i] for i in keep], vectors[keep])
        )
        self.raf.mark_deleted(pointer)

    def insert(self, obj, object_id: int | None = None) -> int:
        """Append the vector to the last page (new page when full)."""
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        vec = self.mapping.map_object(obj)
        target = self._vector_pages[-1] if self._vector_pages else None
        if target is not None:
            block_ids, vectors = self.pager.read(target)
            if len(block_ids) < self._per_page:
                self.pager.write(
                    target,
                    (
                        block_ids + [int(object_id)],
                        np.concatenate([vectors, vec.reshape(1, -1)])
                        if len(block_ids)
                        else vec.reshape(1, -1),
                    ),
                )
                self._vector_page_of[int(object_id)] = target
                self._pointers[int(object_id)] = self.raf.append((int(object_id), obj))
                return int(object_id)
        page = self.pager.allocate()
        self.pager.write(page, ([int(object_id)], vec.reshape(1, -1)))
        self._vector_pages.append(page)
        self._vector_page_of[int(object_id)] = page
        self._pointers[int(object_id)] = self.raf.append((int(object_id), obj))
        return int(object_id)


class OmniBPlusTree(_OmniBase):
    """One B+-tree per pivot over the single-coordinate projections."""

    name = "OmniB+"

    def __init__(self, space, mapping, pager, trees):
        super().__init__(space, mapping, pager)
        self.trees = trees

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        pivot_ids,
        pager: Pager | None = None,
        page_size: int = 4096,
    ) -> "OmniBPlusTree":
        mapping = PivotMapping(space, pivot_ids)
        if pager is None:
            pager = Pager(page_size=page_size, counters=space.counters)
        trees = []
        n = mapping.n_objects
        for j in range(mapping.n_pivots):
            tree = BPlusTree(pager)
            items = sorted(
                (float(mapping.matrix[i, j]), i) for i in range(n)
            )
            tree.bulk_load(items)
            trees.append(tree)
        index = cls(space, mapping, pager, trees)
        index._store_objects(range(n))
        return index

    def range_query(self, query_obj, radius: float) -> list[int]:
        query_pivot_dists = self.mapping.map_query(query_obj)
        candidates: set[int] | None = None
        for j, tree in enumerate(self.trees):
            low = float(query_pivot_dists[j]) - radius
            high = float(query_pivot_dists[j]) + radius
            ids = {object_id for _, object_id in tree.range_scan(low, high)}
            candidates = ids if candidates is None else candidates & ids
            if not candidates:
                return []
        results = []
        for object_id in candidates:
            if object_id in self._pointers and self._verify(query_obj, object_id) <= radius:
                results.append(object_id)
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        """Expanding-radius kNN (the family paper's approach for B+-trees)."""
        query_pivot_dists = self.mapping.map_query(query_obj)
        live = len(self._pointers)
        if live == 0:
            return []
        k = min(k, live)
        radius = self._initial_radius()
        heap = KnnHeap(k)
        seen: set[int] = set()
        while True:
            candidates: set[int] | None = None
            for j, tree in enumerate(self.trees):
                low = float(query_pivot_dists[j]) - radius
                high = float(query_pivot_dists[j]) + radius
                ids = {object_id for _, object_id in tree.range_scan(low, high)}
                candidates = ids if candidates is None else candidates & ids
            for object_id in candidates or ():
                if object_id in seen or object_id not in self._pointers:
                    continue
                seen.add(object_id)
                heap.consider(object_id, self._verify(query_obj, object_id))
            if heap.is_full() and heap.radius <= radius:
                return heap.neighbors()
            if len(seen) >= live:
                return heap.neighbors()
            radius *= 2.0

    def _initial_radius(self) -> float:
        span = float(self.mapping.matrix.max() - self.mapping.matrix.min())
        return max(span / 64.0, 1e-9)

    # -- batch queries --------------------------------------------------------

    def _candidates_many(
        self, qmat: np.ndarray, radius: float, query_idx
    ) -> dict[int, set[int]]:
        """Per-query candidate id sets for a shared radius.

        For each pivot's B+-tree the queries' scan ranges are merged into
        disjoint key runs (:func:`~repro.external.batch.merge_intervals`),
        each run is scanned **once** for the whole batch, and every query
        selects its ids from the collected (key, id) pairs with the exact
        predicate the sequential scan applies -- so candidate sets (and
        hence verification compdists) match the sequential loop while each
        touched leaf page is read once per pivot per batch.
        """
        candidates: dict[int, set[int] | None] = {qi: None for qi in query_idx}
        for j, tree in enumerate(self.trees):
            alive = [qi for qi in query_idx if candidates[qi] is None or candidates[qi]]
            if not alive:
                break
            spans = {
                qi: (float(qmat[qi, j]) - radius, float(qmat[qi, j]) + radius)
                for qi in alive
            }
            keys: list[float] = []
            ids: list[int] = []
            for lo, hi in merge_intervals(spans.values()):
                for key, object_id in tree.range_scan(lo, hi):
                    keys.append(key)
                    ids.append(object_id)
            key_arr = np.asarray(keys, dtype=np.float64)
            id_arr = np.asarray(ids, dtype=np.intp)
            for qi in alive:
                lo, hi = spans[qi]
                sel = (key_arr >= lo) & (key_arr <= hi) if len(keys) else []
                found = {int(i) for i in id_arr[sel]} if len(keys) else set()
                prev = candidates[qi]
                candidates[qi] = found if prev is None else prev & found
        return {qi: (s or set()) for qi, s in candidates.items()}

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        """Batch MRQ: merged per-pivot key runs + grouped RAF verification."""
        queries = list(queries)
        if not queries:
            return []
        qmat = self.mapping.map_query_many(queries)
        candidates = self._candidates_many(qmat, radius, range(len(queries)))
        results = self._verify_range_grouped(
            queries, radius, [sorted(candidates[qi]) for qi in range(len(queries))]
        )
        return [sorted(r) for r in results]

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        """Batch MkNNQ: the expanding-radius rounds run batch-wide.

        Every query starts from the same initial radius and doubles in
        lockstep (the sequential schedule), so each round's surviving
        queries share one merged-key-run scan per pivot; new candidates are
        verified through a batch-scoped RAF page cache, so however many
        rounds and queries touch a record page, it is read once per batch.
        """
        queries = list(queries)
        if not queries:
            return []
        live = len(self._pointers)
        if live == 0:
            return [[] for _ in queries]
        kk = min(k, live)
        qmat = self.mapping.map_query_many(queries)
        heaps = [KnnHeap(kk) for _ in queries]
        seen: list[set[int]] = [set() for _ in queries]
        cache = self.pager.batch_reader()
        radius = self._initial_radius()
        active = list(range(len(queries)))
        while active:
            candidates = self._candidates_many(qmat, radius, active)
            for qi in active:
                fresh = [
                    i
                    for i in candidates[qi]
                    if i not in seen[qi] and i in self._pointers
                ]
                if not fresh:
                    continue
                seen[qi].update(fresh)
                fresh.sort(
                    key=lambda i: (
                        self._pointers[i].page_id,
                        self._pointers[i].slot,
                    )
                )
                objs = [
                    self.raf.read_cached(cache, self._pointers[i])[1]
                    for i in fresh
                ]
                dists = self.space.d_many(queries[qi], objs)
                for object_id, d in zip(fresh, dists):
                    heaps[qi].consider(object_id, float(d))
            active = [
                qi
                for qi in active
                if not (heaps[qi].is_full() and heaps[qi].radius <= radius)
                and len(seen[qi]) < live
            ]
            radius *= 2.0
        return [heap.neighbors() for heap in heaps]

    def delete(self, object_id: int) -> None:
        pointer = self._pointers.pop(object_id, None)
        if pointer is None:
            raise KeyError(f"object {object_id} is not in the index")
        vec = self.mapping.vector(object_id)
        for j, tree in enumerate(self.trees):
            tree.delete(float(vec[j]), object_id)
        self.raf.mark_deleted(pointer)

    def insert(self, obj, object_id: int | None = None) -> int:
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        vec = self.mapping.map_object(obj)
        if int(object_id) >= self.mapping.n_objects:
            self.mapping.append(vec)
        for j, tree in enumerate(self.trees):
            tree.insert(float(vec[j]), int(object_id))
        self._pointers[int(object_id)] = self.raf.append((int(object_id), obj))
        return int(object_id)


class OmniRTree(_OmniBase):
    """R-tree over the mapped vectors: the Omni family's strongest member."""

    name = "OmniR-tree"

    def __init__(self, space, mapping, pager, rtree):
        super().__init__(space, mapping, pager)
        self.rtree = rtree

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        pivot_ids,
        pager: Pager | None = None,
        page_size: int = 4096,
    ) -> "OmniRTree":
        mapping = PivotMapping(space, pivot_ids)
        if pager is None:
            pager = Pager(page_size=page_size, counters=space.counters)
        rtree = RTree(pager, dims=mapping.n_pivots)
        rtree.bulk_load(mapping.matrix, list(range(mapping.n_objects)))
        index = cls(space, mapping, pager, rtree)
        # store the RAF in R-tree leaf order so that objects verified
        # together share pages (the bulk-loaded clustered layout)
        if mapping.n_objects:
            leaf_order = [
                payload
                for _, payload in rtree.search_rect(
                    Rect(mapping.matrix.min(axis=0), mapping.matrix.max(axis=0))
                )
            ]
            seen = set(leaf_order)
            leaf_order.extend(i for i in range(mapping.n_objects) if i not in seen)
            index._store_objects(leaf_order)
        return index

    def range_query(self, query_obj, radius: float) -> list[int]:
        """MRQ: R-tree window query on SR(q), then verify via RAF."""
        query_pivot_dists = self.mapping.map_query(query_obj)
        window = Rect(query_pivot_dists - radius, query_pivot_dists + radius)
        results = []
        for _, object_id in self.rtree.search_rect(window):
            if object_id in self._pointers and self._verify(query_obj, object_id) <= radius:
                results.append(object_id)
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        """MkNNQ: best-first on the L-infinity mindist lower bound."""
        query_pivot_dists = self.mapping.map_query(query_obj)
        heap = KnnHeap(k)
        for bound, _, object_id in self.rtree.nearest_linf(query_pivot_dists):
            if bound > heap.radius:
                break
            if object_id not in self._pointers:
                continue
            heap.consider(object_id, self._verify(query_obj, object_id))
        return heap.neighbors()

    # -- batch queries --------------------------------------------------------

    @staticmethod
    def _child_rect_arrays(node) -> tuple[np.ndarray, np.ndarray]:
        lows = np.asarray([rect.lows for rect in node.rects], dtype=np.float64)
        highs = np.asarray([rect.highs for rect in node.rects], dtype=np.float64)
        return lows, highs

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        """Batch MRQ: one shared R-tree descent with active query subsets.

        A window SR(q) intersects a node MBB exactly when the L-infinity
        mindist is within the radius, so the 2-D
        :func:`~repro.core.pivot_filter.mbb_min_dist_many_queries` bound
        over (active queries x children) replaces one window test per
        query per node; every touched node page is read once per batch.
        """
        queries = list(queries)
        if not queries:
            return []
        qmat = self.mapping.map_query_many(queries)
        candidates: list[list[int]] = [[] for _ in queries]
        stack = [(self.rtree.root_page, np.arange(len(queries), dtype=np.intp))]
        while stack:
            page_id, active = stack.pop()
            node = self.rtree.pager.read(page_id)
            if node.is_leaf:
                if not node.points:
                    continue
                lower = lower_bound_many_queries(
                    qmat[active], np.asarray(node.points)
                )
                keep = lower <= radius
                for ai, qi in enumerate(active):
                    candidates[qi].extend(
                        node.payloads[j] for j in np.flatnonzero(keep[ai])
                    )
            else:
                if not node.children:
                    continue
                lows, highs = self._child_rect_arrays(node)
                prune = mbb_prune_mask_many_queries(
                    qmat[active],
                    lows,
                    highs,
                    radius,
                    order=self.pivot_order,
                    prefix=self.mbb_prefix,
                    counters=self.space.counters,
                )
                for j, child in enumerate(node.children):
                    keep = ~prune[:, j]
                    if keep.any():
                        stack.append((child, active[keep]))
        results = self._verify_range_grouped(queries, radius, candidates)
        return [sorted(r) for r in results]

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        """Batch MkNNQ: shared best-first frontier, per-query heaps.

        Frontier entries carry the active queries still alive at a node
        with their accumulated L-infinity bounds; the shared priority is
        the smallest of them (the batch analogue of the sequential
        best-first walk, exactly as the tree engine argues).  Leaf points
        are re-queued per (query, point) just like the sequential
        ``nearest_linf`` consumer, but RAF pages are read through a
        batch-scoped cache -- at most once per batch.
        """
        queries = list(queries)
        if not queries:
            return []
        qmat = self.mapping.map_query_many(queries)
        heaps = [KnnHeap(k) for _ in queries]
        counter = itertools.count()
        cache = self.pager.batch_reader()
        every = np.arange(len(queries), dtype=np.intp)
        pq: list[tuple] = [
            (0.0, next(counter), 0, self.rtree.root_page, every, np.zeros(len(queries)))
        ]
        while pq:
            priority, _, kind, payload, active, bounds = heapq.heappop(pq)
            if priority > max(heap.radius for heap in heaps):
                break
            if kind == 1:
                qi, object_id = payload
                if priority > heaps[qi].radius or object_id not in self._pointers:
                    continue
                obj = self.raf.read_cached(cache, self._pointers[object_id])[1]
                heaps[qi].consider(object_id, self.space.d(queries[qi], obj))
                continue
            radii = np.asarray([heaps[qi].radius for qi in active])
            alive = bounds <= radii
            if not alive.any():
                continue
            active, bounds = active[alive], bounds[alive]
            node = self.rtree.pager.read(payload)
            if node.is_leaf:
                if not node.points:
                    continue
                lower = np.maximum(
                    bounds[:, None],
                    lower_bound_many_queries(qmat[active], np.asarray(node.points)),
                )
                for ai, qi in enumerate(active):
                    r = heaps[qi].radius
                    for j in np.flatnonzero(lower[ai] <= r):
                        heapq.heappush(
                            pq,
                            (
                                float(lower[ai, j]),
                                next(counter),
                                1,
                                (int(qi), node.payloads[j]),
                                None,
                                None,
                            ),
                        )
            else:
                if not node.children:
                    continue
                lows, highs = self._child_rect_arrays(node)
                child_bounds = np.maximum(
                    bounds[:, None], mbb_min_dist_many_queries(qmat[active], lows, highs)
                )
                radii = np.asarray([heaps[qi].radius for qi in active])
                for j, child in enumerate(node.children):
                    cb = child_bounds[:, j]
                    keep = cb <= radii
                    if keep.any():
                        kept = cb[keep]
                        heapq.heappush(
                            pq,
                            (
                                float(kept.min()),
                                next(counter),
                                0,
                                child,
                                active[keep],
                                kept,
                            ),
                        )
        return [heap.neighbors() for heap in heaps]

    def delete(self, object_id: int) -> None:
        pointer = self._pointers.pop(object_id, None)
        if pointer is None:
            raise KeyError(f"object {object_id} is not in the index")
        self.rtree.delete(self.mapping.vector(object_id), object_id)
        self.raf.mark_deleted(pointer)

    def insert(self, obj, object_id: int | None = None) -> int:
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        vec = self.mapping.map_object(obj)
        if int(object_id) >= self.mapping.n_objects:
            self.mapping.append(vec)
        self.rtree.insert(vec, int(object_id))
        self._pointers[int(object_id)] = self.raf.append((int(object_id), obj))
        return int(object_id)
