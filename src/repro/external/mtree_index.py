"""The plain M-tree as a compact-partitioning baseline index.

The paper's other future-work direction (Section 7): "comparisons between
pivot-based metric indexes and compact partitioning metric indexes are an
interesting research direction."  The M-tree is the canonical compact
partitioning method (the paper cites it through ELKI in the introduction),
and this repo already implements it as the CPT/PM-tree substrate -- this
thin adapter exposes it through the common :class:`MetricIndex` interface so
the benchmark harness can run the comparison.

Unlike every pivot-based index here, the M-tree uses **no global pivots**:
pruning comes solely from covering radii and parent distances.  The
``bench_extension_compact.py`` bench quantifies the paper's expectation that
pivot-based methods win on distance computations [2].
"""

from __future__ import annotations

from ..core.index import MetricIndex
from ..core.metric_space import MetricSpace
from ..core.queries import Neighbor
from ..mtree.mtree import MTree
from ..storage.pager import Pager

__all__ = ["MTreeIndex"]


class MTreeIndex(MetricIndex):
    """Compact-partitioning baseline: a paged M-tree, nothing else."""

    name = "M-tree"
    is_disk_based = True

    def __init__(self, space: MetricSpace, mtree: MTree):
        super().__init__(space)
        self.mtree = mtree

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        pager: Pager | None = None,
        page_size: int = 4096,
        seed: int = 0,
    ) -> "MTreeIndex":
        if pager is None:
            pager = Pager(page_size=page_size, counters=space.counters)
        mtree = MTree(space, pager, seed=seed)
        for object_id in range(len(space)):
            mtree.insert(object_id, space.dataset[object_id])
        return cls(space, mtree)

    def range_query(self, query_obj, radius: float) -> list[int]:
        return sorted(self.mtree.range_query(query_obj, radius))

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        return self.mtree.knn_query(query_obj, k)

    def insert(self, obj, object_id: int | None = None) -> int:
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        self.mtree.insert(int(object_id), obj)
        return int(object_id)

    def delete(self, object_id: int) -> None:
        if not self.mtree.delete(object_id):
            raise KeyError(f"object {object_id} is not in the tree")

    def storage_bytes(self) -> dict[str, int]:
        return {"memory": 0, "disk": self.mtree.pager.disk_bytes()}
