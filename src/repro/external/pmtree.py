"""PM-tree: the Pivoting M-tree (Skopal, Pokorny, Snasel 2004).

An M-tree whose entries carry pivot information (Section 5.1 / Figure 10):

* every **leaf entry** stores the mapped vector I(o) together with the
  object (so Lemma 1 can prune before any distance computation), and
* every **routing entry** stores the MBB of the mapped vectors below it
  (the original paper's "hyper-ring" cut-regions, kept here as general
  boxes), enabling Lemma 1 on whole subtrees on top of the M-tree's
  Lemma 2 ball pruning.

Objects live inside the tree nodes -- the paper's explanation for the
PM-tree's large pages/storage on high-dimensional data (it gets the 40 KB
page configuration on Color/Synthetic, like CPT).
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from ..core.index import MetricIndex
from ..core.mapping import PivotMapping
from ..core.metric_space import MetricSpace
from ..core.pivot_filter import lower_bound, mbb_min_dist
from ..core.queries import KnnHeap, Neighbor
from ..mtree.mtree import MLeafEntry, MTree
from ..storage.pager import Pager

__all__ = ["PMTree"]


class PMTree(MetricIndex):
    """M-tree + pivot mapping (ball pruning *and* box pruning)."""

    name = "PM-tree"
    is_disk_based = True

    def __init__(self, space: MetricSpace, mapping: PivotMapping, mtree: MTree):
        super().__init__(space)
        self.mapping = mapping
        self.mtree = mtree

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        pivot_ids,
        pager: Pager | None = None,
        page_size: int = 40960,
        seed: int = 0,
    ) -> "PMTree":
        mapping = PivotMapping(space, pivot_ids)
        if pager is None:
            pager = Pager(page_size=page_size, counters=space.counters)
        mtree = MTree(space, pager, track_vectors=True, seed=seed)
        for object_id in range(len(space)):
            mtree.insert(object_id, space.dataset[object_id], vec=mapping.vector(object_id))
        return cls(space, mapping, mtree)

    # -- queries ------------------------------------------------------------

    def range_query(self, query_obj, radius: float) -> list[int]:
        """MRQ: depth-first with Lemmas 1 and 2 (paper Section 5.1)."""
        query_pivot_dists = self.mapping.map_query(query_obj)
        results: list[int] = []
        stack: list[tuple[int, float | None]] = [(self.mtree.root_page, None)]
        while stack:
            page_id, d_parent = stack.pop()
            node = self.mtree.read_node(page_id)
            if node.is_leaf:
                for e in node.entries:
                    if d_parent is not None and abs(d_parent - e.parent_dist) > radius:
                        continue
                    if e.vec is not None and lower_bound(query_pivot_dists, e.vec) > radius:
                        continue  # Lemma 1 on the stored I(o): no computation
                    d = self.space.d(query_obj, e.obj)
                    if d <= radius:
                        results.append(e.object_id)
            else:
                for e in node.entries:
                    if (
                        d_parent is not None
                        and abs(d_parent - e.parent_dist) > radius + e.radius
                    ):
                        continue
                    if (
                        e.mbb_lows is not None
                        and mbb_min_dist(query_pivot_dists, e.mbb_lows, e.mbb_highs)
                        > radius
                    ):
                        continue  # Lemma 1 on the subtree MBB
                    d = self.space.d(query_obj, e.obj)
                    if d <= radius + e.radius:  # Lemma 2
                        stack.append((e.child_page, d))
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        """MkNNQ: best-first by the max of ball and box lower bounds."""
        query_pivot_dists = self.mapping.map_query(query_obj)
        heap = KnnHeap(k)
        counter = itertools.count()
        pq: list[tuple[float, int, int, float | None]] = [
            (0.0, next(counter), self.mtree.root_page, None)
        ]
        while pq:
            bound, _, page_id, d_parent = heapq.heappop(pq)
            if bound > heap.radius:
                break
            node = self.mtree.read_node(page_id)
            if node.is_leaf:
                for e in node.entries:
                    r = heap.radius
                    if d_parent is not None and abs(d_parent - e.parent_dist) > r:
                        continue
                    if e.vec is not None and lower_bound(query_pivot_dists, e.vec) > r:
                        continue
                    heap.consider(e.object_id, self.space.d(query_obj, e.obj))
            else:
                for e in node.entries:
                    r = heap.radius
                    if (
                        d_parent is not None
                        and abs(d_parent - e.parent_dist) > r + e.radius
                    ):
                        continue
                    box_bound = (
                        mbb_min_dist(query_pivot_dists, e.mbb_lows, e.mbb_highs)
                        if e.mbb_lows is not None
                        else 0.0
                    )
                    if box_bound > r:
                        continue
                    d = self.space.d(query_obj, e.obj)
                    ball_bound = max(0.0, d - e.radius)
                    child_bound = max(ball_bound, box_bound)
                    if child_bound <= heap.radius:
                        heapq.heappush(
                            pq, (child_bound, next(counter), e.child_page, d)
                        )
        return heap.neighbors()

    # -- maintenance -------------------------------------------------------------

    def insert(self, obj, object_id: int | None = None) -> int:
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        vec = self.mapping.map_object(obj)
        self.mtree.insert(int(object_id), obj, vec=vec)
        return int(object_id)

    def delete(self, object_id: int) -> None:
        if not self.mtree.delete(object_id):
            raise KeyError(f"object {object_id} is not in the tree")

    # -- accounting -----------------------------------------------------------------

    def storage_bytes(self) -> dict[str, int]:
        return {
            "memory": 8 * self.mapping.n_pivots,
            "disk": self.mtree.pager.disk_bytes(),
        }
