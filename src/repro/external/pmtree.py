"""PM-tree: the Pivoting M-tree (Skopal, Pokorny, Snasel 2004).

An M-tree whose entries carry pivot information (Section 5.1 / Figure 10):

* every **leaf entry** stores the mapped vector I(o) together with the
  object (so Lemma 1 can prune before any distance computation), and
* every **routing entry** stores the MBB of the mapped vectors below it
  (the original paper's "hyper-ring" cut-regions, kept here as general
  boxes), enabling Lemma 1 on whole subtrees on top of the M-tree's
  Lemma 2 ball pruning.

Objects live inside the tree nodes -- the paper's explanation for the
PM-tree's large pages/storage on high-dimensional data (it gets the 40 KB
page configuration on Color/Synthetic, like CPT).
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from ..core.index import MetricIndex
from ..core.mapping import PivotMapping
from ..core.metric_space import MetricSpace
from ..core.pivot_filter import lower_bound, mbb_min_dist, mbb_min_dist_many_queries
from ..core.queries import KnnHeap, Neighbor
from ..mtree.mtree import MLeafEntry, MTree
from ..storage.pager import Pager
from .batch import query_selector

__all__ = ["PMTree"]


class PMTree(MetricIndex):
    """M-tree + pivot mapping (ball pruning *and* box pruning)."""

    name = "PM-tree"
    is_disk_based = True

    def __init__(self, space: MetricSpace, mapping: PivotMapping, mtree: MTree):
        super().__init__(space)
        self.mapping = mapping
        self.mtree = mtree

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        pivot_ids,
        pager: Pager | None = None,
        page_size: int = 40960,
        seed: int = 0,
    ) -> "PMTree":
        mapping = PivotMapping(space, pivot_ids)
        if pager is None:
            pager = Pager(page_size=page_size, counters=space.counters)
        mtree = MTree(space, pager, track_vectors=True, seed=seed)
        for object_id in range(len(space)):
            mtree.insert(object_id, space.dataset[object_id], vec=mapping.vector(object_id))
        return cls(space, mapping, mtree)

    # -- queries ------------------------------------------------------------

    def range_query(self, query_obj, radius: float) -> list[int]:
        """MRQ: depth-first with Lemmas 1 and 2 (paper Section 5.1)."""
        query_pivot_dists = self.mapping.map_query(query_obj)
        results: list[int] = []
        stack: list[tuple[int, float | None]] = [(self.mtree.root_page, None)]
        while stack:
            page_id, d_parent = stack.pop()
            node = self.mtree.read_node(page_id)
            if node.is_leaf:
                for e in node.entries:
                    if d_parent is not None and abs(d_parent - e.parent_dist) > radius:
                        continue
                    if e.vec is not None and lower_bound(query_pivot_dists, e.vec) > radius:
                        continue  # Lemma 1 on the stored I(o): no computation
                    d = self.space.d(query_obj, e.obj)
                    if d <= radius:
                        results.append(e.object_id)
            else:
                for e in node.entries:
                    if (
                        d_parent is not None
                        and abs(d_parent - e.parent_dist) > radius + e.radius
                    ):
                        continue
                    if (
                        e.mbb_lows is not None
                        and mbb_min_dist(query_pivot_dists, e.mbb_lows, e.mbb_highs)
                        > radius
                    ):
                        continue  # Lemma 1 on the subtree MBB
                    d = self.space.d(query_obj, e.obj)
                    if d <= radius + e.radius:  # Lemma 2
                        stack.append((e.child_page, d))
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        """MkNNQ: best-first by the max of ball and box lower bounds."""
        query_pivot_dists = self.mapping.map_query(query_obj)
        heap = KnnHeap(k)
        counter = itertools.count()
        pq: list[tuple[float, int, int, float | None]] = [
            (0.0, next(counter), self.mtree.root_page, None)
        ]
        while pq:
            bound, _, page_id, d_parent = heapq.heappop(pq)
            if bound > heap.radius:
                break
            node = self.mtree.read_node(page_id)
            if node.is_leaf:
                for e in node.entries:
                    r = heap.radius
                    if d_parent is not None and abs(d_parent - e.parent_dist) > r:
                        continue
                    if e.vec is not None and lower_bound(query_pivot_dists, e.vec) > r:
                        continue
                    heap.consider(e.object_id, self.space.d(query_obj, e.obj))
            else:
                for e in node.entries:
                    r = heap.radius
                    if (
                        d_parent is not None
                        and abs(d_parent - e.parent_dist) > r + e.radius
                    ):
                        continue
                    box_bound = (
                        mbb_min_dist(query_pivot_dists, e.mbb_lows, e.mbb_highs)
                        if e.mbb_lows is not None
                        else 0.0
                    )
                    if box_bound > r:
                        continue
                    d = self.space.d(query_obj, e.obj)
                    ball_bound = max(0.0, d - e.radius)
                    child_bound = max(ball_bound, box_bound)
                    if child_bound <= heap.radius:
                        heapq.heappush(
                            pq, (child_bound, next(counter), e.child_page, d)
                        )
        return heap.neighbors()

    # -- batch queries -----------------------------------------------------------

    @staticmethod
    def _entry_box_bounds(entry, qblock: np.ndarray) -> np.ndarray:
        """Lemma 1 MBB lower bounds of one routing entry for many queries."""
        return mbb_min_dist_many_queries(qblock, entry.mbb_lows, entry.mbb_highs)[:, 0]

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        """Batch MRQ: one depth-first descent with active query subsets.

        A frontier entry carries the queries that reached the node and
        their distances to the parent routing object, so the parent-
        distance prefilter, the MBB box filter, and the leaf-level Lemma 1
        all run as vectorized masks over the active subset; each routing /
        leaf object's distance is computed with one counted ``pairwise``
        call over exactly the queries whose sequential traversal would
        compute it -- and each node page is read once per batch.
        """
        queries = list(queries)
        if not queries:
            return []
        qmat = self.mapping.map_query_many(queries)
        take = query_selector(self.space.dataset, queries)
        results: list[list[int]] = [[] for _ in queries]
        every = np.arange(len(queries), dtype=np.intp)
        # stack items: (page, active query ids, per-active d(q, parent) or None)
        stack: list[tuple[int, np.ndarray, np.ndarray | None]] = [
            (self.mtree.root_page, every, None)
        ]
        while stack:
            page_id, active, d_parent = stack.pop()
            node = self.mtree.read_node(page_id)
            if node.is_leaf:
                for e in node.entries:
                    mask = np.ones(active.size, dtype=bool)
                    if d_parent is not None:
                        mask &= np.abs(d_parent - e.parent_dist) <= radius
                    if e.vec is not None and mask.any():
                        lb = np.abs(qmat[active[mask]] - e.vec).max(axis=1)
                        idx = np.flatnonzero(mask)
                        mask[idx[lb > radius]] = False
                    sub = active[mask]
                    if sub.size:
                        dists = self.space.pairwise_objects(take(sub), [e.obj])[:, 0]
                        for qi, d in zip(sub, dists):
                            if d <= radius:
                                results[qi].append(e.object_id)
            else:
                for e in node.entries:
                    mask = np.ones(active.size, dtype=bool)
                    if d_parent is not None:
                        mask &= np.abs(d_parent - e.parent_dist) <= radius + e.radius
                    if e.mbb_lows is not None and mask.any():
                        box = self._entry_box_bounds(e, qmat[active[mask]])
                        idx = np.flatnonzero(mask)
                        mask[idx[box > radius]] = False
                    sub = active[mask]
                    if sub.size:
                        d = self.space.pairwise_objects(take(sub), [e.obj])[:, 0]
                        keep = d <= radius + e.radius  # Lemma 2
                        if keep.any():
                            stack.append((e.child_page, sub[keep], d[keep]))
        return [sorted(r) for r in results]

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        """Batch MkNNQ: shared best-first frontier, per-query heaps.

        Node priority is the smallest per-query bound carried by the
        frontier entry (``max`` of ball, box, and inherited bounds); a
        query drops out of an entry once its bound exceeds its own heap
        radius.  Bounds only grow down the tree and pruning only ever uses
        a query's own radius, so with the canonical (distance, id) heap the
        answers are the sequential ones bit for bit.
        """
        queries = list(queries)
        if not queries:
            return []
        qmat = self.mapping.map_query_many(queries)
        take = query_selector(self.space.dataset, queries)
        heaps = [KnnHeap(k) for _ in queries]
        counter = itertools.count()
        every = np.arange(len(queries), dtype=np.intp)
        pq: list[tuple] = [
            (
                0.0,
                next(counter),
                self.mtree.root_page,
                every,
                np.zeros(len(queries)),
                None,
            )
        ]
        while pq:
            priority, _, page_id, active, bounds, d_parent = heapq.heappop(pq)
            if priority > max(heap.radius for heap in heaps):
                break
            radii = np.asarray([heaps[qi].radius for qi in active])
            alive = bounds <= radii
            if not alive.any():
                continue
            active, bounds = active[alive], bounds[alive]
            if d_parent is not None:
                d_parent = d_parent[alive]
            node = self.mtree.read_node(page_id)
            if node.is_leaf:
                for e in node.entries:
                    radii = np.asarray([heaps[qi].radius for qi in active])
                    mask = np.ones(active.size, dtype=bool)
                    if d_parent is not None:
                        mask &= np.abs(d_parent - e.parent_dist) <= radii
                    if e.vec is not None and mask.any():
                        lb = np.abs(qmat[active[mask]] - e.vec).max(axis=1)
                        idx = np.flatnonzero(mask)
                        mask[idx[lb > radii[mask]]] = False
                    sub = active[mask]
                    if sub.size:
                        dists = self.space.pairwise_objects(take(sub), [e.obj])[:, 0]
                        for qi, d in zip(sub, dists):
                            heaps[qi].consider(e.object_id, float(d))
            else:
                # routing entries only push to the frontier -- no heap ever
                # tightens inside this loop, so the radii are loop-invariant
                radii = np.asarray([heaps[qi].radius for qi in active])
                for e in node.entries:
                    mask = np.ones(active.size, dtype=bool)
                    if d_parent is not None:
                        mask &= np.abs(d_parent - e.parent_dist) <= radii + e.radius
                    box = np.zeros(active.size)
                    if e.mbb_lows is not None and mask.any():
                        box[mask] = self._entry_box_bounds(e, qmat[active[mask]])
                        mask &= box <= radii
                    sub = active[mask]
                    if sub.size:
                        d = self.space.pairwise_objects(take(sub), [e.obj])[:, 0]
                        ball = np.maximum(0.0, d - e.radius)
                        child_bounds = np.maximum(
                            np.maximum(ball, box[mask]), bounds[mask]
                        )
                        keep = child_bounds <= radii[mask]
                        if keep.any():
                            kept = child_bounds[keep]
                            heapq.heappush(
                                pq,
                                (
                                    float(kept.min()),
                                    next(counter),
                                    e.child_page,
                                    sub[keep],
                                    kept,
                                    d[keep],
                                ),
                            )
        return [heap.neighbors() for heap in heaps]

    # -- maintenance -------------------------------------------------------------

    def insert(self, obj, object_id: int | None = None) -> int:
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        vec = self.mapping.map_object(obj)
        self.mtree.insert(int(object_id), obj, vec=vec)
        return int(object_id)

    def delete(self, object_id: int) -> None:
        if not self.mtree.delete(object_id):
            raise KeyError(f"object {object_id} is not in the tree")

    # -- accounting -----------------------------------------------------------------

    def storage_bytes(self) -> dict[str, int]:
        return {
            "memory": 8 * self.mapping.n_pivots,
            "disk": self.mtree.pager.disk_bytes(),
        }
