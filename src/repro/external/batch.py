"""Shared pieces of the external category's batch query paths.

The external indexes (Omni family, M-index/M-index*, SPB-tree, PM-tree,
DEPT) all follow the same batch recipe:

1. one counted ``pairwise`` call maps the whole query batch into pivot
   space (a ``q x l`` matrix -- the same total computations as ``q``
   sequential ``map_query`` calls);
2. the structure is traversed **once per batch** with an active-query
   subset carried along (the frontier pattern of ``repro.trees.common``),
   pruning with the 2-D MBB bounds of :mod:`repro.core.pivot_filter`;
3. surviving candidates are fetched from the RAF **grouped by page** so
   each touched page is read at most once per batch
   (:meth:`~repro.storage.raf.RandomAccessFile.read_many` for eager range
   verification, :class:`~repro.storage.pager.BatchReadCache` for lazy
   best-first MkNNQ verification).

This module holds the two helpers steps 2-3 share across indexes: bounded
page-ordered record chunking, and the key-interval union that lets the
B+-tree-backed indexes scan each contiguous key run once per batch.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FETCH_CHUNK",
    "drain_record_chunks",
    "iter_record_chunks",
    "merge_intervals",
    "query_selector",
]

# candidates resident in memory at once during batch verification; the
# external category's premise is that objects only fit on disk, so the
# union of a big batch's candidates must not be materialised wholesale
FETCH_CHUNK = 1024


def iter_record_chunks(raf, pointer_of, ids, chunk: int = FETCH_CHUNK):
    """Yield ``{object_id: record}`` maps over page-ordered bounded chunks.

    ``ids`` may repeat across queries; each distinct id is fetched once.
    Chunks are ordered by owning RAF page, so every touched page is read at
    most once per chunk (only a chunk-boundary page can be read twice),
    with repeats inside a chunk counted as ``grouped_hits`` by
    :meth:`~repro.storage.pager.Pager.read_many`.
    """
    distinct = list(dict.fromkeys(ids))
    distinct.sort(key=lambda i: (pointer_of[i].page_id, pointer_of[i].slot))
    for start in range(0, len(distinct), chunk):
        block = distinct[start : start + chunk]
        yield dict(zip(block, raf.read_many(pointer_of[i] for i in block)))


def drain_record_chunks(raf, pointer_of, pending, handle, chunk: int = FETCH_CHUNK):
    """Verify per-query pending candidates through page-grouped chunks.

    ``pending`` is one mutable id list per query (repeats across queries
    fine); the union is fetched via :func:`iter_record_chunks` and, per
    chunk, ``handle(qi, ids, records)`` is called with each query's
    resident ids before they are removed from its pending list.  This is
    the one copy of the chunk-accounting bookkeeping every eager batch
    range verification shares.
    """
    union = [i for ids in pending for i in ids]
    for records in iter_record_chunks(raf, pointer_of, union, chunk=chunk):
        for qi in range(len(pending)):
            ids = [i for i in pending[qi] if i in records]
            if not ids:
                continue
            handle(qi, ids, records)
            if len(ids) < len(pending[qi]):
                pending[qi] = [i for i in pending[qi] if i not in records]
            else:
                pending[qi] = []


def merge_intervals(intervals):
    """Union of closed ``[lo, hi]`` intervals as a sorted disjoint list.

    The batched key-run merge: each query contributes its own B+-tree scan
    range; the merged runs cover exactly their union, so one scan per run
    reads every needed leaf page once no matter how many queries' ranges
    overlap it.  Empty (``lo > hi``) intervals are dropped.
    """
    spans = sorted((lo, hi) for lo, hi in intervals if lo <= hi)
    merged: list[list] = []
    for lo, hi in spans:
        if merged and lo <= merged[-1][1]:
            if hi > merged[-1][1]:
                merged[-1][1] = hi
        else:
            merged.append([lo, hi])
    return [(lo, hi) for lo, hi in merged]


def query_selector(dataset, queries):
    """``take(idxs) -> query batch`` for active-subset traversals.

    Vector datasets get one up-front 2-D matrix so subsets are a fancy
    index; everything else (strings, ragged objects) falls back to list
    selection -- the same contract as the tree frontier engine's selector.
    """
    if dataset.is_vector:
        try:
            qmat = np.asarray(queries)
            if qmat.ndim == 2:
                return qmat.__getitem__
        except (ValueError, TypeError):
            pass
    return lambda idxs: [queries[i] for i in idxs]
