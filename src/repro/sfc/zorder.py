"""Z-order (Morton) curve: the SPB-tree ablation alternative to Hilbert.

Bit-interleaving preserves locality less well than the Hilbert curve; the
ablation bench (``benchmarks/bench_ablation_sfc.py``) quantifies how much
that costs the SPB-tree in page accesses, supporting the paper's choice of
the Hilbert mapping (Section 5.4).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZOrderCurve"]


class ZOrderCurve:
    """Bijective Morton mapping with the same interface as HilbertCurve."""

    def __init__(self, bits: int, dims: int):
        if bits < 1 or bits > 32:
            raise ValueError(f"bits must be in [1, 32], got {bits}")
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        self.bits = bits
        self.dims = dims
        self.max_coordinate = (1 << bits) - 1
        self.max_key = (1 << (bits * dims)) - 1

    def encode(self, coords) -> int:
        x = [int(c) for c in coords]
        if len(x) != self.dims:
            raise ValueError(f"expected {self.dims} coordinates, got {len(x)}")
        for c in x:
            if c < 0 or c > self.max_coordinate:
                raise ValueError(
                    f"coordinate {c} out of range [0, {self.max_coordinate}]"
                )
        key = 0
        for bit in range(self.bits - 1, -1, -1):
            for i in range(self.dims):
                key = (key << 1) | ((x[i] >> bit) & 1)
        return key

    def decode(self, key: int) -> tuple[int, ...]:
        if key < 0 or key > self.max_key:
            raise ValueError(f"key {key} out of range [0, {self.max_key}]")
        x = [0] * self.dims
        position = self.bits * self.dims - 1
        for bit in range(self.bits - 1, -1, -1):
            for i in range(self.dims):
                x[i] |= ((key >> position) & 1) << bit
                position -= 1
        return tuple(x)

    def encode_many(self, coords: np.ndarray) -> list[int]:
        mat = np.asarray(coords)
        return [self.encode(row) for row in mat]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ZOrderCurve(bits={self.bits}, dims={self.dims})"
