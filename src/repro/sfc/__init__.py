"""Space-filling curves used by the SPB-tree."""

from .hilbert import HilbertCurve
from .zorder import ZOrderCurve

__all__ = ["HilbertCurve", "ZOrderCurve"]
