"""d-dimensional Hilbert space-filling curve (Skilling's algorithm).

The SPB-tree maps each object's discretised pivot-distance vector to a single
integer Hilbert key; B+-tree order over the keys then approximately preserves
proximity in pivot space, which is the whole point of the SPB-tree's storage
and I/O savings (Section 5.4).

``encode``/``decode`` implement John Skilling's transpose-based algorithm
("Programming the Hilbert curve", AIP 2004): coordinates with ``bits`` bits
per dimension map bijectively to keys in [0, 2^(bits*dims)).
"""

from __future__ import annotations

import numpy as np

__all__ = ["HilbertCurve"]


class HilbertCurve:
    """Bijective Hilbert mapping for ``dims`` dimensions of ``bits`` bits."""

    def __init__(self, bits: int, dims: int):
        if bits < 1 or bits > 32:
            raise ValueError(f"bits must be in [1, 32], got {bits}")
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        self.bits = bits
        self.dims = dims
        self.max_coordinate = (1 << bits) - 1
        self.max_key = (1 << (bits * dims)) - 1

    # -- coordinate -> key --------------------------------------------------

    def encode(self, coords) -> int:
        """Hilbert key of one coordinate tuple."""
        x = [int(c) for c in coords]
        if len(x) != self.dims:
            raise ValueError(f"expected {self.dims} coordinates, got {len(x)}")
        for c in x:
            if c < 0 or c > self.max_coordinate:
                raise ValueError(
                    f"coordinate {c} out of range [0, {self.max_coordinate}]"
                )
        x = self._axes_to_transpose(x)
        return self._transpose_to_key(x)

    def _axes_to_transpose(self, x: list[int]) -> list[int]:
        n, bits = self.dims, self.bits
        m = 1 << (bits - 1)
        # inverse undo of the gray code
        q = m
        while q > 1:
            p = q - 1
            for i in range(n):
                if x[i] & q:
                    x[0] ^= p
                else:
                    t = (x[0] ^ x[i]) & p
                    x[0] ^= t
                    x[i] ^= t
            q >>= 1
        # gray encode
        for i in range(1, n):
            x[i] ^= x[i - 1]
        t = 0
        q = m
        while q > 1:
            if x[n - 1] & q:
                t ^= q - 1
            q >>= 1
        for i in range(n):
            x[i] ^= t
        return x

    def _transpose_to_key(self, x: list[int]) -> int:
        key = 0
        for bit in range(self.bits - 1, -1, -1):
            for i in range(self.dims):
                key = (key << 1) | ((x[i] >> bit) & 1)
        return key

    # -- key -> coordinate ----------------------------------------------------

    def decode(self, key: int) -> tuple[int, ...]:
        """Coordinate tuple of one Hilbert key."""
        if key < 0 or key > self.max_key:
            raise ValueError(f"key {key} out of range [0, {self.max_key}]")
        x = self._key_to_transpose(key)
        return tuple(self._transpose_to_axes(x))

    def _key_to_transpose(self, key: int) -> list[int]:
        x = [0] * self.dims
        position = self.bits * self.dims - 1
        for bit in range(self.bits - 1, -1, -1):
            for i in range(self.dims):
                x[i] |= ((key >> position) & 1) << bit
                position -= 1
        return x

    def _transpose_to_axes(self, x: list[int]) -> list[int]:
        n, bits = self.dims, self.bits
        m = 1 << (bits - 1)
        # gray decode by H ^ (H/2)
        t = x[n - 1] >> 1
        for i in range(n - 1, 0, -1):
            x[i] ^= x[i - 1]
        x[0] ^= t
        # undo excess work
        q = 2
        while q != m << 1:
            p = q - 1
            for i in range(n - 1, -1, -1):
                if x[i] & q:
                    x[0] ^= p
                else:
                    t = (x[0] ^ x[i]) & p
                    x[0] ^= t
                    x[i] ^= t
            q <<= 1
        return x

    # -- batch helpers ---------------------------------------------------------

    def encode_many(self, coords: np.ndarray) -> list[int]:
        """Hilbert keys for each row of an integer coordinate matrix."""
        mat = np.asarray(coords)
        return [self.encode(row) for row in mat]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HilbertCurve(bits={self.bits}, dims={self.dims})"
