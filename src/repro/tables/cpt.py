"""CPT: Clustered Pivot Table (Mosko, Lokoc, Skopal 2011).

LAESA's distance table stays in main memory, but the objects move to disk,
clustered by an M-tree so that verified candidates cause few page reads
(Section 3.3 / Figure 6 of the paper).  The in-memory table keeps, per
object, the pre-computed pivot distances plus a pointer to the M-tree leaf
holding the object.

Query processing is LAESA's, except every verification must *fetch the
object from disk* first -- the paper's explanation for CPT's CPU and I/O
overheads.
"""

from __future__ import annotations

import numpy as np

from ..core.index import MetricIndex
from ..core.mapping import PivotMapping
from ..core.metric_space import MetricSpace
from ..core.queries import KnnHeap, Neighbor, best_first_knn
from ..core.staged import StagedPruner
from ..mtree.mtree import MTree
from ..storage.pager import Pager

__all__ = ["CPT"]


class CPT(MetricIndex):
    """Pivot table in memory + M-tree-clustered objects on disk."""

    name = "CPT"
    is_disk_based = True

    def __init__(
        self,
        space: MetricSpace,
        mapping: PivotMapping,
        mtree: MTree,
        use_validation: bool = False,
        pruner: StagedPruner | None = None,
    ):
        super().__init__(space)
        self.mapping = mapping
        self.mtree = mtree
        self.use_validation = use_validation
        n = mapping.n_objects
        self._row_ids = np.arange(n, dtype=np.intp)
        self._rows = mapping.matrix.copy()
        if pruner is None:
            pruner = StagedPruner.build(space, self._rows, mapping.pivot_objects)
        self.pruner = pruner

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        pivot_ids,
        pager: Pager | None = None,
        page_size: int = 40960,
        seed: int = 0,
        use_validation: bool = False,
        bounds: str = "auto",
        staged: bool = True,
    ) -> "CPT":
        """Compute the distance table and cluster all objects in an M-tree.

        The M-tree construction is what makes CPT's build cost the highest of
        the table category (Table 4): every insert descends the tree with
        counted distance computations.  The default 40 KB page matches the
        paper's setting for large objects.

        Lemma 4 validation (``use_validation``) pays double for CPT: a
        validated object is an answer without the leaf *fetch*, so it
        saves a page access on top of the distance computation.
        """
        mapping = PivotMapping(space, pivot_ids)
        pruner = StagedPruner.build(
            space, mapping.matrix, mapping.pivot_objects, bounds=bounds, staged=staged
        )
        if pager is None:
            pager = Pager(page_size=page_size, counters=space.counters)
        mtree = MTree(space, pager, seed=seed)
        for object_id in range(len(space)):
            mtree.insert(object_id, space.dataset[object_id])
        return cls(space, mapping, mtree, use_validation, pruner=pruner)

    # -- queries -----------------------------------------------------------

    def _verify(self, query_obj, object_id: int) -> float:
        """Load the object from its M-tree leaf (PA) and compute d."""
        obj = self.mtree.fetch_object(object_id)
        return self.space.d(query_obj, obj)

    def range_query(self, query_obj, radius: float) -> list[int]:
        query_pivot_dists = self.mapping.map_query(query_obj)
        survivors, validated = self.pruner.masks_many(
            query_pivot_dists,
            self._rows,
            radius,
            counters=self.space.counters,
            validate=self.use_validation,
        )
        results: list[int] = [int(i) for i in self._row_ids[validated]]
        for i in np.flatnonzero(survivors):
            object_id = int(self._row_ids[i])
            if self._verify(query_obj, object_id) <= radius:
                results.append(object_id)
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        query_pivot_dists = self.mapping.map_query(query_obj)
        lower = self.pruner.lower_bounds_many(query_pivot_dists, self._rows)
        heap = KnnHeap(k)
        for i in range(len(self._row_ids)):  # storage order
            if lower[i] > heap.radius:
                continue
            object_id = int(self._row_ids[i])
            heap.consider(object_id, self._verify(query_obj, object_id))
        return heap.neighbors()

    # -- batch queries --------------------------------------------------------

    def _verify_many(self, query_obj, ids: list[int]) -> np.ndarray:
        """Leaf-grouped fetch of all candidates, then one vectorised
        distance call.  Each distinct M-tree leaf page is read once per
        call (candidates sharing a leaf ride along as ``grouped_hits``),
        instead of the one-random-page-access-per-candidate the sequential
        path pays."""
        objects = self.mtree.fetch_objects_many(ids)
        return self.space.d_many(query_obj, objects)

    # candidates resident in memory at once during batch verification; the
    # index's premise is that objects only fit on disk, so the union of a
    # big batch's candidates must not be materialised wholesale
    _FETCH_CHUNK = 1024

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        """Batch MRQ: shared q x l pivot matrix + leaf-grouped verification.

        The batch's surviving candidates are fetched through
        :meth:`~repro.mtree.mtree.MTree.fetch_objects_many` in bounded
        chunks *ordered by owning leaf page*, so every touched leaf is
        still read (at most) once per batch -- candidates sharing a leaf
        land in the same chunk; only a chunk-boundary leaf can be read
        twice -- while at most ``_FETCH_CHUNK`` objects are in memory at a
        time.  Each query verifies its own candidates, so distance counts
        are identical to the sequential loop; only page accesses shrink.
        """
        queries = list(queries)
        if not queries:
            return []
        qmat = self.mapping.map_query_many(queries)
        survivors, validated = self.pruner.masks_many_queries(
            qmat,
            self._rows,
            radius,
            counters=self.space.counters,
            validate=self.use_validation,
        )
        ids_per_query = [
            [int(i) for i in self._row_ids[survivors[qi]]]
            for qi in range(len(queries))
        ]
        distinct = list(dict.fromkeys(i for ids in ids_per_query for i in ids))
        distinct.sort(key=lambda i: self.mtree.leaf_of.get(i, -1))
        results: list[list[int]] = [
            [int(i) for i in self._row_ids[validated[qi]]] for qi in range(len(queries))
        ]
        pending = [list(ids) for ids in ids_per_query]  # not yet verified
        for start in range(0, len(distinct), self._FETCH_CHUNK):
            chunk = distinct[start : start + self._FETCH_CHUNK]
            objects = dict(zip(chunk, self.mtree.fetch_objects_many(chunk)))
            for qi, q in enumerate(queries):
                ids = [i for i in pending[qi] if i in objects]
                if not ids:
                    continue
                dists = self.space.d_many(q, [objects[i] for i in ids])
                results[qi].extend(o for o, d in zip(ids, dists) if d <= radius)
                if len(ids) < len(pending[qi]):
                    pending[qi] = [i for i in pending[qi] if i not in objects]
                else:
                    pending[qi] = []
        return [sorted(ids) for ids in results]

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        """Batch MkNNQ: shared bound matrix + best-first chunked verification.

        Best-first order matters doubly for CPT: every skipped verification
        is a skipped M-tree leaf fetch, so the batch path typically does
        far fewer page accesses than the storage-order sequential scan
        (not guaranteed -- see :func:`~repro.core.queries.best_first_knn`);
        each verification chunk additionally fetches leaf-grouped, reading
        every touched page once per chunk.
        """
        queries = list(queries)
        if not queries:
            return []
        qmat = self.mapping.map_query_many(queries)
        lower = self.pruner.lower_bounds_many_queries(qmat, self._rows)
        return [
            best_first_knn(
                lower[qi], self._row_ids, k, lambda ids, q=q: self._verify_many(q, ids)
            )
            for qi, q in enumerate(queries)
        ]

    # -- maintenance ----------------------------------------------------------

    def insert(self, obj, object_id: int | None = None) -> int:
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        vector = self.mapping.map_object(obj)
        self._rows = np.concatenate([self._rows, vector.reshape(1, -1)])
        self._row_ids = np.concatenate([self._row_ids, [object_id]])
        self.mtree.insert(int(object_id), obj)
        return int(object_id)

    def delete(self, object_id: int) -> None:
        """Sequential table scan + M-tree leaf update."""
        position = -1
        for i in range(len(self._row_ids)):
            if self._row_ids[i] == object_id:
                position = i
                break
        if position < 0:
            raise KeyError(f"object {object_id} is not in the table")
        keep = np.ones(len(self._row_ids), dtype=bool)
        keep[position] = False
        self._row_ids = self._row_ids[keep]
        self._rows = self._rows[keep]
        self.mtree.delete(object_id)

    # -- snapshots -------------------------------------------------------------

    def prepare_snapshot(self) -> None:
        """Flush the M-tree's buffer pool so the page store is authoritative."""
        self.mtree.pager.prepare_snapshot()

    # -- accounting -----------------------------------------------------------

    def storage_bytes(self) -> dict[str, int]:
        table = int(self._rows.nbytes) + int(self._row_ids.nbytes)
        return {
            "memory": table + 8 * self.mapping.n_pivots,
            "disk": self.mtree.pager.disk_bytes(),
        }
