"""Pivot-based tables: AESA, LAESA, EPT, EPT*, CPT (paper Section 3)."""

from .aesa import AESA
from .cpt import CPT
from .ept import EPT, EPTStar
from .laesa import LAESA

__all__ = ["AESA", "CPT", "EPT", "EPTStar", "LAESA"]
