"""EPT and EPT*: Extreme Pivot Tables (Ruiz et al. 2013 + the paper's PSA).

EPT picks *different pivots for different objects*: it draws ``l`` groups of
``m`` random pivots; within each group an object is assigned the pivot p that
maximises |d(o, p) - mu_p| (the "extreme" pivot, Fig. 4 of the paper).  Each
object therefore stores ``l`` (pivot, distance) pairs, and a query pays
``m * l`` distance computations up front to know d(q, p) for every group
pivot.  The group size m is estimated from the paper's Equation (1) cost
model.

EPT* (the paper's first contribution, Section 3.2) replaces the random
groups with PSA (Algorithm 1): per object, greedily pick from an HF
candidate set the pivots maximising E[D(q,o)/d(q,o)].  Construction is far
more expensive -- exactly as Table 4 reports -- but queries prune better
(Fig. 14).

MRQ/MkNNQ processing is identical to LAESA's except that the lower bound of
object o uses o's own pivots.
"""

from __future__ import annotations

import numpy as np

from ..core.index import MetricIndex
from ..core.metric_space import MetricSpace
from ..core.pivot_selection import hf, psa
from ..core.queries import KnnHeap, Neighbor, best_first_knn
from ..core.staged import PerObjectStagedPruner

__all__ = ["EPT", "EPTStar"]


class _ExtremePivotTableBase(MetricIndex):
    """Shared query machinery: per-object pivot ids + distances."""

    def __init__(
        self,
        space: MetricSpace,
        pivot_ids: list[int],
        pivot_idx: np.ndarray,
        pivot_dist: np.ndarray,
        pruner: PerObjectStagedPruner | None = None,
    ):
        super().__init__(space)
        self.pivot_ids = pivot_ids  # global candidate/pivot object ids
        self._row_ids = np.arange(pivot_idx.shape[0], dtype=np.intp)
        self._pivot_idx = pivot_idx.astype(np.int32)  # n x l, into pivot_ids
        self._pivot_dist = pivot_dist.astype(np.float64)  # n x l
        if pruner is None:
            pruner = PerObjectStagedPruner.build(
                space, pivot_ids, self._pivot_idx, self._pivot_dist
            )
        self.pruner = pruner

    def _query_pivot_dists(self, query_obj) -> np.ndarray:
        """d(q, p) for every pivot the table references (m*l or |CP| comps)."""
        pivots = self.space.dataset.gather(self.pivot_ids)
        return self.space.d_many(query_obj, pivots)

    def range_query(self, query_obj, radius: float) -> list[int]:
        qdists = self._query_pivot_dists(query_obj)
        survivors = self.pruner.masks_many(
            qdists,
            self._pivot_idx,
            self._pivot_dist,
            radius,
            counters=self.space.counters,
        )
        results: list[int] = []
        for i in np.flatnonzero(survivors):
            object_id = int(self._row_ids[i])
            d = self.space.d_id(query_obj, object_id)
            if d <= radius:
                results.append(object_id)
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        qdists = self._query_pivot_dists(query_obj)
        lower = self.pruner.lower_bounds_many_queries(
            qdists.reshape(1, -1), self._pivot_idx, self._pivot_dist
        )[0]
        heap = KnnHeap(k)
        for i in range(len(self._row_ids)):  # storage order, as in the paper
            if lower[i] > heap.radius:
                continue
            object_id = int(self._row_ids[i])
            heap.consider(object_id, self.space.d_id(query_obj, object_id))
        return heap.neighbors()

    # -- batch queries --------------------------------------------------------

    def _query_pivot_dists_many(self, queries) -> np.ndarray:
        """d(q, p) for every query and every referenced pivot: q x |P|."""
        pivots = self.space.dataset.gather(self.pivot_ids)
        return self.space.pairwise_objects(queries, pivots)

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        """Batch MRQ: one pairwise call for all query-pivot distances, the
        staged per-object-pivot cascade, vectorised per-query verification."""
        queries = list(queries)
        if not queries:
            return []
        qdists = self._query_pivot_dists_many(queries)
        survivors = self.pruner.masks_many_queries(
            qdists,
            self._pivot_idx,
            self._pivot_dist,
            radius,
            counters=self.space.counters,
        )
        out: list[list[int]] = []
        for qi, q in enumerate(queries):
            ids = [int(i) for i in self._row_ids[survivors[qi]]]
            results: list[int] = []
            if ids:
                dists = self.space.d_ids(q, ids)
                results = [o for o, d in zip(ids, dists) if d <= radius]
            out.append(sorted(results))
        return out

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        """Batch MkNNQ: shared bound matrix + best-first chunked verification."""
        queries = list(queries)
        if not queries:
            return []
        qdists = self._query_pivot_dists_many(queries)
        lower = self.pruner.lower_bounds_many_queries(
            qdists, self._pivot_idx, self._pivot_dist
        )
        return [
            best_first_knn(
                lower[qi], self._row_ids, k, lambda ids, q=q: self.space.d_ids(q, ids)
            )
            for qi, q in enumerate(queries)
        ]

    def delete(self, object_id: int) -> None:
        """Sequential-scan delete, like LAESA."""
        position = -1
        for i in range(len(self._row_ids)):
            if self._row_ids[i] == object_id:
                position = i
                break
        if position < 0:
            raise KeyError(f"object {object_id} is not in the table")
        keep = np.ones(len(self._row_ids), dtype=bool)
        keep[position] = False
        self._row_ids = self._row_ids[keep]
        self._pivot_idx = self._pivot_idx[keep]
        self._pivot_dist = self._pivot_dist[keep]

    def _append_row(self, object_id: int, idx_row, dist_row) -> None:
        self._row_ids = np.concatenate([self._row_ids, [object_id]])
        self._pivot_idx = np.concatenate(
            [self._pivot_idx, np.asarray(idx_row, dtype=np.int32).reshape(1, -1)]
        )
        self._pivot_dist = np.concatenate(
            [self._pivot_dist, np.asarray(dist_row, dtype=np.float64).reshape(1, -1)]
        )

    def storage_bytes(self) -> dict[str, int]:
        objects = sum(
            self.space.dataset.object_nbytes(int(i)) for i in self._row_ids
        )
        # each cell stores the pivot reference *and* the distance (the paper
        # notes this overhead relative to LAESA)
        table = int(self._pivot_dist.nbytes) + int(self._pivot_idx.nbytes)
        return {"memory": table + 8 * len(self.pivot_ids) + objects, "disk": 0}


class EPT(_ExtremePivotTableBase):
    """Extreme Pivot Table with random groups (the 2013 original)."""

    name = "EPT"

    def __init__(
        self, space, pivot_ids, pivot_idx, pivot_dist, group_size: int, mu, pruner=None
    ):
        super().__init__(space, pivot_ids, pivot_idx, pivot_dist, pruner=pruner)
        self.group_size = group_size
        self._mu = mu  # mean d(o, p) per pivot column, for insert-time picks

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        n_groups: int = 5,
        group_size: int | None = None,
        seed: int = 0,
        sample_size: int = 256,
        bounds: str = "auto",
        staged: bool = True,
    ) -> "EPT":
        """Draw ``n_groups`` random groups and assign extreme pivots.

        ``group_size`` (m) defaults to the Equation (1) estimate: the m
        minimising  m*l + n * (1 - Pr(|X - Y| > r))^l  on sampled
        distances, with r set to a small quantile of the pairwise distances.
        """
        rng = np.random.default_rng(seed)
        n = len(space)
        l = n_groups
        if group_size is None:
            group_size = cls._estimate_group_size(space, l, rng)
        m = max(1, min(group_size, n // max(1, l)))

        pivot_ids: list[int] = []
        pivot_idx = np.zeros((n, l), dtype=np.int32)
        pivot_dist = np.zeros((n, l), dtype=np.float64)
        mu_columns: list[float] = []
        for j in range(l):
            group = [int(i) for i in rng.choice(n, size=m, replace=False)]
            # full distance columns: the dominant build cost of EPT (Table 4)
            columns = np.stack(
                [
                    space.d_many(space.dataset[p], space.dataset.objects)
                    for p in group
                ],
                axis=1,
            )  # n x m
            mus = columns.mean(axis=0)
            extremeness = np.abs(columns - mus)
            choice = extremeness.argmax(axis=1)  # per object: extreme pivot
            base = len(pivot_ids)
            pivot_ids.extend(group)
            mu_columns.extend(float(v) for v in mus)
            pivot_idx[:, j] = base + choice
            pivot_dist[:, j] = columns[np.arange(n), choice]
        pruner = PerObjectStagedPruner.build(
            space,
            pivot_ids,
            pivot_idx,
            pivot_dist,
            bounds=bounds,
            staged=staged,
        )
        return cls(
            space,
            pivot_ids,
            pivot_idx,
            pivot_dist,
            m,
            np.asarray(mu_columns),
            pruner=pruner,
        )

    @staticmethod
    def _estimate_group_size(space: MetricSpace, l: int, rng) -> int:
        """Equation (1): pick m from sampled distance distributions."""
        n = len(space)
        sample = min(200, n)
        ids = [int(i) for i in rng.choice(n, size=sample, replace=False)]
        half = sample // 2
        dists = space.pairwise_ids(ids[:half], ids[half:])
        flat = np.sort(dists.ravel())
        radius = float(flat[max(0, int(0.05 * len(flat)) - 1)])
        # Pr(|X - Y| > r) for a random pivot: X, Y two independent distances
        x = dists[: half // 2].ravel()
        y = dists[half // 2 :].ravel()
        size = min(len(x), len(y))
        prune_prob = float(np.mean(np.abs(x[:size] - y[:size]) > radius))
        best_m, best_cost = 1, float("inf")
        for m in (1, 2, 4, 8, 16, 32):
            # with m pivots per group the extreme pivot prunes roughly like
            # the best of m draws
            group_prob = 1.0 - (1.0 - prune_prob) ** m
            cost = m * l + n * (1.0 - group_prob) ** l
            if cost < best_cost:
                best_m, best_cost = m, cost
        return best_m

    def insert(self, obj, object_id: int | None = None) -> int:
        """Re-assign extreme pivots for the new object.

        As the paper discusses (Table 6), EPT pays a high estimation cost on
        insert: besides the m*l pivot distances it refreshes the mu_p
        estimates against a sample so the extremeness criterion stays
        calibrated.
        """
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        rng = np.random.default_rng(object_id)
        n_pivots = len(self.pivot_ids)
        sample_size = min(512, len(self.space))
        sample_ids = [int(i) for i in rng.choice(len(self.space), size=sample_size, replace=False)]
        # the estimation cost: refresh mu for every group pivot
        refreshed = self.space.pairwise_ids(self.pivot_ids, sample_ids)
        self._mu = refreshed.mean(axis=1)
        dists = self.space.d_many(
            obj, self.space.dataset.gather(self.pivot_ids)
        )
        l = self._pivot_idx.shape[1]
        m = n_pivots // l
        idx_row, dist_row = [], []
        for j in range(l):
            lo, hi = j * m, (j + 1) * m
            extremeness = np.abs(dists[lo:hi] - self._mu[lo:hi])
            pick = lo + int(extremeness.argmax())
            idx_row.append(pick)
            dist_row.append(float(dists[pick]))
        self._append_row(int(object_id), idx_row, dist_row)
        return int(object_id)


class EPTStar(_ExtremePivotTableBase):
    """EPT*: per-object pivots chosen by PSA (Algorithm 1)."""

    name = "EPT*"

    def __init__(self, space, pivot_ids, pivot_idx, pivot_dist, sample_ids, pruner=None):
        super().__init__(space, pivot_ids, pivot_idx, pivot_dist, pruner=pruner)
        self._sample_ids = sample_ids  # query proxies reused for inserts

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        n_pivots_per_object: int = 5,
        candidate_scale: int = 40,
        sample_size: int = 64,
        seed: int = 0,
        bounds: str = "auto",
        staged: bool = True,
    ) -> "EPTStar":
        """Run PSA over the whole dataset (deliberately expensive)."""
        pivot_idx, pivot_dist, candidates = psa(
            space,
            n_pivots_per_object,
            candidate_scale=candidate_scale,
            sample_size=sample_size,
            seed=seed,
        )
        rng = np.random.default_rng(seed)
        sample_ids = [
            int(i)
            for i in rng.choice(len(space), size=min(sample_size, len(space)), replace=False)
        ]
        pruner = PerObjectStagedPruner.build(
            space, candidates, pivot_idx, pivot_dist, bounds=bounds, staged=staged
        )
        return cls(space, candidates, pivot_idx, pivot_dist, sample_ids, pruner=pruner)

    def insert(self, obj, object_id: int | None = None) -> int:
        """PSA for a single object: |CP| + |S| distances plus the greedy scan."""
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        cand_objs = self.space.dataset.gather(self.pivot_ids)
        cand_d = self.space.d_many(obj, cand_objs)  # d(o, p_c)
        sample_objs = self.space.dataset.gather(self._sample_ids)
        sample_d = self.space.d_many(obj, sample_objs)  # d(o, q_s)
        denom = np.maximum(sample_d, 1e-12)
        # cand_sample[c, s] = d(p_c, q_s): pivots vs proxies (counted)
        cand_sample = self.space.pairwise_ids(self.pivot_ids, self._sample_ids)
        ratios = np.abs(cand_sample - cand_d[:, None]) / denom[None, :]
        l = self._pivot_idx.shape[1]
        current = np.zeros(len(self._sample_ids), dtype=np.float64)
        used: list[int] = []
        for _ in range(l):
            scores = np.maximum(current[None, :], ratios).mean(axis=1)
            if used:
                scores[used] = -1.0
            best = int(np.argmax(scores))
            used.append(best)
            current = np.maximum(current, ratios[best])
        self._append_row(int(object_id), used, cand_d[used])
        return int(object_id)
