"""LAESA: the Linear AESA pivot table (Mico, Oncina, Carrasco 1996).

Three tables, exactly as the paper's Figure 3: a pivot table (the pivot
objects), an object table (the data), and a distance table holding d(o, p)
for every object o and pivot p -- O(|P| x |O|) memory instead of AESA's
O(|O|^2).

* MRQ scans the distance table, prunes with Lemma 1, and verifies survivors.
* MkNNQ verifies objects *in storage order* (the paper points out this is
  suboptimal and the reason LAESA's kNN compdists exceed tree-based orders)
  with the radius tightening to the running k-th nearest distance.
"""

from __future__ import annotations

import numpy as np

from ..core.index import MetricIndex
from ..core.mapping import PivotMapping
from ..core.metric_space import MetricSpace
from ..core.queries import KnnHeap, Neighbor, best_first_knn
from ..core.staged import StagedPruner

__all__ = ["LAESA"]


class LAESA(MetricIndex):
    """Pivot table with shared pivots for every object."""

    name = "LAESA"

    def __init__(
        self,
        space: MetricSpace,
        mapping: PivotMapping,
        use_validation: bool = False,
        pruner: StagedPruner | None = None,
    ):
        super().__init__(space)
        self.mapping = mapping
        self.use_validation = use_validation
        n = mapping.n_objects
        self._row_ids = np.arange(n, dtype=np.intp)
        self._rows = mapping.matrix.copy()
        if pruner is None:
            pruner = StagedPruner.build(space, self._rows, mapping.pivot_objects)
        self.pruner = pruner

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        pivot_ids,
        use_validation: bool = False,
        bounds: str = "auto",
        staged: bool = True,
    ) -> "LAESA":
        """Pre-compute the distance table (and pruner state) for the pivots."""
        mapping = PivotMapping(space, pivot_ids)
        pruner = StagedPruner.build(
            space, mapping.matrix, mapping.pivot_objects, bounds=bounds, staged=staged
        )
        return cls(space, mapping, use_validation, pruner=pruner)

    # -- queries ------------------------------------------------------------

    def range_query(self, query_obj, radius: float) -> list[int]:
        query_pivot_dists = self.mapping.map_query(query_obj)
        survivors, validated = self.pruner.masks_many(
            query_pivot_dists,
            self._rows,
            radius,
            counters=self.space.counters,
            validate=self.use_validation,
        )
        results: list[int] = [int(i) for i in self._row_ids[validated]]
        # pivots that are themselves answers are caught by the scan since
        # their table rows contain a zero column
        for row, object_id in zip(
            np.flatnonzero(survivors), self._row_ids[survivors]
        ):
            d = self.space.d_id(query_obj, int(object_id))
            if d <= radius:
                results.append(int(object_id))
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        query_pivot_dists = self.mapping.map_query(query_obj)
        lower = self.pruner.lower_bounds_many(query_pivot_dists, self._rows)
        heap = KnnHeap(k)
        # storage order, as the paper describes (and criticises)
        for i in range(len(self._row_ids)):
            if lower[i] > heap.radius:
                continue
            d = self.space.d_id(query_obj, int(self._row_ids[i]))
            heap.consider(int(self._row_ids[i]), d)
        return heap.neighbors()

    # -- batch queries --------------------------------------------------------

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        """Vectorised batch MRQ.

        One ``pairwise`` call produces the full q x l query-pivot matrix,
        Lemma 1 (and optionally Lemma 4) is applied as a single q x n matrix
        operation, and each query verifies all of its survivors with one
        vectorised distance call.  Answers and distance-computation counts
        are identical to running :meth:`range_query` per query.
        """
        queries = list(queries)
        if not queries:
            return []
        qmat = self.mapping.map_query_many(queries)
        survivors, validated = self.pruner.masks_many_queries(
            qmat,
            self._rows,
            radius,
            counters=self.space.counters,
            validate=self.use_validation,
        )
        out: list[list[int]] = []
        for qi, q in enumerate(queries):
            results: list[int] = [int(i) for i in self._row_ids[validated[qi]]]
            ids = [int(i) for i in self._row_ids[survivors[qi]]]
            if ids:
                dists = self.space.d_ids(q, ids)
                results.extend(
                    object_id for object_id, d in zip(ids, dists) if d <= radius
                )
            out.append(sorted(results))
        return out

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        """Vectorised batch MkNNQ.

        The query-pivot matrix and all lower bounds are computed up front;
        each query then verifies best-first (ascending lower bound, chunked
        vectorised distance calls) instead of the paper's storage-order scan
        -- typically fewer distance computations, identical answers (see
        :func:`~repro.core.queries.best_first_knn` for the exactness
        argument and the caveat on chunk granularity).
        """
        queries = list(queries)
        if not queries:
            return []
        qmat = self.mapping.map_query_many(queries)
        lower = self.pruner.lower_bounds_many_queries(qmat, self._rows)
        return [
            best_first_knn(
                lower[qi], self._row_ids, k, lambda ids, q=q: self.space.d_ids(q, ids)
            )
            for qi, q in enumerate(queries)
        ]

    # -- maintenance ----------------------------------------------------------

    def insert(self, obj, object_id: int | None = None) -> int:
        """Append a table row: |P| distance computations."""
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        vector = self.mapping.map_object(obj)
        self._rows = np.concatenate([self._rows, vector.reshape(1, -1)])
        self._row_ids = np.concatenate([self._row_ids, [object_id]])
        return int(object_id)

    def delete(self, object_id: int) -> None:
        """Sequential-scan delete (no distance computations, O(n) time)."""
        position = -1
        for i in range(len(self._row_ids)):  # the sequential scan the paper counts
            if self._row_ids[i] == object_id:
                position = i
                break
        if position < 0:
            raise KeyError(f"object {object_id} is not in the table")
        keep = np.ones(len(self._row_ids), dtype=bool)
        keep[position] = False
        self._row_ids = self._row_ids[keep]
        self._rows = self._rows[keep]

    # -- accounting ----------------------------------------------------------

    def storage_bytes(self) -> dict[str, int]:
        objects = sum(
            self.space.dataset.object_nbytes(int(i)) for i in self._row_ids
        )
        table = int(self._rows.nbytes) + int(self._row_ids.nbytes)
        pivots = 8 * self.mapping.n_pivots
        return {"memory": table + pivots + objects, "disk": 0}
