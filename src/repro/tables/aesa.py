"""AESA: the full O(n^2) distance table (Vidal 1986).

Stores the distance between *every* pair of objects.  Queries then need very
few distance computations: pick an unverified object (initially arbitrary,
afterwards the one with the smallest lower bound), compute its true distance,
and use its table row to tighten the lower bound of everyone else.

The paper calls AESA "a theoretical metric index" because of the quadratic
storage -- it is included here as the compdists lower-bound reference and for
small-dataset use.
"""

from __future__ import annotations

import numpy as np

from ..core.index import MetricIndex, UnsupportedOperation
from ..core.metric_space import MetricSpace
from ..core.queries import KnnHeap, Neighbor

__all__ = ["AESA"]


class AESA(MetricIndex):
    """Approximating and Eliminating Search Algorithm."""

    name = "AESA"

    def __init__(self, space: MetricSpace, table: np.ndarray):
        super().__init__(space)
        self.table = table

    @classmethod
    def build(cls, space: MetricSpace) -> "AESA":
        """Compute the n x n distance table (n(n-1)/2 computations)."""
        n = len(space)
        table = np.zeros((n, n), dtype=np.float64)
        dataset = space.dataset
        for i in range(n):
            if i + 1 < n:
                row = space.d_many(dataset[i], dataset.gather(range(i + 1, n)))
                table[i, i + 1 :] = row
                table[i + 1 :, i] = row
        return cls(space, table)

    def range_query(self, query_obj, radius: float) -> list[int]:
        n = len(self.space)
        lower = np.zeros(n, dtype=np.float64)
        alive = np.ones(n, dtype=bool)
        return self._range_scan(query_obj, radius, lower, alive, [])

    def _range_scan(
        self,
        query_obj,
        radius: float,
        lower: np.ndarray,
        alive: np.ndarray,
        results: list[int],
    ) -> list[int]:
        """Continue the eliminate/approximate loop from the given state."""
        while True:
            candidates = np.flatnonzero(alive)
            if candidates.size == 0:
                return sorted(results)
            pick = int(candidates[np.argmin(lower[candidates])])
            if lower[pick] > radius:
                return sorted(results)
            alive[pick] = False
            d = self.space.d_id(query_obj, pick)
            if d <= radius:
                results.append(pick)
            # eliminate/approximate with pick's table row
            lower = np.maximum(lower, np.abs(self.table[pick] - d))
            alive &= lower <= radius

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        n = len(self.space)
        lower = np.zeros(n, dtype=np.float64)
        alive = np.ones(n, dtype=bool)
        return self._knn_scan(query_obj, KnnHeap(k), lower, alive)

    def _knn_scan(
        self, query_obj, heap: KnnHeap, lower: np.ndarray, alive: np.ndarray
    ) -> list[Neighbor]:
        """Continue the best-first verification loop from the given state."""
        while True:
            candidates = np.flatnonzero(alive)
            if candidates.size == 0:
                return heap.neighbors()
            pick = int(candidates[np.argmin(lower[candidates])])
            if lower[pick] > heap.radius:
                return heap.neighbors()
            alive[pick] = False
            d = self.space.d_id(query_obj, pick)
            heap.consider(pick, d)
            lower = np.maximum(lower, np.abs(self.table[pick] - d))

    # -- batch queries --------------------------------------------------------
    #
    # AESA has no static pivot set: every verified object acts as a dynamic
    # pivot, and picks diverge per query after the first round.  What *is*
    # shared is round one -- all lower bounds start at zero, so every query's
    # first pick is object 0 -- which the batch variants compute with a single
    # vectorised distance call, seeding each query's elimination state with
    # one q x n matrix operation before handing over to the adaptive loop.

    def _first_round(self, queries) -> tuple[np.ndarray, np.ndarray]:
        """d(q_i, o_0) for the whole batch + the resulting q x n bounds."""
        first = self.space.d_many(self.space.dataset[0], queries)
        lower = np.abs(self.table[0][None, :] - first[:, None])
        return first, lower

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        queries = list(queries)
        if not queries:
            return []
        n = len(self.space)
        if n == 0:
            return [[] for _ in queries]
        first, lower = self._first_round(queries)
        alive = lower <= radius
        alive[:, 0] = False
        out: list[list[int]] = []
        for qi, q in enumerate(queries):
            results = [0] if first[qi] <= radius else []
            out.append(self._range_scan(q, radius, lower[qi], alive[qi], results))
        return out

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        queries = list(queries)
        if not queries:
            return []
        n = len(self.space)
        if n == 0:
            return [KnnHeap(k).neighbors() for _ in queries]
        first, lower = self._first_round(queries)
        out: list[list[Neighbor]] = []
        for qi, q in enumerate(queries):
            heap = KnnHeap(k)
            heap.consider(0, float(first[qi]))
            alive = np.ones(n, dtype=bool)
            alive[0] = False
            out.append(self._knn_scan(q, heap, lower[qi], alive))
        return out

    def insert(self, obj, object_id: int | None = None) -> int:
        """Uniform base-class signature; AESA remains static either way."""
        raise UnsupportedOperation("AESA tables are static (O(n) insert cost)")

    def storage_bytes(self) -> dict[str, int]:
        objects = sum(
            self.space.dataset.object_nbytes(i) for i in range(len(self.space))
        )
        return {"memory": int(self.table.nbytes) + objects, "disk": 0}
