"""AESA: the full O(n^2) distance table (Vidal 1986).

Stores the distance between *every* pair of objects.  Queries then need very
few distance computations: pick an unverified object (initially arbitrary,
afterwards the one with the smallest lower bound), compute its true distance,
and use its table row to tighten the lower bound of everyone else.

The paper calls AESA "a theoretical metric index" because of the quadratic
storage -- it is included here as the compdists lower-bound reference and for
small-dataset use.
"""

from __future__ import annotations

import numpy as np

from ..core.index import MetricIndex, UnsupportedOperation
from ..core.metric_space import MetricSpace
from ..core.queries import KnnHeap, Neighbor

__all__ = ["AESA"]


class AESA(MetricIndex):
    """Approximating and Eliminating Search Algorithm."""

    name = "AESA"

    def __init__(self, space: MetricSpace, table: np.ndarray):
        super().__init__(space)
        self.table = table

    @classmethod
    def build(cls, space: MetricSpace) -> "AESA":
        """Compute the n x n distance table (n(n-1)/2 computations)."""
        n = len(space)
        table = np.zeros((n, n), dtype=np.float64)
        dataset = space.dataset
        for i in range(n):
            if i + 1 < n:
                row = space.d_many(dataset[i], dataset.gather(range(i + 1, n)))
                table[i, i + 1 :] = row
                table[i + 1 :, i] = row
        return cls(space, table)

    def range_query(self, query_obj, radius: float) -> list[int]:
        n = len(self.space)
        lower = np.zeros(n, dtype=np.float64)
        alive = np.ones(n, dtype=bool)
        results: list[int] = []
        while True:
            candidates = np.flatnonzero(alive)
            if candidates.size == 0:
                return sorted(results)
            pick = int(candidates[np.argmin(lower[candidates])])
            if lower[pick] > radius:
                return sorted(results)
            alive[pick] = False
            d = self.space.d_id(query_obj, pick)
            if d <= radius:
                results.append(pick)
            # eliminate/approximate with pick's table row
            lower = np.maximum(lower, np.abs(self.table[pick] - d))
            alive &= lower <= radius

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        n = len(self.space)
        heap = KnnHeap(k)
        lower = np.zeros(n, dtype=np.float64)
        alive = np.ones(n, dtype=bool)
        while True:
            candidates = np.flatnonzero(alive)
            if candidates.size == 0:
                return heap.neighbors()
            pick = int(candidates[np.argmin(lower[candidates])])
            if lower[pick] > heap.radius:
                return heap.neighbors()
            alive[pick] = False
            d = self.space.d_id(query_obj, pick)
            heap.consider(pick, d)
            lower = np.maximum(lower, np.abs(self.table[pick] - d))

    def insert(self, obj) -> int:
        raise UnsupportedOperation("AESA tables are static (O(n) insert cost)")

    def storage_bytes(self) -> dict[str, int]:
        objects = sum(
            self.space.dataset.object_nbytes(i) for i in range(len(self.space))
        )
        return {"memory": int(self.table.nbytes) + objects, "disk": 0}
