"""AESA: the full O(n^2) distance table (Vidal 1986).

Stores the distance between *every* pair of objects.  Queries then need very
few distance computations: pick an unverified object (initially arbitrary,
afterwards the one with the smallest lower bound), compute its true distance,
and use its table row to tighten the lower bound of everyone else.

The paper calls AESA "a theoretical metric index" because of the quadratic
storage -- it is included here as the compdists lower-bound reference and for
small-dataset use.
"""

from __future__ import annotations

import numpy as np

from ..core.index import MetricIndex, UnsupportedOperation
from ..core.metric_space import MetricSpace
from ..core.queries import KnnHeap, Neighbor

__all__ = ["AESA"]


class AESA(MetricIndex):
    """Approximating and Eliminating Search Algorithm."""

    name = "AESA"

    def __init__(self, space: MetricSpace, table: np.ndarray, bounds: str = "auto"):
        super().__init__(space)
        self.table = table
        if bounds not in ("triangle", "ptolemaic", "auto"):
            raise ValueError(f"unknown bounds mode {bounds!r}")
        is_pt = bool(getattr(space.distance, "is_ptolemaic", False))
        if bounds == "ptolemaic" and not is_pt:
            raise ValueError(
                f"bounds='ptolemaic' but metric {space.distance.name!r} does "
                "not declare is_ptolemaic"
            )
        self.bounds = bounds
        self._use_ptolemaic = is_pt and bounds in ("ptolemaic", "auto")

    @classmethod
    def build(cls, space: MetricSpace, bounds: str = "auto") -> "AESA":
        """Compute the n x n distance table (n(n-1)/2 computations)."""
        n = len(space)
        table = np.zeros((n, n), dtype=np.float64)
        dataset = space.dataset
        for i in range(n):
            if i + 1 < n:
                row = space.d_many(dataset[i], dataset.gather(range(i + 1, n)))
                table[i, i + 1 :] = row
                table[i + 1 :, i] = row
        return cls(space, table, bounds=bounds)

    def _tighten(
        self, lower: np.ndarray, pick: int, d: float, prev: tuple[int, float] | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """One eliminate/approximate update with pick's table row.

        Returns ``(triangle_bounds, combined_bounds)``.  When the metric is
        Ptolemaic and a previous verified object exists, the (prev, pick)
        pair additionally contributes the Ptolemaic bound
        ``|d_prev * d(pick, o) - d * d(prev, o)| / d(prev, pick)`` -- every
        verified object is a dynamic pivot, so AESA gets pair bounds for
        free from the full table, one new pair per round.
        """
        tri = np.maximum(lower, np.abs(self.table[pick] - d))
        if not self._use_ptolemaic or prev is None:
            return tri, tri
        prev_pick, prev_d = prev
        denom = self.table[prev_pick, pick]
        if denom <= 0.0:
            return tri, tri
        pt = np.abs(prev_d * self.table[pick] - d * self.table[prev_pick]) / denom
        return tri, np.maximum(tri, pt)

    def range_query(self, query_obj, radius: float) -> list[int]:
        n = len(self.space)
        lower = np.zeros(n, dtype=np.float64)
        alive = np.ones(n, dtype=bool)
        return self._range_scan(query_obj, radius, lower, alive, [])

    def _range_scan(
        self,
        query_obj,
        radius: float,
        lower: np.ndarray,
        alive: np.ndarray,
        results: list[int],
        prev: tuple[int, float] | None = None,
    ) -> list[int]:
        """Continue the eliminate/approximate loop from the given state."""
        counters = self.space.counters
        while True:
            candidates = np.flatnonzero(alive)
            if candidates.size == 0:
                return sorted(results)
            pick = int(candidates[np.argmin(lower[candidates])])
            if lower[pick] > radius:
                return sorted(results)
            alive[pick] = False
            d = self.space.d_id(query_obj, pick)
            if d <= radius:
                results.append(pick)
            tri, lower = self._tighten(lower, pick, d, prev)
            n_tri = int(np.count_nonzero(alive & (tri > radius)))
            n_pt = int(np.count_nonzero(alive & (lower > radius))) - n_tri
            counters.add_prune_stages(refine=n_tri, ptolemaic=n_pt)
            alive &= lower <= radius
            prev = (pick, d)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        n = len(self.space)
        lower = np.zeros(n, dtype=np.float64)
        alive = np.ones(n, dtype=bool)
        return self._knn_scan(query_obj, KnnHeap(k), lower, alive)

    def _knn_scan(
        self,
        query_obj,
        heap: KnnHeap,
        lower: np.ndarray,
        alive: np.ndarray,
        prev: tuple[int, float] | None = None,
    ) -> list[Neighbor]:
        """Continue the best-first verification loop from the given state."""
        while True:
            candidates = np.flatnonzero(alive)
            if candidates.size == 0:
                return heap.neighbors()
            pick = int(candidates[np.argmin(lower[candidates])])
            if lower[pick] > heap.radius:
                return heap.neighbors()
            alive[pick] = False
            d = self.space.d_id(query_obj, pick)
            heap.consider(pick, d)
            _, lower = self._tighten(lower, pick, d, prev)
            prev = (pick, d)

    # -- batch queries --------------------------------------------------------
    #
    # AESA has no static pivot set: every verified object acts as a dynamic
    # pivot, and picks diverge per query after the first round.  What *is*
    # shared is round one -- all lower bounds start at zero, so every query's
    # first pick is object 0 -- which the batch variants compute with a single
    # vectorised distance call, seeding each query's elimination state with
    # one q x n matrix operation before handing over to the adaptive loop.

    def _first_round(self, queries) -> tuple[np.ndarray, np.ndarray]:
        """d(q_i, o_0) for the whole batch + the resulting q x n bounds."""
        first = self.space.d_many(self.space.dataset[0], queries)
        lower = np.abs(self.table[0][None, :] - first[:, None])
        return first, lower

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        queries = list(queries)
        if not queries:
            return []
        n = len(self.space)
        if n == 0:
            return [[] for _ in queries]
        first, lower = self._first_round(queries)
        alive = lower <= radius
        alive[:, 0] = False
        out: list[list[int]] = []
        for qi, q in enumerate(queries):
            results = [0] if first[qi] <= radius else []
            dead = lower[qi] > radius
            dead[0] = False
            self.space.counters.add_prune_stages(refine=int(dead.sum()))
            # seed prev with round one's pick so the continued scan makes
            # the same Ptolemaic pair decisions as the sequential path
            out.append(
                self._range_scan(
                    q,
                    radius,
                    lower[qi],
                    alive[qi],
                    results,
                    prev=(0, float(first[qi])),
                )
            )
        return out

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        queries = list(queries)
        if not queries:
            return []
        n = len(self.space)
        if n == 0:
            return [KnnHeap(k).neighbors() for _ in queries]
        first, lower = self._first_round(queries)
        out: list[list[Neighbor]] = []
        for qi, q in enumerate(queries):
            heap = KnnHeap(k)
            heap.consider(0, float(first[qi]))
            alive = np.ones(n, dtype=bool)
            alive[0] = False
            out.append(
                self._knn_scan(q, heap, lower[qi], alive, prev=(0, float(first[qi])))
            )
        return out

    def insert(self, obj, object_id: int | None = None) -> int:
        """Uniform base-class signature; AESA remains static either way."""
        raise UnsupportedOperation("AESA tables are static (O(n) insert cost)")

    def storage_bytes(self) -> dict[str, int]:
        objects = sum(
            self.space.dataset.object_nbytes(i) for i in range(len(self.space))
        )
        return {"memory": int(self.table.nbytes) + objects, "disk": 0}
