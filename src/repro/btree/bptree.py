"""Paged B+-tree.

The substrate of three indexes in the study: the M-index and M-index* (keys
are iDistance-style reals), the SPB-tree (keys are Hilbert values) and the
OmniB+-tree (one tree per pivot).  Design points:

* **Paged**: every node lives on one page of a
  :class:`~repro.storage.pager.Pager`; all traffic is counted as PA.
* **Duplicate keys** are allowed (many objects share an SFC value or an
  iDistance key); deletion therefore matches on (key, value).
* **Augmentation**: an optional :class:`Augmentation` computes a summary per
  child entry that parents store alongside the child pointer -- the SPB-tree
  uses it to maintain the MBB of each subtree in discretised pivot space
  (the paper's "min/max SFC values" per non-leaf entry).  Summaries are
  maintained through inserts, deletes and splits.
* **Bulk load** builds a compact tree from sorted input (used at index
  construction time, like the paper's bottom-up builds).

Node fan-out is derived from the page size and a measured per-entry byte
size, the way a real system computes fan-out from its page format.
"""

from __future__ import annotations

import bisect
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..storage.pager import Pager

__all__ = ["BPlusTree", "Augmentation", "LeafNode", "InternalNode"]


@dataclass
class Augmentation:
    """Subtree summaries stored with parent entries.

    Attributes:
        from_entry: summary of one leaf entry ``(key, value) -> aux``.
        merge: combine child summaries ``list[aux] -> aux``.
    """

    from_entry: Callable[[Any, Any], Any]
    merge: Callable[[list], Any]


@dataclass
class LeafNode:
    keys: list = field(default_factory=list)
    values: list = field(default_factory=list)
    next_page: int | None = None

    is_leaf = True

    def __len__(self) -> int:
        return len(self.keys)


@dataclass
class InternalNode:
    # separators[i] is the smallest key reachable under children[i + 1]
    separators: list = field(default_factory=list)
    children: list = field(default_factory=list)
    aux: list = field(default_factory=list)  # one summary per child (or None)

    is_leaf = False

    def __len__(self) -> int:
        return len(self.children)


class BPlusTree:
    """B+-tree over an external pager; see module docstring."""

    def __init__(
        self,
        pager: Pager,
        augmentation: Augmentation | None = None,
        leaf_capacity: int | None = None,
        internal_capacity: int | None = None,
    ):
        self.pager = pager
        self.augmentation = augmentation
        self._leaf_capacity = leaf_capacity
        self._internal_capacity = internal_capacity
        self.root_page: int = self.pager.allocate()
        self.height = 1
        self._size = 0
        self.pager.write(self.root_page, LeafNode())

    # -- capacity ---------------------------------------------------------

    def _entry_bytes(self, key, value) -> int:
        return len(pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL))

    def _ensure_capacities(self, key, value) -> None:
        if self._leaf_capacity is None:
            per_entry = max(8, self._entry_bytes(key, value))
            self._leaf_capacity = max(4, (self.pager.page_size - 64) // per_entry)
        if self._internal_capacity is None:
            per_entry = max(8, self._entry_bytes(key, 0) + 16)
            self._internal_capacity = max(4, (self.pager.page_size - 64) // per_entry)

    @property
    def leaf_capacity(self) -> int:
        return self._leaf_capacity or 0

    def __len__(self) -> int:
        return self._size

    # -- node IO ------------------------------------------------------------

    def _read(self, page_id: int):
        return self.pager.read(page_id)

    def _write(self, page_id: int, node) -> None:
        self.pager.write(page_id, node)

    def read_node(self, page_id: int):
        """Public node access for index-specific traversals (SPB-tree)."""
        return self._read(page_id)

    # -- augmentation helpers --------------------------------------------------

    def _leaf_summary(self, leaf: LeafNode):
        if self.augmentation is None or not leaf.keys:
            return None
        summaries = [
            self.augmentation.from_entry(k, v) for k, v in zip(leaf.keys, leaf.values)
        ]
        return self.augmentation.merge(summaries)

    def _internal_summary(self, node: InternalNode):
        if self.augmentation is None:
            return None
        present = [a for a in node.aux if a is not None]
        return self.augmentation.merge(present) if present else None

    def _node_summary(self, node):
        return self._leaf_summary(node) if node.is_leaf else self._internal_summary(node)

    # -- search ------------------------------------------------------------------

    def _child_index(self, node: InternalNode, key) -> int:
        # bisect_left keeps the descent at-or-before the first duplicate of
        # ``key`` under the weak separator invariant (left <= sep <= right),
        # so search/range/delete can walk the leaf chain rightwards.
        return bisect.bisect_left(node.separators, key)

    def _find_leaf(self, key) -> tuple[int, LeafNode, list[tuple[int, InternalNode, int]]]:
        """Descend to the leaf for ``key``; returns (page, leaf, path).

        ``path`` lists (page_id, node, child_position) top-down.
        """
        path: list[tuple[int, InternalNode, int]] = []
        page_id = self.root_page
        node = self._read(page_id)
        while not node.is_leaf:
            pos = self._child_index(node, key)
            path.append((page_id, node, pos))
            page_id = node.children[pos]
            node = self._read(page_id)
        return page_id, node, path

    def search(self, key) -> list:
        """All values stored under exactly ``key``."""
        page_id, leaf, _ = self._find_leaf(key)
        results: list = []
        while True:
            start = bisect.bisect_left(leaf.keys, key)
            for i in range(start, len(leaf.keys)):
                if leaf.keys[i] != key:
                    return results
                results.append(leaf.values[i])
            if leaf.next_page is None:
                return results
            leaf = self._read(leaf.next_page)

    def range_scan(self, low, high) -> Iterator[tuple[Any, Any]]:
        """Yield (key, value) pairs with ``low <= key <= high`` in key order."""
        if low > high:
            return
        _, leaf, _ = self._find_leaf(low)
        while True:
            start = bisect.bisect_left(leaf.keys, low)
            for i in range(start, len(leaf.keys)):
                if leaf.keys[i] > high:
                    return
                yield leaf.keys[i], leaf.values[i]
            if leaf.next_page is None:
                return
            leaf = self._read(leaf.next_page)

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All (key, value) pairs in key order."""
        page_id = self.root_page
        node = self._read(page_id)
        while not node.is_leaf:
            page_id = node.children[0]
            node = self._read(page_id)
        while True:
            yield from zip(node.keys, node.values)
            if node.next_page is None:
                return
            node = self._read(node.next_page)

    # -- insert ---------------------------------------------------------------

    def insert(self, key, value) -> None:
        self._ensure_capacities(key, value)
        page_id, leaf, path = self._find_leaf(key)
        pos = bisect.bisect_right(leaf.keys, key)
        leaf.keys.insert(pos, key)
        leaf.values.insert(pos, value)
        self._size += 1

        if len(leaf) <= self._leaf_capacity:
            self._write(page_id, leaf)
            self._refresh_path(path, page_id, leaf)
            return

        # split leaf
        mid = len(leaf) // 2
        right = LeafNode(
            keys=leaf.keys[mid:], values=leaf.values[mid:], next_page=leaf.next_page
        )
        right_page = self.pager.allocate()
        leaf.keys, leaf.values = leaf.keys[:mid], leaf.values[:mid]
        leaf.next_page = right_page
        self._write(page_id, leaf)
        self._write(right_page, right)
        self._insert_into_parent(
            path, page_id, leaf, right.keys[0], right_page, right
        )

    def _insert_into_parent(
        self, path, left_page: int, left_node, separator, right_page: int, right_node
    ) -> None:
        left_aux = self._node_summary(left_node)
        right_aux = self._node_summary(right_node)
        while path:
            parent_page, parent, pos = path.pop()
            parent.children[pos] = left_page
            parent.aux[pos] = left_aux
            parent.separators.insert(pos, separator)
            parent.children.insert(pos + 1, right_page)
            parent.aux.insert(pos + 1, right_aux)
            if len(parent) <= self._internal_capacity:
                self._write(parent_page, parent)
                self._refresh_path(path, parent_page, parent)
                return
            # split internal node: middle separator moves up
            mid = len(parent.separators) // 2
            up_key = parent.separators[mid]
            right = InternalNode(
                separators=parent.separators[mid + 1 :],
                children=parent.children[mid + 1 :],
                aux=parent.aux[mid + 1 :],
            )
            parent.separators = parent.separators[:mid]
            parent.children = parent.children[: mid + 1]
            parent.aux = parent.aux[: mid + 1]
            new_right_page = self.pager.allocate()
            self._write(parent_page, parent)
            self._write(new_right_page, right)
            left_page, left_node = parent_page, parent
            right_page, right_node = new_right_page, right
            separator = up_key
            left_aux = self._internal_summary(parent)
            right_aux = self._internal_summary(right)
        # root split
        new_root = InternalNode(
            separators=[separator],
            children=[left_page, right_page],
            aux=[left_aux, right_aux],
        )
        self.root_page = self.pager.allocate()
        self._write(self.root_page, new_root)
        self.height += 1

    def _refresh_path(self, path, child_page: int, child_node) -> None:
        """Propagate augmentation changes up the (already-visited) path."""
        if self.augmentation is None:
            return
        summary = self._node_summary(child_node)
        for parent_page, parent, pos in reversed(path):
            if parent.aux[pos] == summary:
                return
            parent.aux[pos] = summary
            self._write(parent_page, parent)
            summary = self._internal_summary(parent)

    # -- delete -----------------------------------------------------------------

    def delete(self, key, value=...) -> bool:
        """Remove one entry with ``key`` (and ``value``, when given).

        Returns True when an entry was removed.  Underflowing nodes borrow
        from or merge with a sibling; the root collapses when it has a single
        child.
        """
        page_id, leaf, path = self._find_leaf(key)
        walked = False
        # locate entry (may continue into following leaves on duplicates)
        while True:
            pos = bisect.bisect_left(leaf.keys, key)
            found = -1
            for i in range(pos, len(leaf.keys)):
                if leaf.keys[i] != key:
                    return False
                if value is ... or leaf.values[i] == value:
                    found = i
                    break
            if found >= 0:
                break
            if leaf.next_page is None:
                return False
            # walk right through duplicates of ``key``
            page_id = leaf.next_page
            leaf = self._read(page_id)
            walked = True
        del leaf.keys[found]
        del leaf.values[found]
        self._size -= 1
        self._write(page_id, leaf)
        if walked:
            # No descend path for this leaf.  Skip rebalancing: an underfull
            # leaf is operationally harmless, and parent MBB summaries only
            # ever shrink on delete, so stale ones stay conservative (safe).
            return True
        self._rebalance(path, page_id, leaf)
        return True

    def _min_fill(self, capacity: int) -> int:
        return max(1, capacity // 2)

    def _rebalance(self, path, page_id: int, node) -> None:
        self._refresh_path(path, page_id, node)
        capacity = self._leaf_capacity if node.is_leaf else self._internal_capacity
        if capacity is None or len(node) >= self._min_fill(capacity) or not path:
            self._collapse_root()
            return
        parent_page, parent, pos = path[-1]
        # try borrowing from siblings, else merge
        if pos > 0:
            left_page = parent.children[pos - 1]
            left = self._read(left_page)
            if len(left) > self._min_fill(capacity):
                self._borrow_from_left(parent, pos, left, node)
                self._write(left_page, left)
                self._write(page_id, node)
                parent.aux[pos - 1] = self._node_summary(left)
                parent.aux[pos] = self._node_summary(node)
                self._write(parent_page, parent)
                self._refresh_path(path[:-1], parent_page, parent)
                return
        if pos < len(parent.children) - 1:
            right_page = parent.children[pos + 1]
            right = self._read(right_page)
            if len(right) > self._min_fill(capacity):
                self._borrow_from_right(parent, pos, node, right)
                self._write(right_page, right)
                self._write(page_id, node)
                parent.aux[pos] = self._node_summary(node)
                parent.aux[pos + 1] = self._node_summary(right)
                self._write(parent_page, parent)
                self._refresh_path(path[:-1], parent_page, parent)
                return
        # merge with a sibling
        if pos > 0:
            left_page = parent.children[pos - 1]
            left = self._read(left_page)
            self._merge(parent, pos - 1, left, node)
            self._write(left_page, left)
            self.pager.free(page_id)
            parent.aux[pos - 1] = self._node_summary(left)
            del parent.separators[pos - 1]
            del parent.children[pos]
            del parent.aux[pos]
        else:
            right_page = parent.children[pos + 1]
            right = self._read(right_page)
            self._merge(parent, pos, node, right)
            self._write(page_id, node)
            self.pager.free(right_page)
            parent.aux[pos] = self._node_summary(node)
            del parent.separators[pos]
            del parent.children[pos + 1]
            del parent.aux[pos + 1]
        self._write(parent_page, parent)
        self._rebalance(path[:-1], parent_page, parent)

    def _borrow_from_left(self, parent, pos, left, node) -> None:
        if node.is_leaf:
            node.keys.insert(0, left.keys.pop())
            node.values.insert(0, left.values.pop())
            parent.separators[pos - 1] = node.keys[0]
        else:
            node.separators.insert(0, parent.separators[pos - 1])
            parent.separators[pos - 1] = left.separators.pop()
            node.children.insert(0, left.children.pop())
            node.aux.insert(0, left.aux.pop())

    def _borrow_from_right(self, parent, pos, node, right) -> None:
        if node.is_leaf:
            node.keys.append(right.keys.pop(0))
            node.values.append(right.values.pop(0))
            parent.separators[pos] = right.keys[0]
        else:
            node.separators.append(parent.separators[pos])
            parent.separators[pos] = right.separators.pop(0)
            node.children.append(right.children.pop(0))
            node.aux.append(right.aux.pop(0))

    def _merge(self, parent, left_pos, left, right) -> None:
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_page = right.next_page
        else:
            left.separators.append(parent.separators[left_pos])
            left.separators.extend(right.separators)
            left.children.extend(right.children)
            left.aux.extend(right.aux)

    def _collapse_root(self) -> None:
        node = self._read(self.root_page)
        while not node.is_leaf and len(node.children) == 1:
            old_root = self.root_page
            self.root_page = node.children[0]
            self.pager.free(old_root)
            self.height -= 1
            node = self._read(self.root_page)

    # -- bulk load ------------------------------------------------------------------

    def bulk_load(self, items, fill_factor: float = 0.85) -> None:
        """Build the tree bottom-up from sorted ``(key, value)`` pairs.

        Requires an empty tree.  ``fill_factor`` leaves slack for later
        inserts, as real loaders do.
        """
        items = list(items)
        if self._size:
            raise RuntimeError("bulk_load requires an empty tree")
        if not items:
            return
        for i in range(1, len(items)):
            if items[i - 1][0] > items[i][0]:
                raise ValueError("bulk_load input must be sorted by key")
        self._ensure_capacities(*items[0])
        per_leaf = max(2, int(self._leaf_capacity * fill_factor))
        per_internal = max(2, int(self._internal_capacity * fill_factor))

        self.pager.free(self.root_page)

        # build leaves
        leaves: list[tuple[int, Any, Any]] = []  # (page, first_key, summary)
        leaf_pages: list[int] = []
        chunks = [items[i : i + per_leaf] for i in range(0, len(items), per_leaf)]
        # avoid a dangling underfull final leaf
        if len(chunks) > 1 and len(chunks[-1]) < max(1, per_leaf // 2):
            spill = chunks.pop()
            chunks[-1].extend(spill)
        for chunk in chunks:
            page = self.pager.allocate()
            leaf_pages.append(page)
        for i, chunk in enumerate(chunks):
            leaf = LeafNode(
                keys=[k for k, _ in chunk],
                values=[v for _, v in chunk],
                next_page=leaf_pages[i + 1] if i + 1 < len(leaf_pages) else None,
            )
            self._write(leaf_pages[i], leaf)
            leaves.append((leaf_pages[i], leaf.keys[0], self._leaf_summary(leaf)))

        # build internal levels
        level = leaves
        self.height = 1
        while len(level) > 1:
            next_level = []
            groups = [level[i : i + per_internal] for i in range(0, len(level), per_internal)]
            if len(groups) > 1 and len(groups[-1]) < 2:
                groups[-2].extend(groups.pop())
            for group in groups:
                node = InternalNode(
                    separators=[first_key for _, first_key, _ in group[1:]],
                    children=[page for page, _, _ in group],
                    aux=[aux for _, _, aux in group],
                )
                page = self.pager.allocate()
                self._write(page, node)
                next_level.append((page, group[0][1], self._internal_summary(node)))
            level = next_level
            self.height += 1
        self.root_page = level[0][0]
        self._size = len(items)

    # -- diagnostics -------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError when structural invariants are violated."""
        keys = [k for k, _ in self.items()]
        assert keys == sorted(keys), "leaf chain out of order"
        assert len(keys) == self._size, "size counter out of sync"
        self._check_node(self.root_page, None, None, depth=0)

    def _check_node(self, page_id: int, low, high, depth: int) -> int:
        node = self._read(page_id)
        if node.is_leaf:
            for k in node.keys:
                assert low is None or k >= low, "leaf key below separator"
                assert high is None or k <= high, "leaf key above separator"
            return 1
        assert len(node.children) == len(node.separators) + 1
        assert len(node.aux) == len(node.children)
        depths = set()
        bounds = [low, *node.separators, high]
        for i, child in enumerate(node.children):
            depths.add(self._check_node(child, bounds[i], bounds[i + 1], depth + 1))
        assert len(depths) == 1, "unbalanced subtrees"
        return depths.pop() + 1
