"""Paged B+-tree substrate (M-index, SPB-tree, OmniB+-tree)."""

from .bptree import Augmentation, BPlusTree, InternalNode, LeafNode

__all__ = ["Augmentation", "BPlusTree", "InternalNode", "LeafNode"]
