"""Sharded index: partitioned construction and fan-out queries.

Section 6.2 of the paper discusses accelerating construction by
parallelisation: "(iii) as the data can be partitioned into disjoint parts,
multiple index structures ... instead of one can be constructed in
parallel."  This module implements that third route as a first-class
combinator: the dataset is split into ``n_shards`` disjoint parts, one inner
index is built per part (independently -- embarrassingly parallel), and
queries fan out:

* MRQ(q, r) is the union of per-shard MRQs (exact, no post-filtering);
* MkNNQ(q, k) asks every shard for its local k and merges -- the global
  answer is contained in the union of local answers, so the merge is exact.

Shard construction is expressed as independent closures; a caller with a
process pool can map them concurrently -- the combinator itself stays
deterministic and single-process by default.  An optional ``executor`` (any
object with a ``map(fn, iterable)`` method, e.g.
``concurrent.futures.ThreadPoolExecutor``) parallelises shard construction
and batch-query fan-out.

Cost accounting comes in two modes:

* **shared counters** (default): every shard's sub-space increments the
  parent's :class:`~repro.core.counters.CostCounters` directly.  The
  increments are lock-protected, so thread pools keep counts exact -- but a
  process pool's workers mutate pickled *copies* and the counts are lost.
* **per-shard counters** (``per_shard_counters=True``): each shard owns a
  private ``CostCounters``; every shard call measures its own before/after
  delta *inside the call* and the parent folds the deltas into its
  counters via :meth:`CostCounters.merge`.  Deltas travel with the result
  values, so they survive process boundaries and a
  ``concurrent.futures.ProcessPoolExecutor`` reports exactly the same
  counts as a thread pool or the serial loop.

The batch path is where sharding pays off for throughput: ``*_query_many``
fans the *whole* query batch out to each shard once and merges with one pass
per shard, instead of crossing every shard once per query.

Topology helpers: :meth:`ShardedIndex.split` turns a sharded index into
standalone single-shard parts whose answers already carry **global** ids
(each part is itself a one-shard ``ShardedIndex``), so a part can be
snapshotted and served by its own process; :meth:`ShardedIndex.merge`
reassembles parts into one index, and the static
:meth:`merge_range_answers` / :meth:`merge_knn_answers` helpers are the
single definition of the exact merge -- the in-process fan-out here and
the multi-process cluster router (:mod:`repro.service.cluster`) both call
them, so scatter-gather answers cannot drift from single-process ones.
"""

from __future__ import annotations

from operator import methodcaller
from typing import Callable, Sequence

import numpy as np

from .counters import CostCounters, CostSnapshot
from .index import MetricIndex
from .metric_space import MetricSpace
from .queries import KnnHeap, Neighbor

__all__ = ["ShardedIndex"]


def _invoke_shard(task: tuple) -> tuple:
    """Run one shard method and return ``(result, counter delta)``.

    Module-level (not a closure) so a ``ProcessPoolExecutor`` can pickle
    it; the measured delta rides back with the result, which is the only
    channel that crosses a process boundary.
    """
    shard, method, args = task
    counters = shard.space.counters
    before = counters.snapshot()
    result = getattr(shard, method)(*args)
    delta = counters.snapshot() - before
    return result, delta


class ShardedIndex(MetricIndex):
    """Disjoint data shards, one inner index each, exact merged answers."""

    name = "Sharded"

    def __init__(
        self,
        space: MetricSpace,
        shards: list[MetricIndex],
        shard_ids: list[Sequence[int]],
        executor=None,
        per_shard_counters: bool = False,
    ):
        super().__init__(space)
        self.shards = shards
        self._shard_ids = [list(ids) for ids in shard_ids]
        self.executor = executor
        self.per_shard_counters = per_shard_counters

    def _merge_delta(self, shard: MetricIndex, delta: CostSnapshot) -> None:
        """Fold a shard's measured delta into the parent's counters.

        Guard against aliasing: if the shard's counters *are* the parent's
        (e.g. a blanket counter rebind collapsed them), the work was
        already counted directly and merging the delta would double it.
        """
        if shard.space.counters is self.space.counters:
            return
        self.space.counters.merge(delta)

    def _call_shard(self, shard: MetricIndex, method: str, *args):
        """One serial shard call, honouring the counter mode."""
        if not self.per_shard_counters:
            return getattr(shard, method)(*args)
        result, delta = _invoke_shard((shard, method, args))
        self._merge_delta(shard, delta)
        return result

    def _map_shards(self, method: str, *args) -> list:
        """Run ``method(*args)`` on every shard, via the executor if set.

        In per-shard-counters mode every call returns its counter delta
        alongside the result (measured inside the worker, so process pools
        are exact) and the deltas are merged here, in submission order.
        """
        if self.per_shard_counters:
            tasks = [(shard, method, args) for shard in self.shards]
            if self.executor is not None:
                pairs = list(self.executor.map(_invoke_shard, tasks))
            else:
                pairs = [_invoke_shard(task) for task in tasks]
            results = []
            for shard, (result, delta) in zip(self.shards, pairs):
                self._merge_delta(shard, delta)
                results.append(result)
            return results
        if self.executor is not None:
            # methodcaller (unlike a closure) survives pickling, so even the
            # shared-counters path runs under a process pool -- though only
            # per_shard_counters keeps the *counts* exact there
            return list(self.executor.map(methodcaller(method, *args), self.shards))
        return [getattr(shard, method)(*args) for shard in self.shards]

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        build_shard: Callable[[MetricSpace], MetricIndex],
        n_shards: int = 4,
        seed: int = 0,
        executor=None,
        per_shard_counters: bool = False,
    ) -> "ShardedIndex":
        """Partition the dataset round-robin and build one index per part.

        Args:
            space: the full (counted) metric space.
            build_shard: factory receiving a shard's MetricSpace and
                returning a built index; e.g.
                ``lambda s: MVPT.build(s, select_pivots(s, 5))``.  With a
                process pool the factory must be picklable (a module-level
                function or ``functools.partial``, not a lambda).
            n_shards: number of disjoint parts.
            seed: shuffle seed for the partition.
            executor: optional ``map``-capable pool; shard construction (an
                embarrassingly parallel loop) and batch-query fan-out run
                through it.  The built index keeps it for query time.
            per_shard_counters: give each shard a private
                :class:`CostCounters` and merge per-call deltas into the
                parent's counters (see module docstring).  Required for a
                ``ProcessPoolExecutor``; with the default shared counters a
                process pool would silently lose all shard counts.
        """
        n = len(space)
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        rng = np.random.default_rng(seed)
        order = rng.permutation(n)
        # membership is random, but each shard's id list is kept ascending:
        # local storage order then matches global id order, so the shards'
        # canonical (distance, id) kNN tie-breaking agrees with the global
        # one and merged answers equal the single-index/brute-force answers
        shard_ids = [
            sorted(int(i) for i in order[s::n_shards]) for s in range(n_shards)
        ]
        sub_spaces = [
            MetricSpace(
                space.dataset.subset(ids),
                CostCounters() if per_shard_counters else space.counters,
            )
            for ids in shard_ids
        ]
        if executor is not None:
            shards = list(executor.map(build_shard, sub_spaces))
        else:
            shards = [build_shard(sub) for sub in sub_spaces]
        if per_shard_counters:
            # fold construction costs (accumulated on the private counters,
            # possibly in worker processes) into the parent's accounting
            for shard in shards:
                space.counters.merge(shard.space.counters)
        return cls(
            space,
            shards,
            shard_ids,
            executor=executor,
            per_shard_counters=per_shard_counters,
        )

    # -- exact merges (the single definition, shared with the cluster router) ---

    @staticmethod
    def merge_range_answers(per_part) -> list[int]:
        """Exact MRQ merge of disjoint parts' answers (global ids).

        The shards hold disjoint data, so the union needs no
        deduplication; sorting ascending is the canonical answer order
        every index in the study returns.
        """
        merged: list[int] = []
        for part in per_part:
            merged.extend(part)
        return sorted(merged)

    @staticmethod
    def merge_knn_answers(per_part, k: int) -> list[Neighbor]:
        """Exact MkNNQ merge of parts' local top-k answers (global ids).

        The global k nearest are contained in the union of per-part
        answers, and :class:`KnnHeap`'s canonical ``(distance, id)``
        tie-breaking makes the result independent of part order -- so a
        scatter-gather merge is bit-for-bit the single-index answer.
        """
        heap = KnnHeap(k)
        for part in per_part:
            for neighbor in part:
                heap.consider(neighbor.object_id, neighbor.distance)
        return heap.neighbors()

    # -- queries ---------------------------------------------------------------

    def range_query(self, query_obj, radius: float) -> list[int]:
        per_part = []
        for shard, ids in zip(self.shards, self._shard_ids):
            local_results = self._call_shard(shard, "range_query", query_obj, radius)
            per_part.append([ids[local] for local in local_results])
        return self.merge_range_answers(per_part)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        per_part = []
        for shard, ids in zip(self.shards, self._shard_ids):
            per_part.append(
                [
                    Neighbor(neighbor.distance, ids[neighbor.object_id])
                    for neighbor in self._call_shard(shard, "knn_query", query_obj, k)
                ]
            )
        return self.merge_knn_answers(per_part, k)

    # -- batch queries ----------------------------------------------------------

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        """Batch fan-out: each shard answers the whole batch once, and the
        union merge runs one pass per shard instead of one per query."""
        queries = list(queries)
        if not queries:
            return []
        per_shard = self._map_shards("range_query_many", queries, radius)
        mapped = [
            [[ids[local] for local in results] for results in batches]
            for ids, batches in zip(self._shard_ids, per_shard)
        ]
        return [self.merge_range_answers(parts) for parts in zip(*mapped)]

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        """Batch fan-out with one exact k-merge pass per shard."""
        queries = list(queries)
        if not queries:
            return []
        per_shard = self._map_shards("knn_query_many", queries, k)
        mapped = [
            [
                [Neighbor(n.distance, ids[n.object_id]) for n in neighbors]
                for neighbors in batches
            ]
            for ids, batches in zip(self._shard_ids, per_shard)
        ]
        return [self.merge_knn_answers(parts, k) for parts in zip(*mapped)]

    # -- topology ---------------------------------------------------------------

    def split(self) -> list["ShardedIndex"]:
        """One standalone single-shard index per shard, answering global ids.

        Each part wraps one inner shard together with its global id list,
        so ``part.range_query(...)`` / ``part.knn_query(...)`` return ids
        in the *parent's* id space -- a part can be snapshotted
        (:func:`repro.service.snapshot.save_index`) and served by its own
        process, and a router merging the parts' answers with
        :meth:`merge_range_answers` / :meth:`merge_knn_answers` reproduces
        this index's answers bit-for-bit.  The parts share the shards (no
        copies); the executor is not carried over.
        """
        return [
            ShardedIndex(shard.space, [shard], [list(ids)])
            for shard, ids in zip(self.shards, self._shard_ids)
        ]

    @classmethod
    def merge(cls, space: MetricSpace, parts: Sequence["ShardedIndex"]) -> "ShardedIndex":
        """Reassemble split parts into one sharded index over ``space``.

        The inverse of :meth:`split`: flattens every part's shards and
        global id lists.  The id lists must be disjoint and cover
        ``space`` exactly.
        """
        shards: list[MetricIndex] = []
        shard_ids: list[list[int]] = []
        for part in parts:
            shards.extend(part.shards)
            shard_ids.extend(list(ids) for ids in part._shard_ids)
        flat = [i for ids in shard_ids for i in ids]
        if len(flat) != len(set(flat)) or (flat and sorted(flat) != list(range(len(space)))):
            raise ValueError(
                "parts' id lists must disjointly cover the space "
                f"(got {len(flat)} ids over {len(space)} objects)"
            )
        return cls(space, shards, shard_ids)

    # -- snapshots --------------------------------------------------------------

    def prepare_snapshot(self) -> None:
        """Recurse into the shards; the executor itself is never pickled."""
        for shard in self.shards:
            shard.prepare_snapshot()

    def __getstate__(self) -> dict:
        # live thread/process pools cannot be serialised; a restored sharded
        # index starts serial and the caller re-attaches an executor
        state = self.__dict__.copy()
        state["executor"] = None
        return state

    # -- accounting -------------------------------------------------------------

    def storage_bytes(self) -> dict[str, int]:
        memory = disk = 0
        for shard in self.shards:
            storage = shard.storage_bytes()
            memory += storage["memory"]
            disk += storage["disk"]
        return {"memory": memory, "disk": disk}
