"""Sharded index: partitioned construction and fan-out queries.

Section 6.2 of the paper discusses accelerating construction by
parallelisation: "(iii) as the data can be partitioned into disjoint parts,
multiple index structures ... instead of one can be constructed in
parallel."  This module implements that third route as a first-class
combinator: the dataset is split into ``n_shards`` disjoint parts, one inner
index is built per part (independently -- embarrassingly parallel), and
queries fan out:

* MRQ(q, r) is the union of per-shard MRQs (exact, no post-filtering);
* MkNNQ(q, k) asks every shard for its local k and merges -- the global
  answer is contained in the union of local answers, so the merge is exact.

Shard construction is expressed as independent closures; a caller with a
process pool can map them concurrently -- the combinator itself stays
deterministic and single-process.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .index import MetricIndex
from .metric_space import MetricSpace
from .queries import KnnHeap, Neighbor

__all__ = ["ShardedIndex"]


class ShardedIndex(MetricIndex):
    """Disjoint data shards, one inner index each, exact merged answers."""

    name = "Sharded"

    def __init__(
        self,
        space: MetricSpace,
        shards: list[MetricIndex],
        shard_ids: list[Sequence[int]],
    ):
        super().__init__(space)
        self.shards = shards
        self._shard_ids = [list(ids) for ids in shard_ids]

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        build_shard: Callable[[MetricSpace], MetricIndex],
        n_shards: int = 4,
        seed: int = 0,
    ) -> "ShardedIndex":
        """Partition the dataset round-robin and build one index per part.

        Args:
            space: the full (counted) metric space.
            build_shard: factory receiving a shard's MetricSpace (sharing the
                parent's counters) and returning a built index; e.g.
                ``lambda s: MVPT.build(s, select_pivots(s, 5))``.
            n_shards: number of disjoint parts.
            seed: shuffle seed for the partition.
        """
        n = len(space)
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        rng = np.random.default_rng(seed)
        order = rng.permutation(n)
        shard_ids = [
            [int(i) for i in order[s::n_shards]] for s in range(n_shards)
        ]
        shards: list[MetricIndex] = []
        for ids in shard_ids:
            sub_dataset = space.dataset.subset(ids)
            sub_space = MetricSpace(sub_dataset, space.counters)
            shards.append(build_shard(sub_space))
        return cls(space, shards, shard_ids)

    # -- queries ---------------------------------------------------------------

    def range_query(self, query_obj, radius: float) -> list[int]:
        results: list[int] = []
        for shard, ids in zip(self.shards, self._shard_ids):
            results.extend(ids[local] for local in shard.range_query(query_obj, radius))
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        heap = KnnHeap(k)
        for shard, ids in zip(self.shards, self._shard_ids):
            for neighbor in shard.knn_query(query_obj, k):
                heap.consider(ids[neighbor.object_id], neighbor.distance)
        return heap.neighbors()

    # -- accounting -------------------------------------------------------------

    def storage_bytes(self) -> dict[str, int]:
        memory = disk = 0
        for shard in self.shards:
            storage = shard.storage_bytes()
            memory += storage["memory"]
            disk += storage["disk"]
        return {"memory": memory, "disk": disk}
