"""Sharded index: partitioned construction and fan-out queries.

Section 6.2 of the paper discusses accelerating construction by
parallelisation: "(iii) as the data can be partitioned into disjoint parts,
multiple index structures ... instead of one can be constructed in
parallel."  This module implements that third route as a first-class
combinator: the dataset is split into ``n_shards`` disjoint parts, one inner
index is built per part (independently -- embarrassingly parallel), and
queries fan out:

* MRQ(q, r) is the union of per-shard MRQs (exact, no post-filtering);
* MkNNQ(q, k) asks every shard for its local k and merges -- the global
  answer is contained in the union of local answers, so the merge is exact.

Shard construction is expressed as independent closures; a caller with a
process pool can map them concurrently -- the combinator itself stays
deterministic and single-process by default.  An optional ``executor`` (any
object with a ``map(fn, iterable)`` method, e.g.
``concurrent.futures.ThreadPoolExecutor``) parallelises shard construction
and batch-query fan-out.  The shards share one
:class:`~repro.core.counters.CostCounters`, whose increments are
lock-protected, so a thread pool keeps counts exact; process pools would
need per-shard counters merged afterwards (see ROADMAP open items).

The batch path is where sharding pays off for throughput: ``*_query_many``
fans the *whole* query batch out to each shard once and merges with one pass
per shard, instead of crossing every shard once per query.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .index import MetricIndex
from .metric_space import MetricSpace
from .queries import KnnHeap, Neighbor

__all__ = ["ShardedIndex"]


class ShardedIndex(MetricIndex):
    """Disjoint data shards, one inner index each, exact merged answers."""

    name = "Sharded"

    def __init__(
        self,
        space: MetricSpace,
        shards: list[MetricIndex],
        shard_ids: list[Sequence[int]],
        executor=None,
    ):
        super().__init__(space)
        self.shards = shards
        self._shard_ids = [list(ids) for ids in shard_ids]
        self.executor = executor

    def _map_shards(self, fn: Callable[[MetricIndex], object]) -> list:
        """Apply ``fn`` to every shard, via the executor when one is set."""
        if self.executor is not None:
            return list(self.executor.map(fn, self.shards))
        return [fn(shard) for shard in self.shards]

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        build_shard: Callable[[MetricSpace], MetricIndex],
        n_shards: int = 4,
        seed: int = 0,
        executor=None,
    ) -> "ShardedIndex":
        """Partition the dataset round-robin and build one index per part.

        Args:
            space: the full (counted) metric space.
            build_shard: factory receiving a shard's MetricSpace (sharing the
                parent's counters) and returning a built index; e.g.
                ``lambda s: MVPT.build(s, select_pivots(s, 5))``.
            n_shards: number of disjoint parts.
            seed: shuffle seed for the partition.
            executor: optional ``map``-capable pool; shard construction (an
                embarrassingly parallel loop) and batch-query fan-out run
                through it.  The built index keeps it for query time.
        """
        n = len(space)
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        rng = np.random.default_rng(seed)
        order = rng.permutation(n)
        # membership is random, but each shard's id list is kept ascending:
        # local storage order then matches global id order, so the shards'
        # canonical (distance, id) kNN tie-breaking agrees with the global
        # one and merged answers equal the single-index/brute-force answers
        shard_ids = [
            sorted(int(i) for i in order[s::n_shards]) for s in range(n_shards)
        ]
        sub_spaces = [
            MetricSpace(space.dataset.subset(ids), space.counters)
            for ids in shard_ids
        ]
        if executor is not None:
            shards = list(executor.map(build_shard, sub_spaces))
        else:
            shards = [build_shard(sub) for sub in sub_spaces]
        return cls(space, shards, shard_ids, executor=executor)

    # -- queries ---------------------------------------------------------------

    def range_query(self, query_obj, radius: float) -> list[int]:
        results: list[int] = []
        for shard, ids in zip(self.shards, self._shard_ids):
            results.extend(ids[local] for local in shard.range_query(query_obj, radius))
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        heap = KnnHeap(k)
        for shard, ids in zip(self.shards, self._shard_ids):
            for neighbor in shard.knn_query(query_obj, k):
                heap.consider(ids[neighbor.object_id], neighbor.distance)
        return heap.neighbors()

    # -- batch queries ----------------------------------------------------------

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        """Batch fan-out: each shard answers the whole batch once, and the
        union merge runs one pass per shard instead of one per query."""
        queries = list(queries)
        if not queries:
            return []
        per_shard = self._map_shards(lambda s: s.range_query_many(queries, radius))
        out: list[list[int]] = [[] for _ in queries]
        for ids, batches in zip(self._shard_ids, per_shard):
            for merged, local_results in zip(out, batches):
                merged.extend(ids[local] for local in local_results)
        return [sorted(results) for results in out]

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        """Batch fan-out with one exact k-merge pass per shard."""
        queries = list(queries)
        if not queries:
            return []
        per_shard = self._map_shards(lambda s: s.knn_query_many(queries, k))
        heaps = [KnnHeap(k) for _ in queries]
        for ids, batches in zip(self._shard_ids, per_shard):
            for heap, neighbors in zip(heaps, batches):
                for neighbor in neighbors:
                    heap.consider(ids[neighbor.object_id], neighbor.distance)
        return [heap.neighbors() for heap in heaps]

    # -- accounting -------------------------------------------------------------

    def storage_bytes(self) -> dict[str, int]:
        memory = disk = 0
        for shard in self.shards:
            storage = shard.storage_bytes()
            memory += storage["memory"]
            disk += storage["disk"]
        return {"memory": memory, "disk": disk}
