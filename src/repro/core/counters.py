"""Cost accounting shared by every index in the study.

The paper (Section 6.1) reports three metrics for each experiment:

* ``compdists`` -- the number of distance computations,
* ``PA`` -- the number of page accesses, and
* CPU time.

All of them flow through :class:`CostCounters`.  A single counter object is
shared by a :class:`~repro.core.metric_space.MetricSpace` (which increments
``compdists``) and by the storage layer (which increments page reads and
writes), so one ``measure()`` block captures the full cost of an operation no
matter how many components participate.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields


@dataclass
class CostSnapshot:
    """Immutable view of the counters at one point in time.

    ``page_reads`` counts *cold* reads only -- reads that actually reached
    the page store.  Reads served by a :class:`~repro.storage.pager.
    BufferPool` are ``buffer_hits``; candidates served from a page already
    read earlier in the same batched fetch (``Pager.read_many``) are
    ``grouped_hits``.  Neither counts toward ``page_accesses``, so PA
    measures real I/O.
    """

    distance_computations: int = 0
    page_reads: int = 0
    page_writes: int = 0
    elapsed_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    buffer_hits: int = 0
    grouped_hits: int = 0
    prune_prefix: int = 0
    prune_refine: int = 0
    prune_validated: int = 0
    prune_ptolemaic: int = 0

    @property
    def page_accesses(self) -> int:
        """Total page accesses (reads + writes), the paper's ``PA``."""
        return self.page_reads + self.page_writes

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(
            *[
                getattr(self, name) - getattr(other, name)
                for name in _SNAPSHOT_FIELD_NAMES
            ]
        )

    def as_dict(self) -> dict:
        """Every field by name, plus the derived ``page_accesses``.

        Field-complete by construction (``dataclasses.fields``), so a
        counter added to the dataclass can never silently vanish from
        serialised stats or telemetry attribution -- the class of stale
        field bug ``tests/test_obs.py`` guards structurally.
        """
        out = {name: getattr(self, name) for name in _SNAPSHOT_FIELD_NAMES}
        out["page_accesses"] = self.page_accesses
        return out

    def split(self, n: int) -> "list[CostSnapshot]":
        """``n`` shares whose field-wise sum reconstructs this snapshot
        exactly (integer fields; float fields divide evenly and may lose
        ulps).  The remainder of each integer division goes to the first
        ``value % n`` shares, so attribution over a coalesced batch of
        ``n`` requests conserves every count -- the telemetry layer's
        per-request cost attribution contract.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        shares = [dict() for _ in range(n)]
        for name in _SNAPSHOT_FIELD_NAMES:
            value = getattr(self, name)
            if isinstance(value, float):
                for share in shares:
                    share[name] = value / n
                continue
            base, remainder = divmod(value, n)
            for i, share in enumerate(shares):
                share[name] = base + (1 if i < remainder else 0)
        return [CostSnapshot(**share) for share in shares]


# field-name tuples, derived from ``dataclasses.fields`` exactly once --
# snapshot/diff/merge run on query hot paths (the telemetry layer takes two
# count snapshots around every traced batch call), and re-reflecting per
# call costs more than the arithmetic it feeds
_SNAPSHOT_FIELD_NAMES = tuple(f.name for f in fields(CostSnapshot))


@dataclass
class CostCounters:
    """Mutable cost accumulator threaded through a metric space and pager.

    Increments take a lock: a bare ``+=`` is a non-atomic read-modify-write
    that can drop counts when a thread-pool executor fans shard queries out
    concurrently (see :class:`~repro.core.sharded.ShardedIndex`).  The
    counted call sites are batch-level (one increment covers a whole
    vectorised distance call), so the lock is far off the hot path.
    """

    distance_computations: int = 0
    page_reads: int = 0
    page_writes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    buffer_hits: int = 0
    grouped_hits: int = 0
    prune_prefix: int = 0
    prune_refine: int = 0
    prune_validated: int = 0
    prune_ptolemaic: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __getstate__(self) -> dict:
        # threading locks cannot cross pickle boundaries; the counts can.
        # Dropping the lock here is what lets whole index graphs be pickled
        # (service snapshots) and shipped to ProcessPoolExecutor workers.
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def add_distances(self, n: int = 1) -> None:
        with self._lock:
            self.distance_computations += n

    def add_page_read(self, n: int = 1) -> None:
        with self._lock:
            self.page_reads += n

    def add_page_write(self, n: int = 1) -> None:
        with self._lock:
            self.page_writes += n

    def add_cache_hit(self, n: int = 1) -> None:
        with self._lock:
            self.cache_hits += n

    def add_cache_miss(self, n: int = 1) -> None:
        with self._lock:
            self.cache_misses += n

    def add_cache_eviction(self, n: int = 1) -> None:
        with self._lock:
            self.cache_evictions += n

    def add_buffer_hit(self, n: int = 1) -> None:
        """A page read served by the buffer pool (no store access)."""
        with self._lock:
            self.buffer_hits += n

    def add_grouped_hit(self, n: int = 1) -> None:
        """A page request served by an earlier read of the same batch."""
        with self._lock:
            self.grouped_hits += n

    def add_prune_stages(
        self,
        prefix: int = 0,
        refine: int = 0,
        validated: int = 0,
        ptolemaic: int = 0,
    ) -> None:
        """Per-stage decided counts from one staged-cascade pruning pass.

        ``prefix``/``refine``/``ptolemaic`` count (query, object) cells the
        respective stage excluded; ``validated`` counts cells Lemma 4
        accepted without an exact distance.  One lock acquisition covers
        the whole pass.
        """
        with self._lock:
            self.prune_prefix += prefix
            self.prune_refine += refine
            self.prune_validated += validated
            self.prune_ptolemaic += ptolemaic

    def reset(self) -> None:
        with self._lock:
            for name in self.count_fields():
                setattr(self, name, 0)

    def merge(self, other: "CostCounters | CostSnapshot") -> None:
        """Fold another accumulator's counts into this one.

        Accepts either live :class:`CostCounters` (e.g. a shard's private
        counters) or a :class:`CostSnapshot` delta returned from a worker
        process.  Only counts are merged -- a snapshot's
        ``elapsed_seconds`` is a timestamp, not a cost, and is ignored.
        Field-complete by construction: every count field participates,
        so a newly added counter cannot be silently dropped here.
        """
        with self._lock:
            for name in self.count_fields():
                setattr(self, name, getattr(self, name) + getattr(other, name))

    def count_fields(self) -> tuple[str, ...]:
        """The accumulator's count field names (everything but the lock).

        Derived from ``dataclasses.fields`` so ``merge``/``reset``/
        ``snapshot``/``as_dict`` can be asserted field-complete
        structurally -- adding a counter and forgetting one of them was a
        real bug class (PR 4) this closes.
        """
        return _COUNT_FIELD_NAMES

    def as_dict(self) -> dict:
        """One consistent read of every count (single lock acquisition)."""
        with self._lock:
            return {name: getattr(self, name) for name in _COUNT_FIELD_NAMES}

    def snapshot(self) -> CostSnapshot:
        with self._lock:
            state = {name: getattr(self, name) for name in _COUNT_FIELD_NAMES}
        return CostSnapshot(elapsed_seconds=time.perf_counter(), **state)

    def counts(self) -> tuple[int, ...]:
        """Raw count values in :meth:`count_fields` order.

        The cheap sibling of :meth:`snapshot` for before/after deltas on
        hot paths (one lock acquisition, no dataclass construction, no
        timestamp): the telemetry layer brackets every traced batch call
        with a ``counts()`` pair and builds one :class:`CostSnapshot` for
        the difference via :meth:`delta_since`.
        """
        with self._lock:
            return tuple(getattr(self, name) for name in _COUNT_FIELD_NAMES)

    def delta_since(self, before: tuple[int, ...]) -> CostSnapshot:
        """The counts accumulated since a :meth:`counts` capture.

        Field-complete by construction (the zip runs over the reflected
        field names); ``elapsed_seconds`` stays 0 -- a delta of counts
        has no timestamp.
        """
        return CostSnapshot(
            **{
                name: now - then
                for name, now, then in zip(_COUNT_FIELD_NAMES, self.counts(), before)
            }
        )

    @contextmanager
    def measure(self):
        """Measure the cost of a block.

        Yields a :class:`Measurement` whose fields are filled in when the
        block exits::

            with counters.measure() as m:
                index.range_query(q, r)
            print(m.cost.distance_computations, m.cost.page_accesses)
        """
        measurement = Measurement()
        before = self.snapshot()
        try:
            yield measurement
        finally:
            measurement.cost = self.snapshot() - before


_COUNT_FIELD_NAMES = tuple(
    f.name for f in fields(CostCounters) if not f.name.startswith("_")
)


@dataclass
class Measurement:
    """Result of a :meth:`CostCounters.measure` block."""

    cost: CostSnapshot = field(default_factory=CostSnapshot)

    @property
    def compdists(self) -> int:
        return self.cost.distance_computations

    @property
    def page_accesses(self) -> int:
        return self.cost.page_accesses

    @property
    def cpu_seconds(self) -> float:
        return self.cost.elapsed_seconds

    @property
    def cache_hits(self) -> int:
        return self.cost.cache_hits

    @property
    def cache_misses(self) -> int:
        return self.cost.cache_misses

    @property
    def buffer_hits(self) -> int:
        return self.cost.buffer_hits

    @property
    def grouped_hits(self) -> int:
        return self.cost.grouped_hits


@dataclass
class QueryStats:
    """Aggregated per-query statistics over a batch of queries.

    The paper reports averages over 100 random queries; this accumulates the
    same averages.
    """

    queries: int = 0
    total_distance_computations: int = 0
    total_page_accesses: int = 0
    total_cpu_seconds: float = 0.0

    def record(self, measurement: Measurement) -> None:
        self.queries += 1
        self.total_distance_computations += measurement.compdists
        self.total_page_accesses += measurement.page_accesses
        self.total_cpu_seconds += measurement.cpu_seconds

    @property
    def mean_compdists(self) -> float:
        return self.total_distance_computations / self.queries if self.queries else 0.0

    @property
    def mean_page_accesses(self) -> float:
        return self.total_page_accesses / self.queries if self.queries else 0.0

    @property
    def mean_cpu_seconds(self) -> float:
        return self.total_cpu_seconds / self.queries if self.queries else 0.0

    def as_dict(self) -> dict:
        return {
            "queries": self.queries,
            "compdists": self.mean_compdists,
            "page_accesses": self.mean_page_accesses,
            "cpu_seconds": self.mean_cpu_seconds,
        }
