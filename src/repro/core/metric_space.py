"""MetricSpace: a dataset + distance with exact distance-computation counting.

Every distance evaluation an index performs goes through one of the methods
here, so the ``compdists`` metric of the paper is *counted*, never estimated.
Vectorised batch calls count one computation per pair, exactly as a scalar
loop would.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .counters import CostCounters
from .dataset import Dataset

__all__ = ["MetricSpace"]


def _batch_len(objects) -> int:
    """Number of objects in a batch given either a 2-d array or a sequence."""
    if isinstance(objects, np.ndarray):
        return objects.shape[0] if objects.ndim > 1 else 1
    return len(objects)


class MetricSpace:
    """Couples a :class:`Dataset` with counted distance evaluation.

    Args:
        dataset: the object collection and its metric.
        counters: shared cost accumulator; a fresh one is created when
            omitted.  External indexes pass the same instance to their page
            store so that one measurement block captures both metrics.
    """

    def __init__(self, dataset: Dataset, counters: CostCounters | None = None):
        self.dataset = dataset
        self.distance = dataset.distance
        self.counters = counters if counters is not None else CostCounters()

    # -- raw-object interface ------------------------------------------------

    def d(self, a, b) -> float:
        """Counted distance between two raw objects."""
        self.counters.add_distances(1)
        return self.distance(a, b)

    def d_many(self, q, objects) -> np.ndarray:
        """Counted distances from raw object ``q`` to a batch of raw objects."""
        if isinstance(objects, np.ndarray):
            count = objects.shape[0] if objects.ndim > 1 else 1
        else:
            count = len(objects)
        if count == 0:
            return np.empty(0, dtype=np.float64)
        self.counters.add_distances(count)
        return self.distance.one_to_many(q, objects)

    def pairwise_objects(self, left_objects, right_objects) -> np.ndarray:
        """Counted |left| x |right| distance matrix between raw objects.

        The batch query layer uses this to obtain every query-pivot distance
        of a whole query batch in one call.  Counts one computation per pair,
        exactly as the equivalent scalar loop would.
        """
        n_left = _batch_len(left_objects)
        n_right = _batch_len(right_objects)
        if n_left == 0 or n_right == 0:
            return np.empty((n_left, n_right), dtype=np.float64)
        self.counters.add_distances(n_left * n_right)
        return self.distance.pairwise(left_objects, right_objects)

    # -- id-based interface --------------------------------------------------

    def d_id(self, q, object_id: int) -> float:
        """Counted distance from raw object ``q`` to the object with ``object_id``."""
        return self.d(q, self.dataset[object_id])

    def d_ids(self, q, ids: Sequence[int]) -> np.ndarray:
        """Counted distances from raw ``q`` to a batch of stored objects."""
        if len(ids) == 0:
            return np.empty(0, dtype=np.float64)
        return self.d_many(q, self.dataset.gather(ids))

    def d_between_ids(self, i: int, j: int) -> float:
        return self.d(self.dataset[i], self.dataset[j])

    def pairwise_ids(self, left_ids: Sequence[int], right_ids: Sequence[int]) -> np.ndarray:
        """Counted |left| x |right| distance matrix between stored objects."""
        if len(left_ids) == 0 or len(right_ids) == 0:
            return np.empty((len(left_ids), len(right_ids)), dtype=np.float64)
        self.counters.add_distances(len(left_ids) * len(right_ids))
        return self.distance.pairwise(
            self.dataset.gather(left_ids), self.dataset.gather(right_ids)
        )

    # -- convenience ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.dataset)

    @property
    def is_discrete(self) -> bool:
        return self.distance.is_discrete

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricSpace({self.dataset!r})"
