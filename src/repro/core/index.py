"""The abstract interface every pivot-based metric index implements.

The uniform surface lets the benchmark harness run the full grid of the
paper's Section 6 over any index, and lets the test suite assert the golden
invariant (index answers == brute-force answers) uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from .metric_space import MetricSpace
from .queries import Neighbor

__all__ = [
    "MetricIndex",
    "UnsupportedOperation",
    "brute_force_range",
    "brute_force_knn",
    "brute_force_range_many",
    "brute_force_knn_many",
]


class UnsupportedOperation(RuntimeError):
    """Raised when an index does not support an optional operation.

    Example: AESA has no dynamic delete; BKT/FQT reject continuous metrics.
    """


class MetricIndex(ABC):
    """Base class of all indexes in the study.

    Subclasses are constructed by their own ``build`` classmethods; the
    shared constructor just wires the metric space in.

    Attributes:
        space: the counted metric space the index answers queries against.
        name: short name used in benchmark tables (paper's row labels).
        is_disk_based: True for the external category (reports PA).
    """

    name: str = "index"
    is_disk_based: bool = False

    def __init__(self, space: MetricSpace):
        self.space = space

    # -- queries ---------------------------------------------------------

    @abstractmethod
    def range_query(self, query_obj, radius: float) -> list[int]:
        """MRQ(q, r): ids of all objects within ``radius`` of ``query_obj``."""

    @abstractmethod
    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        """MkNNQ(q, k): the k nearest objects, ascending by distance."""

    # -- batch queries ---------------------------------------------------

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        """Batched MRQ: one answer list per query, in query order.

        The default is a correct sequential loop; indexes that can amortise
        work across queries (the table category, sharded combinators)
        override it with genuinely vectorized implementations.  Whatever the
        implementation, ``range_query_many(qs, r)[i]`` must equal
        ``range_query(qs[i], r)`` exactly.
        """
        return [self.range_query(q, radius) for q in queries]

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        """Batched MkNNQ: one neighbor list per query, in query order.

        Same contract as :meth:`range_query_many`: per-query results must be
        identical to sequential :meth:`knn_query` answers.
        """
        return [self.knn_query(q, k) for q in queries]

    # -- maintenance -------------------------------------------------------

    def insert(self, obj, object_id: int | None = None) -> int:
        """Add an object; returns its id.

        When ``object_id`` is given, the object re-registers under an
        existing dataset slot (the paper's update experiment deletes an
        object and inserts it back); otherwise the object is appended to the
        dataset and receives a fresh id.
        """
        raise UnsupportedOperation(f"{self.name} does not support insert")

    def delete(self, object_id: int) -> None:
        """Remove an object by id."""
        raise UnsupportedOperation(f"{self.name} does not support delete")

    # -- snapshots ---------------------------------------------------------

    def prepare_snapshot(self) -> None:
        """Hook called before the index is serialised to a snapshot.

        The snapshot contract every index upholds:

        * all query-relevant state lives in picklable attributes (numpy
          tables, node objects, page stores) -- no open files, threads, or
          callables created at query time;
        * ``prepare_snapshot`` leaves the index fully queryable, and after
          it returns, pickling the index captures everything needed to
          answer queries identically with **zero** further distance
          computations;
        * disk-based indexes write dirty buffered pages back to their page
          store here so that the snapshot carries a single authoritative
          copy of each page.

        The default is a no-op (pure in-memory indexes have nothing to
        flush); :mod:`repro.service.snapshot` additionally flushes every
        reachable :class:`~repro.storage.pager.Pager` as a safety net.
        """

    # -- accounting --------------------------------------------------------

    def storage_bytes(self) -> dict[str, int]:
        """Storage footprint split into ``memory`` and ``disk`` bytes."""
        return {"memory": 0, "disk": 0}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.__class__.__name__}(n={len(self.space)})"


def brute_force_range(space: MetricSpace, query_obj, radius: float) -> list[int]:
    """Reference MRQ by linear scan (golden answers for tests)."""
    dataset = space.dataset
    dists = space.d_many(query_obj, dataset.objects)
    return [int(i) for i in range(len(dataset)) if dists[i] <= radius]


def brute_force_knn(space: MetricSpace, query_obj, k: int) -> list[Neighbor]:
    """Reference MkNNQ by linear scan (golden answers for tests)."""
    from .queries import KnnHeap

    dataset = space.dataset
    dists = space.d_many(query_obj, dataset.objects)
    heap = KnnHeap(k)
    for object_id, dist in enumerate(dists):
        heap.consider(object_id, float(dist))
    return heap.neighbors()


def brute_force_range_many(space: MetricSpace, queries, radius: float) -> list[list[int]]:
    """Batched reference MRQ: one q x n matrix, then per-row thresholding."""
    queries = list(queries)
    if not queries:
        return []
    dists = space.pairwise_objects(queries, space.dataset.objects)
    return [[int(i) for i in np.flatnonzero(row <= radius)] for row in dists]


def brute_force_knn_many(space: MetricSpace, queries, k: int) -> list[list[Neighbor]]:
    """Batched reference MkNNQ via one distance matrix and stable argsorts.

    A stable sort on each row yields ascending distance with ties broken by
    ascending id -- exactly the answer :func:`brute_force_knn` produces.
    """
    from .queries import Neighbor as _Neighbor

    queries = list(queries)
    if not queries:
        return []
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    dists = space.pairwise_objects(queries, space.dataset.objects)
    out: list[list[Neighbor]] = []
    for row in dists:
        order = np.argsort(row, kind="stable")[:k]
        out.append([_Neighbor(float(row[i]), int(i)) for i in order])
    return out


def live_ids(deleted: set[int], n: int) -> Sequence[int]:
    """Helper: ids currently present given a deleted-set (scan indexes)."""
    if not deleted:
        return range(n)
    return [i for i in range(n) if i not in deleted]
