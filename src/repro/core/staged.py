"""Staged pruning cascade: ordered Lemma 1 prefix -> refine -> Lemma 4 ->
Ptolemaic, over shared-pivot distance tables.

The single-shot batch filter evaluates Lemma 1 over every pivot column for
every (query, object) cell -- a full ``q x n x l`` broadcast -- before any
cell is decided.  This module replaces that with a cascade that spends
columns where they pay:

1. **Prefix** -- Lemma 1 over a small prefix of pivot columns, ordered by
   measured pruning power.  Most cells die here when the ordering is good.
2. **Refine** -- only surviving cells see the remaining columns (cell-wise
   fancy indexing, not a full broadcast).
3. **Validate** (optional, Lemma 4) -- surviving cells whose upper bound is
   within the radius are accepted without an exact distance.
4. **Ptolemaic** -- for metrics declaring
   :attr:`~repro.core.distances.MetricDistance.is_ptolemaic`, the pair bound
   ``|d(q,p_i) d(o,p_j) - d(q,p_j) d(o,p_i)| / d(p_i,p_j)`` runs over a
   budgeted set of pivot pairs as a final filter before exact verification.

Exactness: every stage only makes *provable* decisions, so the survivor /
validated masks match the single-shot path's answers bit-for-bit; staging
changes how much numpy work runs, never which objects verify as answers
-- except that stage 4 may (provably) prune more, which is the point.

The pivot order is scored statically at build time from the stored distance
table (zero extra distance computations) and can be re-ranked online from
per-pivot decided counts when a service layer opts in
(:meth:`StagedPruner.enable_adaptive`); re-ranking never changes answers,
only which columns run first and which pivot pairs the Ptolemaic budget
picks, so it is off by default to keep sequential/batch cost parity exact.
"""

from __future__ import annotations

import threading

import numpy as np

from .counters import CostCounters
from .pivot_filter import (
    _QUERY_CHUNK_FLOATS,
    _object_rows,
    lower_bound_many_queries,
    ptolemaic_pairs,
    query_chunk,
    upper_bound_many_queries,
)

__all__ = [
    "StagedPruner",
    "PerObjectStagedPruner",
    "BOUNDS_MODES",
    "score_pivot_order",
]

BOUNDS_MODES = ("triangle", "ptolemaic", "auto")

# default Ptolemaic pair budget: pairs among the top ~4 ranked pivots
DEFAULT_PAIR_BUDGET = 8


def score_pivot_order(matrix, sample: int = 64, seed: int = 0) -> np.ndarray:
    """Rank pivot columns by estimated pruning power, best first.

    The classic estimator: for random object pairs (a, b), the mean of
    ``|d(a,p_i) - d(b,p_i)|`` per pivot -- the expected Lemma 1 bound a
    single pivot yields.  Computed from the stored ``n x l`` table alone,
    so scoring costs zero distance computations.  Deterministic in
    ``seed``; stable argsort keeps build-order ties reproducible.
    """
    mat = _object_rows(matrix)
    n, l = mat.shape
    if l == 0:
        return np.empty(0, dtype=np.intp)
    if n < 2:
        return np.arange(l, dtype=np.intp)
    rng = np.random.default_rng(seed)
    left = rng.integers(0, n, size=sample)
    right = rng.integers(0, n, size=sample)
    power = np.abs(mat[left] - mat[right]).mean(axis=0)
    return np.argsort(-power, kind="stable").astype(np.intp)


def _cell_step(width: int) -> int:
    """Cells per slice so a cells x width float temporary stays bounded."""
    return max(1, _QUERY_CHUNK_FLOATS // max(1, width))


class StagedPruner:
    """The staged cascade over one shared-pivot ``n x l`` distance table.

    The pruner owns *pivot-side* state only (column order, prefix size,
    Ptolemaic pair matrix and budgeted pairs, per-pivot decided counts);
    the object table is passed into every call, so tables that grow via
    ``insert`` need no pruner maintenance.  Pickles cleanly (the adaptive
    lock is dropped and rebuilt), so indexes carrying a pruner snapshot
    and restore with zero distance computations.
    """

    def __init__(
        self,
        order,
        prefix: int,
        bounds: str = "auto",
        is_ptolemaic: bool = False,
        pair_matrix=None,
        pair_budget: int = DEFAULT_PAIR_BUDGET,
        staged: bool = True,
    ):
        if bounds not in BOUNDS_MODES:
            raise ValueError(f"bounds must be one of {BOUNDS_MODES}, got {bounds!r}")
        if bounds == "ptolemaic" and not is_ptolemaic:
            raise ValueError(
                "bounds='ptolemaic' requires a metric declaring is_ptolemaic "
                "(the Ptolemaic inequality does not hold for this metric)"
            )
        self.order = np.asarray(order, dtype=np.intp)
        self.prefix = int(prefix)
        self.bounds = bounds
        self.is_ptolemaic = bool(is_ptolemaic)
        self.pair_budget = int(pair_budget)
        self.staged = bool(staged)
        self.pair_matrix = (
            None if pair_matrix is None else np.asarray(pair_matrix, dtype=np.float64)
        )
        self.pairs = (
            ptolemaic_pairs(self.pair_matrix, order=self.order, budget=self.pair_budget)
            if self.use_ptolemaic
            else np.empty((0, 2), dtype=np.intp)
        )
        # -- adaptive (online re-ranking) state, off by default ---------------
        self.adaptive = False
        self.rerank_interval = 0
        self.reranks = 0
        self.decided_counts = np.zeros(self.order.shape[0], dtype=np.int64)
        self._since_rerank = 0
        self._lock = threading.Lock()

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        space,
        matrix,
        pivot_objects,
        bounds: str = "auto",
        pair_budget: int = DEFAULT_PAIR_BUDGET,
        prefix: int | None = None,
        sample: int = 64,
        seed: int = 0,
        staged: bool = True,
    ) -> "StagedPruner":
        """Score the order and (for Ptolemaic metrics) the pair matrix.

        The pivot-pair distance matrix is computed with the *counted*
        metric -- it is real build work, exactly like the mapping itself
        -- and only when the bounds mode will use it, so non-Ptolemaic
        builds (Hamming, edit) cost nothing extra.
        """
        order = score_pivot_order(matrix, sample=sample, seed=seed)
        l = order.shape[0]
        if prefix is None:
            prefix = max(1, min(l - 1, (l + 3) // 4)) if l > 1 else 1
        is_pt = bool(getattr(space.distance, "is_ptolemaic", False))
        pair_matrix = None
        if bounds == "ptolemaic" and not is_pt:
            raise ValueError(
                f"bounds='ptolemaic' but metric {space.distance.name!r} does "
                "not declare is_ptolemaic"
            )
        if l > 1 and is_pt and bounds in ("ptolemaic", "auto"):
            pair_matrix = space.pairwise_objects(list(pivot_objects), list(pivot_objects))
        return cls(
            order,
            prefix,
            bounds=bounds,
            is_ptolemaic=is_pt,
            pair_matrix=pair_matrix,
            pair_budget=pair_budget,
            staged=staged,
        )

    # -- properties -----------------------------------------------------------

    @property
    def use_ptolemaic(self) -> bool:
        """Whether stage 4 runs: the mode allows it AND the metric licenses
        it AND the pair matrix exists (non-Ptolemaic metrics skip it
        automatically -- ``auto`` never turns the bound on unsoundly)."""
        if self.pair_matrix is None or not self.is_ptolemaic:
            return False
        return self.bounds in ("ptolemaic", "auto")

    def stats(self) -> dict:
        """Pruner configuration + adaptive state for /stats and explain."""
        return {
            "bounds": self.bounds,
            "ptolemaic": self.use_ptolemaic,
            "staged": self.staged,
            "prefix": self.prefix,
            "order": [int(i) for i in self.order],
            "n_pairs": int(self.pairs.shape[0]),
            "adaptive": self.adaptive,
            "reranks": self.reranks,
            "decided_per_pivot": [int(c) for c in self.decided_counts],
        }

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- adaptive re-ranking --------------------------------------------------

    def enable_adaptive(self, interval: int = 4096) -> None:
        """Opt into online re-ranking from per-pivot decided counts.

        Off by default: re-ranking mid-stream changes which columns run
        first and which pivot pairs the budget picks, so batch vs
        sequential cost parity (asserted by tests) only holds when the
        order is frozen.  Service layers opt in per attached index.
        """
        self.adaptive = True
        self.rerank_interval = max(1, int(interval))

    def _record_decided(self, per_column: np.ndarray) -> None:
        with self._lock:
            self.decided_counts += per_column
            self._since_rerank += int(per_column.sum())
            if self.rerank_interval and self._since_rerank >= self.rerank_interval:
                self._since_rerank = 0
                new_order = np.argsort(-self.decided_counts, kind="stable").astype(
                    np.intp
                )
                if not np.array_equal(new_order, self.order):
                    self.order = new_order
                    if self.use_ptolemaic:
                        self.pairs = ptolemaic_pairs(
                            self.pair_matrix, order=self.order, budget=self.pair_budget
                        )
                    self.reranks += 1

    # -- bound matrices (kNN best-first) --------------------------------------

    def lower_bounds_many_queries(self, qmat, omat) -> np.ndarray:
        """Full ``q x n`` lower bounds: triangle, tightened by Ptolemaic.

        The kNN best-first scan needs a bound for *every* object (ordering
        plus cutoff), so there is no staged early exit here -- but the
        Ptolemaic max over the budgeted pairs still tightens the bound,
        which shrinks the verified frontier.  Any true lower bound keeps
        :func:`~repro.core.queries.best_first_knn` exact.
        """
        qmat = np.atleast_2d(np.asarray(qmat, dtype=np.float64))
        omat = _object_rows(omat)
        lower = lower_bound_many_queries(qmat, omat)
        if self.use_ptolemaic and self.pairs.size:
            left, right = self.pairs[:, 0], self.pairs[:, 1]
            denom = self.pair_matrix[left, right]
            q_l, q_r = qmat[:, left], qmat[:, right]
            o_l, o_r = omat[:, left], omat[:, right]
            step = query_chunk(omat.shape[0], self.pairs.shape[0])
            for start in range(0, qmat.shape[0], step):
                stop = start + step
                cross = np.abs(
                    q_l[start:stop, None, :] * o_r[None, :, :]
                    - q_r[start:stop, None, :] * o_l[None, :, :]
                )
                np.maximum(
                    lower[start:stop], (cross / denom).max(axis=2), out=lower[start:stop]
                )
        return lower

    def lower_bounds_many(self, query_pivot_dists, omat) -> np.ndarray:
        """Single-query form of :meth:`lower_bounds_many_queries`."""
        q = np.asarray(query_pivot_dists, dtype=np.float64)
        return self.lower_bounds_many_queries(q.reshape(1, -1), omat)[0]

    # -- the cascade (range / radius-driven masks) ----------------------------

    def masks_many_queries(
        self,
        qmat,
        omat,
        radius,
        counters: CostCounters | None = None,
        validate: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run the cascade; return ``(survivors, validated)`` bool masks.

        ``survivors[i, j]`` -- object j needs an exact distance for query
        i; ``validated[i, j]`` -- object j is provably an answer of query
        i (only when ``validate``, Lemma 4).  ``radius`` is a scalar or a
        per-query array.  Per-stage decided counts go to ``counters``.
        The masks are independent of the column order and of ``staged``
        (modulo stage 4's pair budget), which is what keeps staged ==
        single-shot == brute force exact.
        """
        qmat = np.atleast_2d(np.asarray(qmat, dtype=np.float64))
        omat = _object_rows(omat)
        n_q, n_o = qmat.shape[0], omat.shape[0]
        validated = np.zeros((n_q, n_o), dtype=bool)
        if n_q == 0 or n_o == 0 or omat.shape[1] == 0:
            return np.ones((n_q, n_o), dtype=bool), validated
        r = np.asarray(radius, dtype=np.float64)
        rcol = r[:, None] if r.ndim else r
        l = omat.shape[1]

        if not self.staged or l == 1:
            # single-shot reference path: one full broadcast per lemma
            alive = lower_bound_many_queries(qmat, omat) <= rcol
            n_prefix = int(alive.size - alive.sum())
            n_validated = 0
            if validate:
                upper = upper_bound_many_queries(qmat, omat)
                validated = alive & (upper <= rcol)
                alive &= ~validated
                n_validated = int(validated.sum())
            n_pt = self._ptolemaic_stage(qmat, omat, alive, r)
            if counters is not None:
                counters.add_prune_stages(
                    prefix=n_prefix, validated=n_validated, ptolemaic=n_pt
                )
            return alive, validated

        order = self._column_order(l)
        prefix = min(max(1, self.prefix), l - 1)
        head, tail = order[:prefix], order[prefix:]

        # stage 1: Lemma 1 over the ranked prefix columns
        q_head, o_head = qmat[:, head], omat[:, head]
        lower = np.empty((n_q, n_o), dtype=np.float64)
        col_decided = np.zeros(l, dtype=np.int64) if self.adaptive else None
        step = query_chunk(n_o, prefix)
        for start in range(0, n_q, step):
            stop = start + step
            diff = np.abs(q_head[start:stop, None, :] - o_head[None, :, :])
            lower[start:stop] = diff.max(axis=2)
            if col_decided is not None:
                rblock = r[start:stop, None, None] if r.ndim else r
                col_decided[head] += (diff > rblock).sum(axis=(0, 1))
        alive = lower <= rcol
        n_prefix = int(alive.size - alive.sum())

        # stage 2: refine survivors cell-wise with the remaining columns
        n_refine = 0
        qi, oj = np.nonzero(alive)
        if qi.size:
            q_tail, o_tail = qmat[:, tail], omat[:, tail]
            cstep = _cell_step(tail.shape[0])
            for start in range(0, qi.size, cstep):
                stop = start + cstep
                ci, cj = qi[start:stop], oj[start:stop]
                diff = np.abs(q_tail[ci] - o_tail[cj])
                rcell = r[ci] if r.ndim else r
                dead = diff.max(axis=1) > rcell
                if col_decided is not None and dead.any():
                    col_decided[tail] += (
                        diff[dead] > (rcell[dead, None] if r.ndim else rcell)
                    ).sum(axis=0)
                alive[ci[dead], cj[dead]] = False
                n_refine += int(dead.sum())

        # stage 3: Lemma 4 validation, only for still-undecided cells
        n_validated = 0
        if validate:
            qi, oj = np.nonzero(alive)
            if qi.size:
                cstep = _cell_step(l)
                for start in range(0, qi.size, cstep):
                    stop = start + cstep
                    ci, cj = qi[start:stop], oj[start:stop]
                    upper = (qmat[ci] + omat[cj]).min(axis=1)
                    ok = upper <= (r[ci] if r.ndim else r)
                    validated[ci[ok], cj[ok]] = True
                    alive[ci[ok], cj[ok]] = False
                    n_validated += int(ok.sum())

        # stage 4: Ptolemaic filter on whatever is left
        n_pt = self._ptolemaic_stage(qmat, omat, alive, r)

        if counters is not None:
            counters.add_prune_stages(
                prefix=n_prefix,
                refine=n_refine,
                validated=n_validated,
                ptolemaic=n_pt,
            )
        if col_decided is not None:
            self._record_decided(col_decided)
        return alive, validated

    def masks_many(
        self,
        query_pivot_dists,
        omat,
        radius: float,
        counters: CostCounters | None = None,
        validate: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Single-query form: 1-D ``(survivors, validated)`` masks.

        Routes through :meth:`masks_many_queries` with a one-row query
        matrix so sequential and batch execution make identical pruning
        decisions -- the cost-parity contract the batch tests assert.
        """
        q = np.asarray(query_pivot_dists, dtype=np.float64)
        alive, validated = self.masks_many_queries(
            q.reshape(1, -1), omat, radius, counters=counters, validate=validate
        )
        return alive[0], validated[0]

    # -- internals ------------------------------------------------------------

    def _column_order(self, l: int) -> np.ndarray:
        """The ranked column order, padded if the table grew new columns."""
        order = self.order
        if order.shape[0] != l:
            known = order[order < l]
            missing = np.setdiff1d(
                np.arange(l, dtype=np.intp), known, assume_unique=False
            )
            order = np.concatenate([known, missing])
        return order

    def _ptolemaic_stage(self, qmat, omat, alive, r) -> int:
        """Stage 4 in place on ``alive``; returns the decided-cell count."""
        if not self.use_ptolemaic or not self.pairs.size:
            return 0
        qi, oj = np.nonzero(alive)
        if not qi.size:
            return 0
        left, right = self.pairs[:, 0], self.pairs[:, 1]
        denom = self.pair_matrix[left, right]
        q_l, q_r = qmat[:, left], qmat[:, right]
        o_l, o_r = omat[:, left], omat[:, right]
        n_pt = 0
        cstep = _cell_step(self.pairs.shape[0])
        for start in range(0, qi.size, cstep):
            stop = start + cstep
            ci, cj = qi[start:stop], oj[start:stop]
            cross = np.abs(q_l[ci] * o_r[cj] - q_r[ci] * o_l[cj])
            bound = (cross / denom).max(axis=1)
            dead = bound > (r[ci] if r.ndim else r)
            alive[ci[dead], cj[dead]] = False
            n_pt += int(dead.sum())
        return n_pt

class PerObjectStagedPruner:
    """The staged cascade for per-object-pivot tables (EPT / EPT*).

    EPT rows reference *different* pivots per object (``pivot_idx`` maps
    each of the ``l`` slots to a global pivot id), so the cascade stages
    over slot columns instead of shared pivot columns.  Stage 4 uses a
    sparse pivot-pair distance matrix holding only the pairs the budgeted
    slot pairs actually reference -- a full ``|P| x |P|`` matrix would
    cost more build distance computations than the table itself when the
    group size is large.
    """

    def __init__(
        self,
        slot_order,
        prefix: int,
        bounds: str = "auto",
        is_ptolemaic: bool = False,
        pair_matrix=None,
        slot_pairs=None,
        staged: bool = True,
    ):
        if bounds not in BOUNDS_MODES:
            raise ValueError(f"bounds must be one of {BOUNDS_MODES}, got {bounds!r}")
        if bounds == "ptolemaic" and not is_ptolemaic:
            raise ValueError(
                "bounds='ptolemaic' requires a metric declaring is_ptolemaic"
            )
        self.slot_order = np.asarray(slot_order, dtype=np.intp)
        self.prefix = int(prefix)
        self.bounds = bounds
        self.is_ptolemaic = bool(is_ptolemaic)
        self.staged = bool(staged)
        self.pair_matrix = (
            None if pair_matrix is None else np.asarray(pair_matrix, dtype=np.float64)
        )
        self.slot_pairs = (
            np.empty((0, 2), dtype=np.intp)
            if slot_pairs is None
            else np.asarray(slot_pairs, dtype=np.intp).reshape(-1, 2)
        )

    @classmethod
    def build(
        cls,
        space,
        pivot_ids,
        pivot_idx,
        pivot_dist,
        bounds: str = "auto",
        pair_budget: int = 3,
        prefix: int | None = None,
        staged: bool = True,
    ) -> "PerObjectStagedPruner":
        pivot_dist = np.asarray(pivot_dist, dtype=np.float64)
        pivot_idx = np.asarray(pivot_idx)
        l = pivot_dist.shape[1] if pivot_dist.ndim == 2 else 0
        # slot order: larger spread of stored distances -> larger expected
        # |d(q,p) - d(o,p)| gaps -> more stage-1 pruning (zero compdists)
        spread = pivot_dist.std(axis=0) if pivot_dist.size else np.zeros(l)
        slot_order = np.argsort(-spread, kind="stable").astype(np.intp)
        if prefix is None:
            prefix = max(1, min(l - 1, (l + 3) // 4)) if l > 1 else 1
        is_pt = bool(getattr(space.distance, "is_ptolemaic", False))
        if bounds == "ptolemaic" and not is_pt:
            raise ValueError(
                f"bounds='ptolemaic' but metric {space.distance.name!r} does "
                "not declare is_ptolemaic"
            )
        pair_matrix = None
        slot_pairs = None
        if l > 1 and is_pt and bounds in ("ptolemaic", "auto"):
            ranked = slot_order
            slot_pairs = []
            for second in range(1, l):
                for first in range(second):
                    slot_pairs.append((int(ranked[first]), int(ranked[second])))
                    if len(slot_pairs) >= pair_budget:
                        break
                if len(slot_pairs) >= pair_budget:
                    break
            slot_pairs = np.asarray(slot_pairs, dtype=np.intp)
            # counted build work: only the pivot pairs the budgeted slot
            # pairs reference, not the full |P| x |P| matrix
            n_pivots = len(pivot_ids)
            pair_matrix = np.zeros((n_pivots, n_pivots), dtype=np.float64)
            needed: set[tuple[int, int]] = set()
            for a, b in slot_pairs:
                cols = np.unique(
                    np.stack([pivot_idx[:, a], pivot_idx[:, b]], axis=1), axis=0
                )
                for i, j in cols:
                    if i != j:
                        needed.add((int(min(i, j)), int(max(i, j))))
            for i, j in sorted(needed):
                d = space.d_between_ids(int(pivot_ids[i]), int(pivot_ids[j]))
                pair_matrix[i, j] = pair_matrix[j, i] = d
        return cls(
            slot_order,
            prefix,
            bounds=bounds,
            is_ptolemaic=is_pt,
            pair_matrix=pair_matrix,
            slot_pairs=slot_pairs,
            staged=staged,
        )

    @property
    def use_ptolemaic(self) -> bool:
        if self.pair_matrix is None or not self.is_ptolemaic:
            return False
        return self.bounds in ("ptolemaic", "auto")

    def stats(self) -> dict:
        return {
            "bounds": self.bounds,
            "ptolemaic": self.use_ptolemaic,
            "staged": self.staged,
            "prefix": self.prefix,
            "order": [int(i) for i in self.slot_order],
            "n_pairs": int(self.slot_pairs.shape[0]),
            "adaptive": False,
            "reranks": 0,
        }

    # -- bounds ---------------------------------------------------------------

    def _slot_bound_cells(self, qdists, pivot_idx, pivot_dist, ci, cj, slots):
        """max_j |d(q,p_{o,j}) - d(o,p_{o,j})| over ``slots``, per cell."""
        idx = pivot_idx[cj][:, slots]
        qd = qdists[ci[:, None], idx]
        pd = pivot_dist[cj][:, slots]
        return np.abs(qd - pd).max(axis=1)

    def _ptolemaic_cells(self, qdists, pivot_idx, pivot_dist, ci, cj):
        """Best Ptolemaic bound over the budgeted slot pairs, per cell."""
        best = np.zeros(ci.shape[0], dtype=np.float64)
        for a, b in self.slot_pairs:
            ia, ib = pivot_idx[cj, a], pivot_idx[cj, b]
            denom = self.pair_matrix[ia, ib]
            qa, qb = qdists[ci, ia], qdists[ci, ib]
            oa, ob = pivot_dist[cj, a], pivot_dist[cj, b]
            cross = np.abs(qa * ob - qb * oa)
            ok = denom > 0.0
            np.maximum(
                best, np.where(ok, cross / np.where(ok, denom, 1.0), 0.0), out=best
            )
        return best

    def lower_bounds_many_queries(self, qdists, pivot_idx, pivot_dist) -> np.ndarray:
        """Full ``q x n`` lower bounds (triangle max'd with Ptolemaic)."""
        qdists = np.atleast_2d(np.asarray(qdists, dtype=np.float64))
        n_q = qdists.shape[0]
        n_o = pivot_idx.shape[0]
        out = np.empty((n_q, n_o), dtype=np.float64)
        step = query_chunk(n_o, pivot_idx.shape[1])
        for start in range(0, n_q, step):
            block = qdists[start : start + step]
            out[start : start + step] = np.abs(
                block[:, pivot_idx] - pivot_dist[None, :, :]
            ).max(axis=2)
        if self.use_ptolemaic and self.slot_pairs.size:
            rows = np.repeat(np.arange(n_q, dtype=np.intp), n_o)
            cols = np.tile(np.arange(n_o, dtype=np.intp), n_q)
            cstep = _cell_step(self.slot_pairs.shape[0])
            for start in range(0, rows.size, cstep):
                ci = rows[start : start + cstep]
                cj = cols[start : start + cstep]
                pt = self._ptolemaic_cells(qdists, pivot_idx, pivot_dist, ci, cj)
                np.maximum(out[ci, cj], pt, out=out[ci, cj])
        return out

    def masks_many_queries(
        self,
        qdists,
        pivot_idx,
        pivot_dist,
        radius,
        counters: CostCounters | None = None,
    ) -> np.ndarray:
        """Run the cascade; return the ``q x n`` survivor mask."""
        qdists = np.atleast_2d(np.asarray(qdists, dtype=np.float64))
        n_q = qdists.shape[0]
        n_o, l = pivot_idx.shape
        if n_q == 0 or n_o == 0 or l == 0:
            return np.ones((n_q, n_o), dtype=bool)
        r = np.asarray(radius, dtype=np.float64)
        rcol = r[:, None] if r.ndim else r

        order = self.slot_order
        if order.shape[0] != l:
            order = np.arange(l, dtype=np.intp)
        prefix = min(max(1, self.prefix), l - 1) if l > 1 else l
        if not self.staged or l == 1:
            prefix = l
        head, tail = order[:prefix], order[prefix:]

        # stage 1: prefix slots, chunked full broadcast
        idx_head = pivot_idx[:, head]
        dist_head = pivot_dist[:, head]
        lower = np.empty((n_q, n_o), dtype=np.float64)
        step = query_chunk(n_o, len(head))
        for start in range(0, n_q, step):
            block = qdists[start : start + step]
            lower[start : start + step] = np.abs(
                block[:, idx_head] - dist_head[None, :, :]
            ).max(axis=2)
        alive = lower <= rcol
        n_prefix = int(alive.size - alive.sum())

        # stage 2: refine survivors cell-wise with the remaining slots
        n_refine = 0
        if tail.size:
            qi, oj = np.nonzero(alive)
            cstep = _cell_step(tail.shape[0])
            for start in range(0, qi.size, cstep):
                ci = qi[start : start + cstep]
                cj = oj[start : start + cstep]
                bound = self._slot_bound_cells(
                    qdists, pivot_idx, pivot_dist, ci, cj, tail
                )
                dead = bound > (r[ci] if r.ndim else r)
                alive[ci[dead], cj[dead]] = False
                n_refine += int(dead.sum())

        # stage 4: Ptolemaic over budgeted slot pairs
        n_pt = 0
        if self.use_ptolemaic and self.slot_pairs.size:
            qi, oj = np.nonzero(alive)
            cstep = _cell_step(self.slot_pairs.shape[0])
            for start in range(0, qi.size, cstep):
                ci = qi[start : start + cstep]
                cj = oj[start : start + cstep]
                pt = self._ptolemaic_cells(qdists, pivot_idx, pivot_dist, ci, cj)
                dead = pt > (r[ci] if r.ndim else r)
                alive[ci[dead], cj[dead]] = False
                n_pt += int(dead.sum())

        if counters is not None:
            counters.add_prune_stages(
                prefix=n_prefix, refine=n_refine, ptolemaic=n_pt
            )
        return alive

    def masks_many(self, qdists, pivot_idx, pivot_dist, radius, counters=None):
        q = np.asarray(qdists, dtype=np.float64)
        return self.masks_many_queries(
            q.reshape(1, -1), pivot_idx, pivot_dist, radius, counters=counters
        )[0]
