"""Metric distance functions.

Each distance is a callable object with three entry points:

* ``d(a, b)`` -- a single distance between two raw objects,
* ``d.one_to_many(q, objects)`` -- a vectorised column of distances from one
  query object to a batch (used heavily by table-based indexes), and
* ``d.pairwise(X, Y)`` -- a full distance matrix (used by pivot selection and
  by the batch query layer's query-pivot matrices; vectorised for the L_p
  family, Hamming, and quadratic-form distances).

All of them must agree exactly; tests assert this.  The counting of distance
computations happens one level up, in
:class:`~repro.core.metric_space.MetricSpace` -- the functions here are pure.

The suite mirrors Table 2 of the paper: ``L2`` (LA), edit distance (Words),
``L1`` (Color) and ``LInf`` (Synthetic), plus the general ``LP`` family,
Hamming distance, and a positive-definite quadratic-form distance, all of
which are proper metrics.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "MetricDistance",
    "LPDistance",
    "L1",
    "L2",
    "LInf",
    "EditDistance",
    "HammingDistance",
    "QuadraticFormDistance",
    "DiscreteMetricAdapter",
]


class MetricDistance:
    """Base class for metric distance functions.

    Subclasses must implement :meth:`__call__`; the batch methods have
    generic (slow) fallbacks that subclasses override with vectorised
    versions where possible.

    Attributes:
        name: Human-readable name used in reports.
        is_discrete: True when the distance domain is integral (edit
            distance, Hamming) -- BKT/FQT require a discrete metric.
        is_ptolemaic: True when the metric satisfies Ptolemy's inequality
            ``d(q,o) * d(p,s) <= d(q,p) * d(o,s) + d(q,s) * d(o,p)``, which
            licenses the Ptolemaic lower bound in
            :mod:`~repro.core.pivot_filter`.  Metrics embeddable in a
            Hilbert space qualify (L2, and PSD quadratic forms via
            ``A = L^T L``); L1/Linf/Hamming/edit do not.
    """

    name: str = "metric"
    is_discrete: bool = False
    is_ptolemaic: bool = False

    def __call__(self, a, b) -> float:
        raise NotImplementedError

    def one_to_many(self, q, objects) -> np.ndarray:
        """Distances from ``q`` to each element of ``objects``."""
        return np.asarray([self(q, o) for o in objects], dtype=np.float64)

    def pairwise(self, xs, ys) -> np.ndarray:
        """Full |xs| x |ys| distance matrix."""
        return np.stack([self.one_to_many(x, ys) for x in xs])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.__class__.__name__}(name={self.name!r})"


class LPDistance(MetricDistance):
    """Minkowski L_p norm over numeric vectors, ``p >= 1``.

    ``p = inf`` (``math.inf`` or the string ``"inf"``) gives the Chebyshev
    distance used by the paper's Synthetic dataset.
    """

    def __init__(self, p: float):
        if isinstance(p, str):
            p = float(p)
        if p < 1:
            raise ValueError(f"L_p is only a metric for p >= 1, got p={p}")
        self.p = p
        self.name = "Linf" if np.isinf(p) else f"L{p:g}"
        # Euclidean space is Ptolemaic; no other L_p (p != 2) is.
        self.is_ptolemaic = p == 2

    def __call__(self, a, b) -> float:
        diff = np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))
        if np.isinf(self.p):
            return float(diff.max()) if diff.size else 0.0
        if self.p == 1:
            return float(diff.sum())
        if self.p == 2:
            return float(np.sqrt((diff * diff).sum()))
        return float((diff**self.p).sum() ** (1.0 / self.p))

    def one_to_many(self, q, objects) -> np.ndarray:
        mat = np.asarray(objects, dtype=np.float64)
        if mat.ndim == 1:
            mat = mat.reshape(1, -1)
        diff = np.abs(mat - np.asarray(q, dtype=np.float64))
        if np.isinf(self.p):
            return diff.max(axis=1)
        if self.p == 1:
            return diff.sum(axis=1)
        if self.p == 2:
            return np.sqrt((diff * diff).sum(axis=1))
        return (diff**self.p).sum(axis=1) ** (1.0 / self.p)

    def pairwise(self, xs, ys) -> np.ndarray:
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        diff = np.abs(xs[:, None, :] - ys[None, :, :])
        if np.isinf(self.p):
            return diff.max(axis=2)
        if self.p == 1:
            return diff.sum(axis=2)
        if self.p == 2:
            return np.sqrt((diff * diff).sum(axis=2))
        return (diff**self.p).sum(axis=2) ** (1.0 / self.p)


L1 = LPDistance(1)
L2 = LPDistance(2)
LInf = LPDistance(float("inf"))
L1.name, L2.name, LInf.name = "L1", "L2", "Linf"


class EditDistance(MetricDistance):
    """Levenshtein edit distance over strings (unit costs).

    The classic O(|a| * |b|) dynamic program with a two-row table.  Unit
    insert/delete/substitute costs make it a proper metric on strings; its
    range is the integers, so :attr:`is_discrete` is True (the paper uses it
    for the Words dataset with MaxD = 34).
    """

    name = "edit"
    is_discrete = True

    def __call__(self, a: str, b: str) -> float:
        if a == b:
            return 0.0
        if len(a) < len(b):
            a, b = b, a
        if not b:
            return float(len(a))
        previous = list(range(len(b) + 1))
        for i, ca in enumerate(a, start=1):
            current = [i]
            for j, cb in enumerate(b, start=1):
                cost = 0 if ca == cb else 1
                current.append(
                    min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
                )
            previous = current
        return float(previous[-1])

    def one_to_many(self, q: str, objects: Sequence[str]) -> np.ndarray:
        return np.asarray([self(q, o) for o in objects], dtype=np.float64)


class HammingDistance(MetricDistance):
    """Hamming distance over equal-length sequences (strings or vectors)."""

    name = "hamming"
    is_discrete = True

    def __call__(self, a, b) -> float:
        if len(a) != len(b):
            raise ValueError(
                f"Hamming distance requires equal lengths, got {len(a)} and {len(b)}"
            )
        return float(sum(1 for x, y in zip(a, b) if x != y))

    def one_to_many(self, q, objects) -> np.ndarray:
        try:
            mat = np.asarray(objects)
            qv = np.asarray(q)
            if mat.ndim == 2 and mat.shape[1] == qv.shape[0]:
                return (mat != qv).sum(axis=1).astype(np.float64)
        except (ValueError, TypeError):
            pass
        return super().one_to_many(q, objects)

    def pairwise(self, xs, ys) -> np.ndarray:
        """Vectorised |xs| x |ys| matrix via one broadcast comparison."""
        try:
            xmat = np.asarray(xs)
            ymat = np.asarray(ys)
            if (
                xmat.ndim == 2
                and ymat.ndim == 2
                and xmat.shape[1] == ymat.shape[1]
            ):
                return (
                    (xmat[:, None, :] != ymat[None, :, :]).sum(axis=2).astype(np.float64)
                )
        except (ValueError, TypeError):
            pass
        return super().pairwise(xs, ys)


class QuadraticFormDistance(MetricDistance):
    """Quadratic-form distance ``sqrt((a-b)^T A (a-b))`` for SPD matrix ``A``.

    MPEG-7 colour histograms are classically compared with quadratic-form
    distances; included as the "expensive distance" representative (the paper
    motivates pivot filtering by the cost of such functions).
    """

    name = "quadratic-form"
    # the constructor enforces A symmetric positive definite, so the metric
    # is an isometric embedding of Euclidean space (A = L^T L) -- Ptolemaic
    is_ptolemaic = True

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("matrix must be square")
        if not np.allclose(matrix, matrix.T):
            raise ValueError("matrix must be symmetric")
        eigvals = np.linalg.eigvalsh(matrix)
        if eigvals.min() <= 0:
            raise ValueError("matrix must be positive definite for a metric")
        self.matrix = matrix

    def _kernel(self, diff: np.ndarray) -> np.ndarray:
        """sqrt of the quadratic form per row.  Single code path for every
        entry point: the batch query layer requires ``d(a, b)``,
        ``one_to_many`` and ``pairwise`` to agree *bitwise*, and separate
        einsum contractions differ in the last ULP."""
        return np.sqrt(np.einsum("ij,jk,ik->i", diff, self.matrix, diff))

    def __call__(self, a, b) -> float:
        diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
        return float(self._kernel(diff.reshape(1, -1))[0])

    def one_to_many(self, q, objects) -> np.ndarray:
        diff = np.asarray(objects, dtype=np.float64) - np.asarray(q, dtype=np.float64)
        return self._kernel(np.atleast_2d(diff))

    def pairwise(self, xs, ys) -> np.ndarray:
        """Vectorised |xs| x |ys| matrix, one kernel call per query row."""
        ymat = np.atleast_2d(np.asarray(ys, dtype=np.float64))
        return np.stack(
            [self._kernel(ymat - x) for x in np.atleast_2d(np.asarray(xs, dtype=np.float64))]
        )


class DiscreteMetricAdapter(MetricDistance):
    """Wrap a continuous metric, rounding distances up to whole numbers.

    Rounding *up* (ceiling) preserves the triangle inequality's usefulness for
    pruning in discrete-domain structures: ceil(d) is itself a metric when d
    is.  Used to run BKT/FQT on datasets whose natural distances are
    continuous (the paper instead restricts those indexes to Words and the
    integer-valued Synthetic dataset; we support both routes).
    """

    is_discrete = True

    def __init__(self, inner: MetricDistance):
        self.inner = inner
        self.name = f"ceil-{inner.name}"

    def __call__(self, a, b) -> float:
        return float(np.ceil(self.inner(a, b)))

    def one_to_many(self, q, objects) -> np.ndarray:
        return np.ceil(self.inner.one_to_many(q, objects))

    def pairwise(self, xs, ys) -> np.ndarray:
        return np.ceil(self.inner.pairwise(xs, ys))
