"""Datasets: containers plus the four workload families of the paper.

The paper evaluates on LA (2-d geographic points, L2), Words (English words,
edit distance), Color (282-d MPEG-7 image features, L1), and Synthetic (20-d
integer vectors, 5 random dimensions + 15 linear combinations, L-infinity).
The real LA/Words/Color files are not redistributable here, so each generator
synthesises data with the same *structure* (dimensionality, intrinsic
dimensionality, distance domain, clusteredness); see DESIGN.md section 2 for
the substitution argument.

A :class:`Dataset` owns raw objects addressed by dense integer ids -- every
index in the library stores ids and fetches raw objects through the dataset
(or through the simulated disk for external indexes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from .distances import (
    DiscreteMetricAdapter,
    EditDistance,
    L1,
    L2,
    LInf,
    MetricDistance,
)

__all__ = [
    "Dataset",
    "DatasetStats",
    "make_la",
    "make_words",
    "make_color",
    "make_synthetic",
    "make_uniform",
    "dataset_statistics",
    "DATASET_FACTORIES",
    "save_dataset",
    "load_dataset",
]


class Dataset:
    """An ordered collection of raw metric objects with a paired distance.

    Args:
        objects: the raw objects.  Numeric vector data may be passed as a 2-d
            numpy array (kept as-is, enabling vectorised distance kernels);
            anything else is stored as a list.
        distance: the metric the paper pairs with this data.
        name: label used in benchmark reports.
    """

    def __init__(self, objects, distance: MetricDistance, name: str = "dataset"):
        if isinstance(objects, np.ndarray):
            self._objects = objects
            self._is_vector = True
        else:
            self._objects = list(objects)
            self._is_vector = False
        self.distance = distance
        self.name = name

    @property
    def is_vector(self) -> bool:
        """True when objects are rows of a numpy matrix."""
        return self._is_vector

    @property
    def objects(self):
        """The raw object container (numpy matrix or list)."""
        return self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def __getitem__(self, object_id: int):
        return self._objects[object_id]

    def __iter__(self) -> Iterator:
        return iter(self._objects)

    def ids(self) -> range:
        return range(len(self._objects))

    def subset(self, ids: Sequence[int]) -> "Dataset":
        """A new dataset holding the given ids (re-numbered densely)."""
        if self._is_vector:
            objs = self._objects[np.asarray(ids, dtype=np.intp)]
        else:
            objs = [self._objects[i] for i in ids]
        return Dataset(objs, self.distance, name=f"{self.name}[{len(ids)}]")

    def gather(self, ids: Sequence[int]):
        """Raw objects for a batch of ids, preserving vector layout."""
        if self._is_vector:
            return self._objects[np.asarray(ids, dtype=np.intp)]
        return [self._objects[i] for i in ids]

    def add(self, obj) -> int:
        """Append a new object, returning its id.

        Vector datasets pay an O(n) array copy; indexes that insert in bulk
        should batch at the workload level.
        """
        if self._is_vector:
            row = np.asarray(obj, dtype=self._objects.dtype).reshape(1, -1)
            if row.shape[1] != self._objects.shape[1]:
                raise ValueError(
                    f"object has {row.shape[1]} dims, dataset has {self._objects.shape[1]}"
                )
            self._objects = np.concatenate([self._objects, row])
        else:
            self._objects.append(obj)
        return len(self._objects) - 1

    def object_nbytes(self, object_id: int) -> int:
        """Approximate serialised size of one object, for storage accounting."""
        obj = self._objects[object_id]
        if self._is_vector:
            return int(self._objects.dtype.itemsize * self._objects.shape[1])
        if isinstance(obj, str):
            return len(obj.encode("utf-8"))
        if isinstance(obj, (list, tuple, np.ndarray)):
            return 8 * len(obj)
        return 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dataset(name={self.name!r}, n={len(self)}, distance={self.distance.name})"


@dataclass
class DatasetStats:
    """The columns of the paper's Table 2 for one dataset."""

    name: str
    cardinality: int
    dim: str
    intrinsic_dim: float
    max_distance: float
    distance_name: str

    def row(self) -> dict:
        return {
            "Dataset": self.name,
            "Cardinality": self.cardinality,
            "Dim.": self.dim,
            "Int. Dim.": round(self.intrinsic_dim, 1),
            "MaxD": round(self.max_distance, 1),
            "Dis. Measure": self.distance_name,
        }


def dataset_statistics(
    dataset: Dataset, sample_pairs: int = 20_000, seed: int = 7
) -> DatasetStats:
    """Compute Table 2 statistics.

    The intrinsic dimensionality follows the paper: ``mu^2 / (2 sigma^2)``
    where mu and sigma^2 are the mean and variance of pairwise distances
    (estimated on a random pair sample).  MaxD is the maximum sampled
    distance, rounded up to a friendly bound.
    """
    rng = np.random.default_rng(seed)
    n = len(dataset)
    if n < 2:
        raise ValueError("need at least two objects to compute statistics")
    left = rng.integers(0, n, size=sample_pairs)
    right = rng.integers(0, n, size=sample_pairs)
    keep = left != right
    left, right = left[keep], right[keep]
    d = dataset.distance
    if dataset.is_vector:
        dists = np.array(
            [d(dataset[i], dataset[j]) for i, j in zip(left, right)], dtype=np.float64
        )
    else:
        dists = np.array(
            [d(dataset[int(i)], dataset[int(j)]) for i, j in zip(left, right)],
            dtype=np.float64,
        )
    mean = float(dists.mean())
    var = float(dists.var())
    intrinsic = mean * mean / (2 * var) if var > 0 else float("inf")
    if dataset.is_vector:
        dim = str(dataset.objects.shape[1])
    else:
        lengths = [len(o) for o in dataset.objects]
        dim = f"{min(lengths)}~{max(lengths)}"
    return DatasetStats(
        name=dataset.name,
        cardinality=n,
        dim=dim,
        intrinsic_dim=intrinsic,
        max_distance=float(dists.max()),
        distance_name=d.name,
    )


# ---------------------------------------------------------------------------
# Workload generators
# ---------------------------------------------------------------------------


def make_la(n: int = 10_000, seed: int = 42) -> Dataset:
    """LA substitute: clustered 2-d points in [0, 10000]^2 under L2.

    Geographic location data is strongly clustered (city blocks, suburbs);
    we emulate that with a mixture of anisotropic Gaussians plus a uniform
    background, then clip to the paper's domain ([0, 10000] per dimension).
    """
    rng = np.random.default_rng(seed)
    n_clusters = max(8, int(math.sqrt(n)))
    centers = rng.uniform(200, 9800, size=(n_clusters, 2))
    background = max(1, n // 10)
    clustered = n - background
    counts = rng.multinomial(clustered, np.full(n_clusters, 1.0 / n_clusters))
    parts = []
    for center, count in zip(centers, counts):
        if count == 0:
            continue
        scales = rng.uniform(80, 300, size=2)
        theta = rng.uniform(0, math.pi)
        rot = np.array(
            [[math.cos(theta), -math.sin(theta)], [math.sin(theta), math.cos(theta)]]
        )
        pts = rng.normal(0.0, 1.0, size=(count, 2)) * scales
        parts.append(pts @ rot.T + center)
    parts.append(rng.uniform(0, 10_000, size=(background, 2)))
    points = np.clip(np.concatenate(parts), 0, 10_000)
    rng.shuffle(points)
    return Dataset(points[:n], L2, name="LA")


_WORD_STEMS = (
    "de fo li ate con struc tion al ly re but ter ing ed es er est ness "
    "ment anti dis pro ex im un der over sub inter trans port ship ful "
    "ous ish ize ance ence hood dom ward wise graph phone photo tele "
    "micro macro bio geo hydro auto mono multi poly semi cardi neuro "
    "ologist ism ist ity ive ate able ible tion sion cy ry ty"
).split()

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def make_words(n: int = 10_000, seed: int = 42) -> Dataset:
    """Words substitute: pseudo-English words under edit distance.

    The Moby word list contains morphologically related families (the paper's
    example: defoliates / defoliation / defoliating / defoliated), which is
    what makes edit distance clustered and the intrinsic dimension tiny.  We
    generate families around random stem compositions, then derive members by
    suffixing and small edits.  Distances are integers in a small range,
    matching the discrete domain BKT/FQT require.
    """
    rng = np.random.default_rng(seed)
    words: list[str] = []
    seen: set[str] = set()
    suffixes = ["", "s", "ed", "ing", "ion", "er", "ers", "est", "ly", "ness"]

    def emit(word: str) -> None:
        word = word[:34]
        if word and word not in seen:
            seen.add(word)
            words.append(word)

    while len(words) < n:
        kind = rng.random()
        if kind < 0.35:
            # short everyday words: broad length spread keeps the distance
            # variance high (the Moby list's intrinsic dim is only 1.2)
            length = int(rng.integers(2, 8))
            emit("".join(_ALPHABET[int(c)] for c in rng.integers(0, 26, size=length)))
        elif kind < 0.55:
            # long compounds (proper nouns, hyphen-less compound words)
            stem = "".join(
                rng.choice(_WORD_STEMS) for _ in range(int(rng.integers(4, 9)))
            )
            emit(stem)
        else:
            # morphological family around one stem (defoliate / defoliates / ...)
            stem = "".join(
                rng.choice(_WORD_STEMS) for _ in range(int(rng.integers(2, 4)))
            )
            for _ in range(int(rng.integers(1, 7))):
                word = stem + suffixes[int(rng.integers(0, len(suffixes)))]
                if rng.random() < 0.3 and len(word) > 3:
                    pos = int(rng.integers(0, len(word)))
                    letter = _ALPHABET[int(rng.integers(0, 26))]
                    word = word[:pos] + letter + word[pos + 1 :]
                emit(word)
                if len(words) == n:
                    break
    return Dataset(words, EditDistance(), name="Words")


def make_color(n: int = 10_000, dim: int = 282, latent_dim: int = 7, seed: int = 42) -> Dataset:
    """Color substitute: high-dimensional vectors with low intrinsic dim, L1.

    MPEG-7 features are 282-dimensional but concentrate near a much
    lower-dimensional manifold (the paper measures intrinsic dimension 6.5).
    We sample a ``latent_dim``-dimensional latent mixture and embed it
    linearly into ``dim`` dimensions with mild noise, scaling to the paper's
    [-255, 255] domain.
    """
    rng = np.random.default_rng(seed)
    n_clusters = 12
    centers = rng.normal(0.0, 1.0, size=(n_clusters, latent_dim))
    assign = rng.integers(0, n_clusters, size=n)
    latent = centers[assign] + rng.normal(0.0, 0.35, size=(n, latent_dim))
    embed = rng.normal(0.0, 1.0, size=(latent_dim, dim)) / math.sqrt(latent_dim)
    data = latent @ embed + rng.normal(0.0, 0.02, size=(n, dim))
    scale = 255.0 / max(1e-9, np.abs(data).max())
    data = np.clip(data * scale, -255, 255)
    return Dataset(data, L1, name="Color")


def make_synthetic(n: int = 10_000, dim: int = 20, independent: int = 5, seed: int = 42) -> Dataset:
    """The paper's Synthetic recipe, verbatim (Section 6.1).

    Five dimension values are generated randomly; the remaining dimensions
    are linear combinations of the previous ones.  Each dimension is mapped
    to [0, 10000] and values are integers so the L-infinity distances are
    discrete (required to exercise BKT and FQT).
    """
    rng = np.random.default_rng(seed)
    base = rng.uniform(0, 10_000, size=(n, independent))
    columns = [base[:, i] for i in range(independent)]
    for _ in range(dim - independent):
        k = int(rng.integers(2, independent + 1))
        picks = rng.choice(len(columns), size=k, replace=False)
        weights = rng.uniform(-1.0, 1.0, size=k)
        combo = sum(w * columns[p] for w, p in zip(weights, picks))
        lo, hi = combo.min(), combo.max()
        if hi - lo < 1e-9:
            combo = rng.uniform(0, 10_000, size=n)
        else:
            combo = (combo - lo) / (hi - lo) * 10_000
        columns.append(combo)
    data = np.rint(np.stack(columns, axis=1)).astype(np.float64)
    # integer coordinates make the L-infinity distances integers, which is
    # exactly why the paper's Synthetic dataset can exercise BKT and FQT
    distance = DiscreteMetricAdapter(LInf)
    distance.name = "Linf"
    return Dataset(data, distance, name="Synthetic")


def make_uniform(n: int = 1000, dim: int = 4, seed: int = 0) -> Dataset:
    """Plain uniform vectors (testing convenience, not in the paper)."""
    rng = np.random.default_rng(seed)
    return Dataset(rng.uniform(0, 1000, size=(n, dim)), L2, name="Uniform")


DATASET_FACTORIES = {
    "LA": make_la,
    "Words": make_words,
    "Color": make_color,
    "Synthetic": make_synthetic,
}


def save_dataset(dataset: Dataset, path) -> None:
    """Persist a dataset to disk (.npz for vectors, .txt for strings).

    The distance function is recorded by name and reconstructed on load, so
    only the built-in metrics (Table 2's L1/L2/Linf and edit distance) are
    supported; custom metrics should be re-attached by the caller.
    """
    import pathlib

    path = pathlib.Path(path)
    if dataset.is_vector:
        np.savez_compressed(
            path,
            objects=dataset.objects,
            name=np.asarray(dataset.name),
            distance=np.asarray(dataset.distance.name),
        )
    else:
        header = f"# name={dataset.name} distance={dataset.distance.name}\n"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(header)
            for word in dataset.objects:
                fh.write(word + "\n")


def load_dataset(path) -> Dataset:
    """Load a dataset written by :func:`save_dataset`."""
    import pathlib

    path = pathlib.Path(path)
    distances = {
        "L1": L1,
        "L2": L2,
        "Linf": LInf,
        "edit": EditDistance(),
    }
    if path.suffix == ".npz":
        blob = np.load(path, allow_pickle=False)
        name = str(blob["name"])
        distance_name = str(blob["distance"])
        distance = distances[distance_name]
        if distance_name == "Linf":
            data = blob["objects"]
            if np.array_equal(data, np.rint(data)):
                distance = DiscreteMetricAdapter(LInf)
                distance.name = "Linf"
        return Dataset(blob["objects"], distance, name=name)
    with open(path, encoding="utf-8") as fh:
        header = fh.readline().strip()
        words = [line.rstrip("\n") for line in fh if line.strip()]
    fields = dict(
        part.split("=", 1) for part in header.lstrip("# ").split() if "=" in part
    )
    distance = distances[fields.get("distance", "edit")]
    return Dataset(words, distance, name=fields.get("name", "dataset"))
