"""Pivot selection strategies.

The paper stresses (Section 1) that query performance "depends highly on the
pivots used", so its study fixes one strategy -- HFI, the HF-based
incremental selection from the SPB-tree paper [12] -- for every index except
EPT/EPT* (per-object pivots) and BKT (random per-subtree pivots).

Implemented strategies:

* :func:`random_pivots` -- uniform sample (baseline).
* :func:`max_variance_pivots` -- greedy maximisation of distance variance.
* :func:`hf` -- Hull of Foci (Omni-family [17]): finds near-outliers close to
  the convex-hull vertices of the dataset.
* :func:`hfi` -- HF candidates + incremental selection maximising the mean
  *precision* of the pivot lower bound, i.e. E[ max_i |d(a,p_i)-d(b,p_i)|
  / d(a,b) ] over sampled pairs -- the paper's common strategy.
* :func:`psa` -- Algorithm 1 (EPT*): per-object incremental selection from an
  HF candidate set (lives here so EPT* shares the machinery).
"""

from __future__ import annotations

import numpy as np

from .metric_space import MetricSpace

__all__ = [
    "random_pivots",
    "max_variance_pivots",
    "hf",
    "hfi",
    "psa",
    "select_pivots",
]


def random_pivots(space: MetricSpace, n_pivots: int, seed: int = 0) -> list[int]:
    """Uniformly random distinct pivots."""
    n = len(space)
    if n_pivots > n:
        raise ValueError(f"cannot select {n_pivots} pivots from {n} objects")
    rng = np.random.default_rng(seed)
    return [int(i) for i in rng.choice(n, size=n_pivots, replace=False)]


def max_variance_pivots(
    space: MetricSpace, n_pivots: int, sample_size: int = 256, seed: int = 0
) -> list[int]:
    """Greedy pivots maximising the variance of distances to a sample.

    High-variance pivots separate objects well, a classic heuristic from
    Bustos et al. [9].
    """
    rng = np.random.default_rng(seed)
    n = len(space)
    if n_pivots > n:
        raise ValueError(f"cannot select {n_pivots} pivots from {n} objects")
    sample_ids = rng.choice(n, size=min(sample_size, n), replace=False)
    candidates = rng.choice(n, size=min(4 * sample_size, n), replace=False)
    chosen: list[int] = []
    for candidate in candidates:
        if len(chosen) == n_pivots:
            break
        if int(candidate) not in chosen:
            chosen.append(int(candidate))
    # score candidates by variance, keep the best n_pivots
    scores = []
    for candidate in candidates:
        dists = space.d_ids(space.dataset[int(candidate)], list(sample_ids))
        scores.append((float(np.var(dists)), int(candidate)))
    scores.sort(reverse=True)
    result: list[int] = []
    for _, candidate in scores:
        if candidate not in result:
            result.append(candidate)
        if len(result) == n_pivots:
            break
    return result


def hf(
    space: MetricSpace,
    n_foci: int,
    sample_size: int = 512,
    seed: int = 0,
) -> list[int]:
    """Hull of Foci algorithm (Omni-family [17]).

    Picks objects near the hull of the dataset: start from the object
    farthest from a random seed, take its farthest partner as the second
    focus, then repeatedly add the object whose distances to the chosen foci
    best match the initial "edge" (the first inter-focus distance), i.e.
    minimise sum_i |d(cand, f_i) - edge|.  Works on a sample for scalability.
    """
    rng = np.random.default_rng(seed)
    n = len(space)
    if n_foci > n:
        raise ValueError(f"cannot select {n_foci} foci from {n} objects")
    sample_ids = [int(i) for i in rng.choice(n, size=min(sample_size, n), replace=False)]
    sample_objs = space.dataset.gather(sample_ids)

    seed_obj = space.dataset[sample_ids[0]]
    dists = space.d_many(seed_obj, sample_objs)
    f1 = sample_ids[int(np.argmax(dists))]
    dists = space.d_many(space.dataset[f1], sample_objs)
    f2 = sample_ids[int(np.argmax(dists))]
    edge = float(dists[sample_ids.index(f2)])
    foci = [f1]
    if n_foci >= 2 and f2 != f1:
        foci.append(f2)

    errors = np.zeros(len(sample_ids), dtype=np.float64)
    for focus in foci:
        errors += np.abs(space.d_many(space.dataset[focus], sample_objs) - edge)
    chosen = set(foci)
    while len(foci) < n_foci:
        order = np.argsort(errors)
        next_focus = None
        for idx in order:
            if sample_ids[idx] not in chosen:
                next_focus = sample_ids[idx]
                break
        if next_focus is None:
            # sample exhausted; fall back to random unseen objects
            remaining = [i for i in range(n) if i not in chosen]
            next_focus = int(rng.choice(remaining))
        foci.append(next_focus)
        chosen.add(next_focus)
        errors += np.abs(space.d_many(space.dataset[next_focus], sample_objs) - edge)
    return foci


def hfi(
    space: MetricSpace,
    n_pivots: int,
    candidate_scale: int = 40,
    sample_pairs: int = 200,
    seed: int = 0,
) -> list[int]:
    """HF-based incremental pivot selection (SPB-tree [12]).

    Candidates come from :func:`hf` (``candidate_scale`` outliers); pivots are
    then chosen greedily to maximise the similarity between the metric space
    and the mapped vector space, measured as the mean ratio of the pivot
    lower bound to the true distance over a sample of object pairs.
    """
    rng = np.random.default_rng(seed)
    n = len(space)
    n_candidates = min(max(candidate_scale, n_pivots), n)
    candidates = hf(space, n_candidates, seed=seed)

    pair_left = rng.integers(0, n, size=sample_pairs)
    pair_right = rng.integers(0, n, size=sample_pairs)
    keep = pair_left != pair_right
    pair_left = [int(i) for i in pair_left[keep]]
    pair_right = [int(i) for i in pair_right[keep]]
    true_d = np.array(
        [space.d_between_ids(i, j) for i, j in zip(pair_left, pair_right)],
        dtype=np.float64,
    )
    positive = true_d > 0
    # |pairs| x |candidates| matrix of |d(a,p) - d(b,p)|
    left_mat = space.pairwise_ids(pair_left, candidates)
    right_mat = space.pairwise_ids(pair_right, candidates)
    gaps = np.abs(left_mat - right_mat)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(positive[:, None], gaps / np.maximum(true_d[:, None], 1e-12), 0.0)

    chosen: list[int] = []
    chosen_cols: list[int] = []
    current = np.zeros(ratios.shape[0], dtype=np.float64)
    while len(chosen) < n_pivots and ratios.shape[0]:
        if len(chosen_cols) == len(candidates):
            break
        # one |candidates| x |pairs| reduction scores every candidate at
        # once; the candidates-major layout keeps each row's summation
        # order (and hence the chosen pivots) bit-identical to the scalar
        # per-column loop, and argmax keeps its first-best tie-breaking
        scores = np.maximum(current[None, :], ratios.T).mean(axis=1)
        if chosen_cols:
            scores[chosen_cols] = -np.inf
        best_col = int(np.argmax(scores))
        chosen_cols.append(best_col)
        chosen.append(candidates[best_col])
        current = np.maximum(current, ratios[:, best_col])
    if len(chosen) < n_pivots:
        extra = [i for i in range(n) if i not in chosen]
        rng.shuffle(extra)
        chosen.extend(extra[: n_pivots - len(chosen)])
    return chosen


def psa(
    space: MetricSpace,
    n_pivots_per_object: int,
    candidate_scale: int = 40,
    sample_size: int = 64,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """Pivot Selecting Algorithm (Algorithm 1) -- per-object pivots for EPT*.

    For each object o the algorithm greedily picks, from an HF candidate set
    CP, the pivots maximising E[ D(q,o) / d(q,o) ] where
    D(q,o) = max_i |d(q,p_i) - d(o,p_i)| and queries q are approximated by a
    random sample S (the paper samples O).  This is deliberately expensive --
    Table 4 reports EPT* as the costliest build -- but vectorised here over
    the candidate axis.

    Returns:
        (pivot_index_matrix, pivot_dist_matrix, candidate_ids): two
        ``n x l`` matrices giving, per object, the chosen candidate indices
        (into ``candidate_ids``) and the pre-computed distances.
    """
    rng = np.random.default_rng(seed)
    n = len(space)
    l = n_pivots_per_object
    n_candidates = min(max(candidate_scale, l), n)
    candidates = hf(space, n_candidates, seed=seed)
    sample_ids = [int(i) for i in rng.choice(n, size=min(sample_size, n), replace=False)]

    # cand_obj[c, o] = d(p_c, o); cand_sample[c, s] = d(p_c, q_s)
    cand_obj = space.pairwise_ids(candidates, list(range(n)))
    cand_sample = cand_obj[:, sample_ids]
    # sample_obj[s, o] = d(q_s, o): the denominator of the target ratio
    sample_obj = space.pairwise_ids(sample_ids, list(range(n)))
    denom = np.maximum(sample_obj, 1e-12)

    pivot_idx = np.zeros((n, l), dtype=np.int32)
    pivot_dist = np.zeros((n, l), dtype=np.float64)
    n_cand = len(candidates)
    for o in range(n):
        # gaps[c, s] = |d(q_s, p_c) - d(o, p_c)|
        gaps = np.abs(cand_sample - cand_obj[:, o : o + 1])
        ratios = gaps / denom[:, o][None, :]
        current = np.zeros(len(sample_ids), dtype=np.float64)
        used: list[int] = []
        for _ in range(l):
            scores = np.maximum(current[None, :], ratios).mean(axis=1)
            if used:
                scores[used] = -1.0
            best = int(np.argmax(scores))
            used.append(best)
            current = np.maximum(current, ratios[best])
        pivot_idx[o] = used
        pivot_dist[o] = cand_obj[used, o]
    return pivot_idx, pivot_dist, candidates


_STRATEGIES = {
    "random": random_pivots,
    "max_variance": max_variance_pivots,
    "hf": hf,
    "hfi": hfi,
}


def select_pivots(
    space: MetricSpace, n_pivots: int, strategy: str = "hfi", seed: int = 0, **kwargs
) -> list[int]:
    """Select pivots by strategy name (``random | max_variance | hf | hfi``)."""
    try:
        fn = _STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown pivot strategy {strategy!r}; choose from {sorted(_STRATEGIES)}"
        ) from None
    return fn(space, n_pivots, seed=seed, **kwargs)
