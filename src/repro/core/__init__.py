"""Core framework: metric spaces, datasets, pivots, filtering, queries."""

from .counters import CostCounters, CostSnapshot, Measurement, QueryStats
from .dataset import (
    DATASET_FACTORIES,
    Dataset,
    DatasetStats,
    dataset_statistics,
    make_color,
    load_dataset,
    make_la,
    make_synthetic,
    make_uniform,
    make_words,
    save_dataset,
)
from .distances import (
    DiscreteMetricAdapter,
    EditDistance,
    HammingDistance,
    L1,
    L2,
    LInf,
    LPDistance,
    MetricDistance,
    QuadraticFormDistance,
)
from .index import (
    MetricIndex,
    UnsupportedOperation,
    brute_force_knn,
    brute_force_knn_many,
    brute_force_range,
    brute_force_range_many,
)
from .mapping import PivotMapping
from .metric_space import MetricSpace
from .pivot_selection import hf, hfi, max_variance_pivots, psa, random_pivots, select_pivots
from .queries import KnnHeap, Neighbor, RangeResult
from .sharded import ShardedIndex

__all__ = [
    "CostCounters",
    "CostSnapshot",
    "Measurement",
    "QueryStats",
    "DATASET_FACTORIES",
    "Dataset",
    "DatasetStats",
    "dataset_statistics",
    "make_color",
    "make_la",
    "make_synthetic",
    "make_uniform",
    "make_words",
    "load_dataset",
    "save_dataset",
    "DiscreteMetricAdapter",
    "EditDistance",
    "HammingDistance",
    "L1",
    "L2",
    "LInf",
    "LPDistance",
    "MetricDistance",
    "QuadraticFormDistance",
    "MetricIndex",
    "UnsupportedOperation",
    "brute_force_knn",
    "brute_force_knn_many",
    "brute_force_range",
    "brute_force_range_many",
    "PivotMapping",
    "MetricSpace",
    "hf",
    "hfi",
    "max_variance_pivots",
    "psa",
    "random_pivots",
    "select_pivots",
    "KnnHeap",
    "Neighbor",
    "RangeResult",
    "ShardedIndex",
]
