"""Pivot mapping: embed a metric space into (R^l, L-infinity).

Given pivots P = {p_1, ..., p_l}, each object o maps to
I(o) = <d(o, p_1), ..., d(o, p_l)>.  The L-infinity distance between mapped
points lower-bounds the original distance (contractiveness), which is what
makes every filter in :mod:`repro.core.pivot_filter` safe.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .metric_space import MetricSpace

__all__ = ["PivotMapping"]


class PivotMapping:
    """Pre-computes and serves distances to a fixed pivot set.

    Args:
        space: counted metric space (mapping construction counts toward
            build-time compdists, as in the paper's Table 4).
        pivot_ids: ids of the chosen pivots within ``space.dataset``.

    Attributes:
        matrix: ``n x l`` float matrix; row i is I(o_i).
    """

    def __init__(self, space: MetricSpace, pivot_ids: Sequence[int]):
        self.space = space
        self.pivot_ids = [int(p) for p in pivot_ids]
        if not self.pivot_ids:
            raise ValueError("at least one pivot is required")
        self.pivot_objects = [space.dataset[p] for p in self.pivot_ids]
        columns = [
            space.d_many(pivot_obj, space.dataset.objects)
            for pivot_obj in self.pivot_objects
        ]
        self.matrix = np.stack(columns, axis=1)

    @property
    def n_pivots(self) -> int:
        return len(self.pivot_ids)

    @property
    def n_objects(self) -> int:
        return self.matrix.shape[0]

    def vector(self, object_id: int) -> np.ndarray:
        """I(o) for a stored object (no distance computations)."""
        return self.matrix[object_id]

    def map_query(self, q) -> np.ndarray:
        """I(q) for an arbitrary query object (counts l computations)."""
        return np.asarray(
            [self.space.d(q, pivot) for pivot in self.pivot_objects], dtype=np.float64
        )

    def map_object(self, obj) -> np.ndarray:
        """Alias of :meth:`map_query` for insertion paths."""
        return self.map_query(obj)

    def map_query_many(self, queries) -> np.ndarray:
        """I(q) for a whole query batch: a ``q x l`` matrix.

        One counted ``pairwise`` call computes every query-pivot distance at
        once (q*l computations, the same total as q ``map_query`` calls) --
        the entry point of the batch query layer for mapping-based indexes.
        """
        queries = list(queries)
        if not queries:
            return np.empty((0, self.n_pivots), dtype=np.float64)
        return self.space.pairwise_objects(queries, self.pivot_objects)

    def append(self, vector: np.ndarray) -> int:
        """Register a newly inserted object's mapped vector; returns its row."""
        vector = np.asarray(vector, dtype=np.float64).reshape(1, -1)
        if vector.shape[1] != self.n_pivots:
            raise ValueError(
                f"vector has {vector.shape[1]} entries, expected {self.n_pivots}"
            )
        self.matrix = np.concatenate([self.matrix, vector])
        return self.matrix.shape[0] - 1

    def max_distance_bound(self) -> float:
        """An upper bound of the dataset diameter derived from the mapping.

        For any o, o': d(o,o') <= d(o,p) + d(o',p) <= 2 * max column value.
        Used by indexes that need the paper's d+ (M-index keys, SPB-tree
        discretisation) without extra distance computations.
        """
        return float(2.0 * self.matrix.max()) if self.matrix.size else 0.0

    def nbytes(self) -> int:
        """Size of the pre-computed distance table."""
        return int(self.matrix.nbytes)
