"""Pivot-based filtering and validation: Lemmas 1-4 of the paper.

These are the pruning rules every index shares:

* **Lemma 1 (pivot filtering)** -- an object o with mapped vector
  I(o) = <d(o,p_1), ..., d(o,p_l)> cannot be within r of q unless I(o) lies
  inside the box SR(q) = prod_i [d(q,p_i)-r, d(q,p_i)+r].  Equivalently,
  max_i |d(q,p_i) - d(o,p_i)| is a lower bound of d(q,o).
* **Lemma 2 (range-pivot filtering)** -- a ball region (pivot p, radius R)
  can be pruned when d(q,p) > R + r.
* **Lemma 3 (double-pivot filtering)** -- a generalized-hyperplane region
  assigned to p_i can be pruned when d(q,p_i) - d(q,p_j) > 2r.
* **Lemma 4 (pivot validation)** -- o is guaranteed to be an answer when
  d(o,p_i) <= r - d(q,p_i) for some pivot p_i.

The vectorised variants operate on whole columns of pre-computed distances
(`n x l` matrices) and on MBBs in pivot space; they are the hot path of the
table indexes and of MBB-equipped external indexes.

The ``*_many_queries`` variants lift Lemmas 1 and 4 to whole query batches:
given a ``q x l`` matrix of query-pivot distances and the ``n x l`` object
table, they produce the full ``q x n`` bound matrix in a handful of numpy
operations -- the core of the batch query execution layer.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "lower_bound",
    "lower_bound_many",
    "lower_bound_many_queries",
    "upper_bound",
    "upper_bound_many",
    "upper_bound_many_queries",
    "ptolemaic_pairs",
    "ptolemaic_lower_bound",
    "ptolemaic_lower_bound_many",
    "ptolemaic_lower_bound_many_queries",
    "can_prune",
    "can_validate",
    "query_chunk",
    "range_pivot_can_prune",
    "range_pivot_min_dist",
    "double_pivot_can_prune",
    "mbb_min_dist",
    "mbb_min_dist_many_queries",
    "mbb_max_dist",
    "mbb_max_dist_many_queries",
    "mbb_can_prune",
    "mbb_can_validate",
    "mbb_prune_mask_many_queries",
    "mbb_validate_mask_many_queries",
]


def lower_bound(query_pivot_dists, object_pivot_dists) -> float:
    """Best triangle-inequality lower bound of d(q, o) over shared pivots."""
    q = np.asarray(query_pivot_dists, dtype=np.float64)
    o = np.asarray(object_pivot_dists, dtype=np.float64)
    if q.size == 0:
        return 0.0
    return float(np.abs(q - o).max())


def _object_rows(object_pivot_matrix) -> np.ndarray:
    """Normalize an object-pivot table to a 2-D float64 ``n x l`` array.

    Accepts the degenerate shapes the empty-table / empty-pivot edges
    produce: a 0-d scalar and a 1-D empty array (both mean zero objects),
    an ``n x 0`` matrix (zero pivots), and a bare 1-D row (one object's
    pivot distances).  Keeping this in one place is what makes
    :func:`lower_bound_many` and :func:`upper_bound_many` agree on the
    dtype and shape of their zero-size results.
    """
    mat = np.asarray(object_pivot_matrix, dtype=np.float64)
    if mat.ndim == 0 or (mat.ndim == 1 and mat.size == 0):
        # a 0-d scalar cannot be reshaped when its size is 1 -- both
        # degenerate shapes mean "no object rows", so hand back a real
        # 0 x 0 table instead
        return np.empty((0, 0), dtype=np.float64)
    if mat.ndim == 1:
        return mat.reshape(1, -1)
    return mat


def lower_bound_many(query_pivot_dists, object_pivot_matrix) -> np.ndarray:
    """Lower bounds of d(q, o) for every row of an ``n x l`` distance matrix."""
    q = np.asarray(query_pivot_dists, dtype=np.float64)
    mat = _object_rows(object_pivot_matrix)
    if mat.size == 0:
        # zero pivots: one (trivial) 0.0 bound per object row; zero objects:
        # an empty float64 vector -- never a 0-d or integer-dtype result
        return np.zeros(mat.shape[0], dtype=np.float64)
    return np.abs(mat - q).max(axis=1)


# bound-matrix computations broadcast a q x n x l intermediate; chunking the
# query axis keeps that temporary under ~8 MB regardless of batch size
_QUERY_CHUNK_FLOATS = 1_000_000


def query_chunk(n_objects: int, n_pivots: int) -> int:
    """Queries per block so a q x n x l float temporary stays bounded."""
    cells = max(1, n_objects * n_pivots)
    return max(1, _QUERY_CHUNK_FLOATS // cells)


def lower_bound_many_queries(query_pivot_matrix, object_pivot_matrix) -> np.ndarray:
    """Lemma 1 for a batch: ``q x n`` lower bounds of d(q_i, o_j).

    ``query_pivot_matrix`` is ``q x l`` (one row per query, I(q_i)); the
    object matrix is ``n x l``.  Entry (i, j) equals
    ``lower_bound(query_pivot_matrix[i], object_pivot_matrix[j])``.
    """
    qmat = np.atleast_2d(np.asarray(query_pivot_matrix, dtype=np.float64))
    omat = np.atleast_2d(np.asarray(object_pivot_matrix, dtype=np.float64))
    n_queries = qmat.shape[0]
    n_objects = omat.shape[0]
    if qmat.size == 0 or omat.size == 0:
        return np.zeros((n_queries, n_objects), dtype=np.float64)
    out = np.empty((n_queries, n_objects), dtype=np.float64)
    step = query_chunk(n_objects, omat.shape[1])
    for start in range(0, n_queries, step):
        block = qmat[start : start + step]
        out[start : start + step] = np.abs(
            block[:, None, :] - omat[None, :, :]
        ).max(axis=2)
    return out


def upper_bound_many_queries(query_pivot_matrix, object_pivot_matrix) -> np.ndarray:
    """Lemma 4 for a batch: ``q x n`` upper bounds of d(q_i, o_j)."""
    qmat = np.atleast_2d(np.asarray(query_pivot_matrix, dtype=np.float64))
    omat = np.atleast_2d(np.asarray(object_pivot_matrix, dtype=np.float64))
    n_queries = qmat.shape[0]
    n_objects = omat.shape[0]
    if qmat.size == 0 or omat.size == 0:
        return np.full((n_queries, n_objects), np.inf)
    out = np.empty((n_queries, n_objects), dtype=np.float64)
    step = query_chunk(n_objects, omat.shape[1])
    for start in range(0, n_queries, step):
        block = qmat[start : start + step]
        out[start : start + step] = (block[:, None, :] + omat[None, :, :]).min(axis=2)
    return out


def upper_bound(query_pivot_dists, object_pivot_dists) -> float:
    """Best triangle-inequality upper bound of d(q, o) over shared pivots."""
    q = np.asarray(query_pivot_dists, dtype=np.float64)
    o = np.asarray(object_pivot_dists, dtype=np.float64)
    if q.size == 0:
        return float("inf")
    return float((q + o).min())


def upper_bound_many(query_pivot_dists, object_pivot_matrix) -> np.ndarray:
    """Upper bounds of d(q, o) for every row of an ``n x l`` distance matrix."""
    q = np.asarray(query_pivot_dists, dtype=np.float64)
    mat = _object_rows(object_pivot_matrix)
    if mat.size == 0:
        return np.full(mat.shape[0], np.inf, dtype=np.float64)
    return (mat + q).min(axis=1)


# -- Ptolemaic bounds ---------------------------------------------------------
#
# For metrics satisfying Ptolemy's inequality
#     d(q,o) * d(p_i,p_j) <= d(q,p_i) * d(o,p_j) + d(q,p_j) * d(o,p_i)
# (L2 and PSD quadratic forms; see MetricDistance.is_ptolemaic), each pivot
# pair yields the lower bound
#     d(q,o) >= |d(q,p_i) * d(o,p_j) - d(q,p_j) * d(o,p_i)| / d(p_i,p_j).
# It is not pointwise tighter than the triangle bound, so callers take the
# max of both; the staged cascade runs it only on Lemma-1 survivors.


def ptolemaic_pairs(pivot_pair_dists, order=None, budget: int = 8) -> np.ndarray:
    """Budgeted pivot pairs for the Ptolemaic bound, best-ranked first.

    Enumerates pairs among the top-ranked pivots first (ranked by
    ``order`` when given, else column order), skipping zero-distance
    pairs whose denominator would be degenerate.  Returns an ``m x 2``
    int array with ``m <= budget``.
    """
    mat = np.asarray(pivot_pair_dists, dtype=np.float64)
    ranked = [int(i) for i in (order if order is not None else range(mat.shape[0]))]
    pairs: list[tuple[int, int]] = []
    for second in range(1, len(ranked)):
        for first in range(second):
            i, j = ranked[first], ranked[second]
            if mat[i, j] > 0.0:
                pairs.append((i, j))
                if len(pairs) >= budget:
                    return np.asarray(pairs, dtype=np.intp)
    return np.asarray(pairs, dtype=np.intp).reshape(-1, 2)


def ptolemaic_lower_bound(
    query_pivot_dists, object_pivot_dists, pivot_pair_dists, pairs=None
) -> float:
    """Best Ptolemaic lower bound of d(q, o) over the given pivot pairs."""
    bounds = ptolemaic_lower_bound_many(
        query_pivot_dists,
        np.atleast_2d(np.asarray(object_pivot_dists, dtype=np.float64)),
        pivot_pair_dists,
        pairs=pairs,
    )
    return float(bounds[0]) if bounds.size else 0.0


def ptolemaic_lower_bound_many(
    query_pivot_dists, object_pivot_matrix, pivot_pair_dists, pairs=None
) -> np.ndarray:
    """Ptolemaic lower bounds for every row of an ``n x l`` distance matrix."""
    q = np.asarray(query_pivot_dists, dtype=np.float64)
    out = ptolemaic_lower_bound_many_queries(
        q.reshape(1, -1), object_pivot_matrix, pivot_pair_dists, pairs=pairs
    )
    return out[0]


def ptolemaic_lower_bound_many_queries(
    query_pivot_matrix, object_pivot_matrix, pivot_pair_dists, pairs=None
) -> np.ndarray:
    """Ptolemaic bound for a batch: ``q x n`` lower bounds of d(q_i, o_j).

    ``pivot_pair_dists`` is the ``l x l`` pivot-pair distance matrix
    computed at build time; ``pairs`` (``m x 2`` int, e.g. from
    :func:`ptolemaic_pairs`) selects the budgeted pairs -- all valid
    pairs when omitted.  Chunked over the query axis like
    :func:`lower_bound_many_queries` so the ``q x n x m`` temporary stays
    bounded.
    """
    qmat = np.atleast_2d(np.asarray(query_pivot_matrix, dtype=np.float64))
    omat = _object_rows(object_pivot_matrix)
    pairmat = np.asarray(pivot_pair_dists, dtype=np.float64)
    if pairs is None:
        pairs = ptolemaic_pairs(pairmat, budget=pairmat.shape[0] ** 2)
    pairs = np.asarray(pairs, dtype=np.intp).reshape(-1, 2)
    n_queries = qmat.shape[0]
    n_objects = omat.shape[0]
    if qmat.size == 0 or omat.size == 0 or pairs.size == 0:
        return np.zeros((n_queries, n_objects), dtype=np.float64)
    left, right = pairs[:, 0], pairs[:, 1]
    denom = pairmat[left, right]
    q_left, q_right = qmat[:, left], qmat[:, right]
    o_left, o_right = omat[:, left], omat[:, right]
    out = np.empty((n_queries, n_objects), dtype=np.float64)
    step = query_chunk(n_objects, len(pairs))
    for start in range(0, n_queries, step):
        stop = start + step
        cross = np.abs(
            q_left[start:stop, None, :] * o_right[None, :, :]
            - q_right[start:stop, None, :] * o_left[None, :, :]
        )
        out[start:stop] = (cross / denom).max(axis=2)
    return out


def can_prune(query_pivot_dists, object_pivot_dists, radius: float) -> bool:
    """Lemma 1: True when o is provably outside the query ball."""
    return lower_bound(query_pivot_dists, object_pivot_dists) > radius


def can_validate(query_pivot_dists, object_pivot_dists, radius: float) -> bool:
    """Lemma 4: True when o is provably inside the query ball."""
    return upper_bound(query_pivot_dists, object_pivot_dists) <= radius


def range_pivot_can_prune(query_to_pivot: float, region_radius: float, radius: float) -> bool:
    """Lemma 2: prune ball region (p, R) when d(q,p) > R + r."""
    return query_to_pivot > region_radius + radius


def range_pivot_min_dist(query_to_pivot: float, region_radius: float) -> float:
    """Lower bound of d(q, o) for any o inside ball region (p, R)."""
    return max(0.0, query_to_pivot - region_radius)


def double_pivot_can_prune(query_to_own: float, query_to_other: float, radius: float) -> bool:
    """Lemma 3: prune hyperplane region of p_i when d(q,p_i) - d(q,p_j) > 2r."""
    return query_to_own - query_to_other > 2.0 * radius


def mbb_min_dist(query_pivot_dists, lows, highs) -> float:
    """Minimum possible lower-bound distance from q to any point in an MBB.

    The MBB ``[lows, highs]`` bounds mapped vectors I(o); the pivot-space
    metric is L-infinity, so the minimum of max_i |q_i - v_i| over the box is
    the L-infinity point-to-rectangle distance.  It lower-bounds d(q, o) for
    every o inside, hence drives both pruning and best-first orderings.
    """
    q = np.asarray(query_pivot_dists, dtype=np.float64)
    lo = np.asarray(lows, dtype=np.float64)
    hi = np.asarray(highs, dtype=np.float64)
    gaps = np.maximum(np.maximum(lo - q, q - hi), 0.0)
    return float(gaps.max()) if gaps.size else 0.0


def mbb_max_dist(query_pivot_dists, lows, highs) -> float:
    """An upper bound of d(q, o) valid for every o inside the MBB.

    For each pivot i, d(q,o) <= d(q,p_i) + d(o,p_i) <= q_i + hi_i; the best
    (smallest) such bound over pivots is returned (Lemma 4 lifted to MBBs).
    """
    q = np.asarray(query_pivot_dists, dtype=np.float64)
    hi = np.asarray(highs, dtype=np.float64)
    if q.size == 0:
        return float("inf")
    return float((q + hi).min())


def mbb_can_prune(query_pivot_dists, lows, highs, radius: float) -> bool:
    """Lemma 1 on a whole region: prune when the MBB misses SR(q)."""
    return mbb_min_dist(query_pivot_dists, lows, highs) > radius


def mbb_can_validate(query_pivot_dists, lows, highs, radius: float) -> bool:
    """Lemma 4 on a whole region: every object in the MBB is an answer."""
    return mbb_max_dist(query_pivot_dists, lows, highs) <= radius


def mbb_min_dist_many_queries(query_pivot_matrix, lows, highs) -> np.ndarray:
    """:func:`mbb_min_dist` for a batch of queries over a batch of MBBs.

    ``query_pivot_matrix`` is ``q x l`` (one row per I(q_i)); ``lows`` /
    ``highs`` are ``c x l`` (one row per region MBB).  Entry (i, j) equals
    ``mbb_min_dist(query_pivot_matrix[i], lows[j], highs[j])`` -- the
    ``q x c`` matrix of region lower bounds that drives batched pruning and
    best-first orderings over clusters/nodes of the external category.
    """
    qmat = np.atleast_2d(np.asarray(query_pivot_matrix, dtype=np.float64))
    lo = np.atleast_2d(np.asarray(lows, dtype=np.float64))
    hi = np.atleast_2d(np.asarray(highs, dtype=np.float64))
    n_queries = qmat.shape[0]
    n_regions = lo.shape[0]
    if qmat.size == 0 or lo.size == 0:
        return np.zeros((n_queries, n_regions), dtype=np.float64)
    out = np.empty((n_queries, n_regions), dtype=np.float64)
    step = query_chunk(n_regions, lo.shape[1])
    for start in range(0, n_queries, step):
        block = qmat[start : start + step, None, :]
        out[start : start + step] = np.maximum(
            np.maximum(lo[None, :, :] - block, block - hi[None, :, :]), 0.0
        ).max(axis=2)
    return out


def mbb_max_dist_many_queries(query_pivot_matrix, lows, highs) -> np.ndarray:
    """:func:`mbb_max_dist` for a batch of queries over a batch of MBBs.

    Returns the ``q x c`` matrix of region upper bounds (Lemma 4 lifted to
    MBBs); ``lows`` is accepted for signature symmetry but, as in the
    scalar form, only the ``highs`` corners matter.
    """
    qmat = np.atleast_2d(np.asarray(query_pivot_matrix, dtype=np.float64))
    hi = np.atleast_2d(np.asarray(highs, dtype=np.float64))
    n_queries = qmat.shape[0]
    n_regions = hi.shape[0]
    if qmat.size == 0 or hi.size == 0:
        return np.full((n_queries, n_regions), np.inf)
    out = np.empty((n_queries, n_regions), dtype=np.float64)
    step = query_chunk(n_regions, hi.shape[1])
    for start in range(0, n_queries, step):
        block = qmat[start : start + step, None, :]
        out[start : start + step] = (block + hi[None, :, :]).min(axis=2)
    return out


def mbb_prune_mask_many_queries(
    query_pivot_matrix, lows, highs, radius, order=None, prefix=None, counters=None
) -> np.ndarray:
    """Lemma 1 prune mask over (queries x regions).

    ``radius`` may be a scalar (shared MRQ radius) or a per-query array
    (MkNNQ heap radii); entry (i, j) is True when region j is provably
    outside query i's ball.

    When ``order`` (a pivot-column permutation) and ``prefix`` are given,
    the mask is computed as a staged cascade: the box test runs over the
    first ``prefix`` ranked columns, decided cells drop out, and only the
    surviving (query, region) cells see the remaining columns.  The mask
    is identical either way -- the per-column gap maximum is order
    independent -- but the refine stage touches far fewer cells when the
    prefix columns carry most of the pruning power.  Stage counts go to
    ``counters`` (a :class:`~repro.core.counters.CostCounters`) when given.
    """
    r = np.asarray(radius, dtype=np.float64)
    rcol = r[:, None] if r.ndim else r
    qmat = np.atleast_2d(np.asarray(query_pivot_matrix, dtype=np.float64))
    lo = np.atleast_2d(np.asarray(lows, dtype=np.float64))
    hi = np.atleast_2d(np.asarray(highs, dtype=np.float64))
    n_pivots = qmat.shape[1] if qmat.size else 0
    if order is None or prefix is None or not 0 < prefix < n_pivots:
        return mbb_min_dist_many_queries(qmat, lo, hi) > rcol
    order = np.asarray(order, dtype=np.intp)
    head, tail = order[:prefix], order[prefix:]
    pruned = mbb_min_dist_many_queries(qmat[:, head], lo[:, head], hi[:, head]) > rcol
    n_prefix = int(pruned.sum())
    n_refine = 0
    qi, rj = np.nonzero(~pruned)
    if qi.size:
        q_tail = qmat[qi][:, tail]
        gaps = np.maximum(
            np.maximum(lo[rj][:, tail] - q_tail, q_tail - hi[rj][:, tail]), 0.0
        ).max(axis=1)
        extra = gaps > (r[qi] if r.ndim else r)
        pruned[qi[extra], rj[extra]] = True
        n_refine = int(extra.sum())
    if counters is not None:
        counters.add_prune_stages(prefix=n_prefix, refine=n_refine)
    return pruned


def mbb_validate_mask_many_queries(query_pivot_matrix, lows, highs, radius) -> np.ndarray:
    """Lemma 4 validate mask over (queries x regions).

    Entry (i, j) is True when every object inside region j is provably an
    answer of query i (no fetch, no distance computation needed).
    """
    r = np.asarray(radius, dtype=np.float64)
    return mbb_max_dist_many_queries(query_pivot_matrix, lows, highs) <= (
        r[:, None] if r.ndim else r
    )
