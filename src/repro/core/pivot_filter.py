"""Pivot-based filtering and validation: Lemmas 1-4 of the paper.

These are the pruning rules every index shares:

* **Lemma 1 (pivot filtering)** -- an object o with mapped vector
  I(o) = <d(o,p_1), ..., d(o,p_l)> cannot be within r of q unless I(o) lies
  inside the box SR(q) = prod_i [d(q,p_i)-r, d(q,p_i)+r].  Equivalently,
  max_i |d(q,p_i) - d(o,p_i)| is a lower bound of d(q,o).
* **Lemma 2 (range-pivot filtering)** -- a ball region (pivot p, radius R)
  can be pruned when d(q,p) > R + r.
* **Lemma 3 (double-pivot filtering)** -- a generalized-hyperplane region
  assigned to p_i can be pruned when d(q,p_i) - d(q,p_j) > 2r.
* **Lemma 4 (pivot validation)** -- o is guaranteed to be an answer when
  d(o,p_i) <= r - d(q,p_i) for some pivot p_i.

The vectorised variants operate on whole columns of pre-computed distances
(`n x l` matrices) and on MBBs in pivot space; they are the hot path of the
table indexes and of MBB-equipped external indexes.

The ``*_many_queries`` variants lift Lemmas 1 and 4 to whole query batches:
given a ``q x l`` matrix of query-pivot distances and the ``n x l`` object
table, they produce the full ``q x n`` bound matrix in a handful of numpy
operations -- the core of the batch query execution layer.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "lower_bound",
    "lower_bound_many",
    "lower_bound_many_queries",
    "upper_bound",
    "upper_bound_many",
    "upper_bound_many_queries",
    "can_prune",
    "can_validate",
    "query_chunk",
    "range_pivot_can_prune",
    "range_pivot_min_dist",
    "double_pivot_can_prune",
    "mbb_min_dist",
    "mbb_min_dist_many_queries",
    "mbb_max_dist",
    "mbb_max_dist_many_queries",
    "mbb_can_prune",
    "mbb_can_validate",
    "mbb_prune_mask_many_queries",
    "mbb_validate_mask_many_queries",
]


def lower_bound(query_pivot_dists, object_pivot_dists) -> float:
    """Best triangle-inequality lower bound of d(q, o) over shared pivots."""
    q = np.asarray(query_pivot_dists, dtype=np.float64)
    o = np.asarray(object_pivot_dists, dtype=np.float64)
    if q.size == 0:
        return 0.0
    return float(np.abs(q - o).max())


def lower_bound_many(query_pivot_dists, object_pivot_matrix) -> np.ndarray:
    """Lower bounds of d(q, o) for every row of an ``n x l`` distance matrix."""
    q = np.asarray(query_pivot_dists, dtype=np.float64)
    mat = np.asarray(object_pivot_matrix, dtype=np.float64)
    if mat.size == 0:
        return np.zeros(mat.shape[0] if mat.ndim else 0, dtype=np.float64)
    return np.abs(mat - q).max(axis=1)


# bound-matrix computations broadcast a q x n x l intermediate; chunking the
# query axis keeps that temporary under ~8 MB regardless of batch size
_QUERY_CHUNK_FLOATS = 1_000_000


def query_chunk(n_objects: int, n_pivots: int) -> int:
    """Queries per block so a q x n x l float temporary stays bounded."""
    cells = max(1, n_objects * n_pivots)
    return max(1, _QUERY_CHUNK_FLOATS // cells)


def lower_bound_many_queries(query_pivot_matrix, object_pivot_matrix) -> np.ndarray:
    """Lemma 1 for a batch: ``q x n`` lower bounds of d(q_i, o_j).

    ``query_pivot_matrix`` is ``q x l`` (one row per query, I(q_i)); the
    object matrix is ``n x l``.  Entry (i, j) equals
    ``lower_bound(query_pivot_matrix[i], object_pivot_matrix[j])``.
    """
    qmat = np.atleast_2d(np.asarray(query_pivot_matrix, dtype=np.float64))
    omat = np.atleast_2d(np.asarray(object_pivot_matrix, dtype=np.float64))
    n_queries = qmat.shape[0]
    n_objects = omat.shape[0]
    if qmat.size == 0 or omat.size == 0:
        return np.zeros((n_queries, n_objects), dtype=np.float64)
    out = np.empty((n_queries, n_objects), dtype=np.float64)
    step = query_chunk(n_objects, omat.shape[1])
    for start in range(0, n_queries, step):
        block = qmat[start : start + step]
        out[start : start + step] = np.abs(
            block[:, None, :] - omat[None, :, :]
        ).max(axis=2)
    return out


def upper_bound_many_queries(query_pivot_matrix, object_pivot_matrix) -> np.ndarray:
    """Lemma 4 for a batch: ``q x n`` upper bounds of d(q_i, o_j)."""
    qmat = np.atleast_2d(np.asarray(query_pivot_matrix, dtype=np.float64))
    omat = np.atleast_2d(np.asarray(object_pivot_matrix, dtype=np.float64))
    n_queries = qmat.shape[0]
    n_objects = omat.shape[0]
    if qmat.size == 0 or omat.size == 0:
        return np.full((n_queries, n_objects), np.inf)
    out = np.empty((n_queries, n_objects), dtype=np.float64)
    step = query_chunk(n_objects, omat.shape[1])
    for start in range(0, n_queries, step):
        block = qmat[start : start + step]
        out[start : start + step] = (block[:, None, :] + omat[None, :, :]).min(axis=2)
    return out


def upper_bound(query_pivot_dists, object_pivot_dists) -> float:
    """Best triangle-inequality upper bound of d(q, o) over shared pivots."""
    q = np.asarray(query_pivot_dists, dtype=np.float64)
    o = np.asarray(object_pivot_dists, dtype=np.float64)
    if q.size == 0:
        return float("inf")
    return float((q + o).min())


def upper_bound_many(query_pivot_dists, object_pivot_matrix) -> np.ndarray:
    """Upper bounds of d(q, o) for every row of an ``n x l`` distance matrix."""
    q = np.asarray(query_pivot_dists, dtype=np.float64)
    mat = np.asarray(object_pivot_matrix, dtype=np.float64)
    if mat.size == 0:
        return np.full(mat.shape[0] if mat.ndim else 0, np.inf)
    return (mat + q).min(axis=1)


def can_prune(query_pivot_dists, object_pivot_dists, radius: float) -> bool:
    """Lemma 1: True when o is provably outside the query ball."""
    return lower_bound(query_pivot_dists, object_pivot_dists) > radius


def can_validate(query_pivot_dists, object_pivot_dists, radius: float) -> bool:
    """Lemma 4: True when o is provably inside the query ball."""
    return upper_bound(query_pivot_dists, object_pivot_dists) <= radius


def range_pivot_can_prune(query_to_pivot: float, region_radius: float, radius: float) -> bool:
    """Lemma 2: prune ball region (p, R) when d(q,p) > R + r."""
    return query_to_pivot > region_radius + radius


def range_pivot_min_dist(query_to_pivot: float, region_radius: float) -> float:
    """Lower bound of d(q, o) for any o inside ball region (p, R)."""
    return max(0.0, query_to_pivot - region_radius)


def double_pivot_can_prune(query_to_own: float, query_to_other: float, radius: float) -> bool:
    """Lemma 3: prune hyperplane region of p_i when d(q,p_i) - d(q,p_j) > 2r."""
    return query_to_own - query_to_other > 2.0 * radius


def mbb_min_dist(query_pivot_dists, lows, highs) -> float:
    """Minimum possible lower-bound distance from q to any point in an MBB.

    The MBB ``[lows, highs]`` bounds mapped vectors I(o); the pivot-space
    metric is L-infinity, so the minimum of max_i |q_i - v_i| over the box is
    the L-infinity point-to-rectangle distance.  It lower-bounds d(q, o) for
    every o inside, hence drives both pruning and best-first orderings.
    """
    q = np.asarray(query_pivot_dists, dtype=np.float64)
    lo = np.asarray(lows, dtype=np.float64)
    hi = np.asarray(highs, dtype=np.float64)
    gaps = np.maximum(np.maximum(lo - q, q - hi), 0.0)
    return float(gaps.max()) if gaps.size else 0.0


def mbb_max_dist(query_pivot_dists, lows, highs) -> float:
    """An upper bound of d(q, o) valid for every o inside the MBB.

    For each pivot i, d(q,o) <= d(q,p_i) + d(o,p_i) <= q_i + hi_i; the best
    (smallest) such bound over pivots is returned (Lemma 4 lifted to MBBs).
    """
    q = np.asarray(query_pivot_dists, dtype=np.float64)
    hi = np.asarray(highs, dtype=np.float64)
    if q.size == 0:
        return float("inf")
    return float((q + hi).min())


def mbb_can_prune(query_pivot_dists, lows, highs, radius: float) -> bool:
    """Lemma 1 on a whole region: prune when the MBB misses SR(q)."""
    return mbb_min_dist(query_pivot_dists, lows, highs) > radius


def mbb_can_validate(query_pivot_dists, lows, highs, radius: float) -> bool:
    """Lemma 4 on a whole region: every object in the MBB is an answer."""
    return mbb_max_dist(query_pivot_dists, lows, highs) <= radius


def mbb_min_dist_many_queries(query_pivot_matrix, lows, highs) -> np.ndarray:
    """:func:`mbb_min_dist` for a batch of queries over a batch of MBBs.

    ``query_pivot_matrix`` is ``q x l`` (one row per I(q_i)); ``lows`` /
    ``highs`` are ``c x l`` (one row per region MBB).  Entry (i, j) equals
    ``mbb_min_dist(query_pivot_matrix[i], lows[j], highs[j])`` -- the
    ``q x c`` matrix of region lower bounds that drives batched pruning and
    best-first orderings over clusters/nodes of the external category.
    """
    qmat = np.atleast_2d(np.asarray(query_pivot_matrix, dtype=np.float64))
    lo = np.atleast_2d(np.asarray(lows, dtype=np.float64))
    hi = np.atleast_2d(np.asarray(highs, dtype=np.float64))
    n_queries = qmat.shape[0]
    n_regions = lo.shape[0]
    if qmat.size == 0 or lo.size == 0:
        return np.zeros((n_queries, n_regions), dtype=np.float64)
    out = np.empty((n_queries, n_regions), dtype=np.float64)
    step = query_chunk(n_regions, lo.shape[1])
    for start in range(0, n_queries, step):
        block = qmat[start : start + step, None, :]
        out[start : start + step] = np.maximum(
            np.maximum(lo[None, :, :] - block, block - hi[None, :, :]), 0.0
        ).max(axis=2)
    return out


def mbb_max_dist_many_queries(query_pivot_matrix, lows, highs) -> np.ndarray:
    """:func:`mbb_max_dist` for a batch of queries over a batch of MBBs.

    Returns the ``q x c`` matrix of region upper bounds (Lemma 4 lifted to
    MBBs); ``lows`` is accepted for signature symmetry but, as in the
    scalar form, only the ``highs`` corners matter.
    """
    qmat = np.atleast_2d(np.asarray(query_pivot_matrix, dtype=np.float64))
    hi = np.atleast_2d(np.asarray(highs, dtype=np.float64))
    n_queries = qmat.shape[0]
    n_regions = hi.shape[0]
    if qmat.size == 0 or hi.size == 0:
        return np.full((n_queries, n_regions), np.inf)
    out = np.empty((n_queries, n_regions), dtype=np.float64)
    step = query_chunk(n_regions, hi.shape[1])
    for start in range(0, n_queries, step):
        block = qmat[start : start + step, None, :]
        out[start : start + step] = (block + hi[None, :, :]).min(axis=2)
    return out


def mbb_prune_mask_many_queries(query_pivot_matrix, lows, highs, radius) -> np.ndarray:
    """Lemma 1 prune mask over (queries x regions).

    ``radius`` may be a scalar (shared MRQ radius) or a per-query array
    (MkNNQ heap radii); entry (i, j) is True when region j is provably
    outside query i's ball.
    """
    r = np.asarray(radius, dtype=np.float64)
    return mbb_min_dist_many_queries(query_pivot_matrix, lows, highs) > (
        r[:, None] if r.ndim else r
    )


def mbb_validate_mask_many_queries(query_pivot_matrix, lows, highs, radius) -> np.ndarray:
    """Lemma 4 validate mask over (queries x regions).

    Entry (i, j) is True when every object inside region j is provably an
    answer of query i (no fetch, no distance computation needed).
    """
    r = np.asarray(radius, dtype=np.float64)
    return mbb_max_dist_many_queries(query_pivot_matrix, lows, highs) <= (
        r[:, None] if r.ndim else r
    )
