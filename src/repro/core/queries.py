"""Query result containers and the bounded k-NN heap.

Defines the two query types of Section 2.1:

* **MRQ(q, r)** -- metric range query: all objects within distance r of q.
* **MkNNQ(q, k)** -- metric k nearest neighbours.

:class:`KnnHeap` implements the standard "radius tightening" used by every
best-first MkNNQ algorithm in the paper: the search radius starts at infinity
and shrinks to the current k-th nearest distance as candidates are verified.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = ["Neighbor", "KnnHeap", "RangeResult", "best_first_knn"]


@dataclass(frozen=True, order=True)
class Neighbor:
    """One answer of a k-NN query (ordered by distance, then id)."""

    distance: float
    object_id: int


@dataclass
class RangeResult:
    """Answer set of a metric range query."""

    ids: list[int] = field(default_factory=list)
    distances: dict[int, float] = field(default_factory=dict)

    def add(self, object_id: int, distance: float | None = None) -> None:
        self.ids.append(object_id)
        if distance is not None:
            self.distances[object_id] = distance

    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, object_id: int) -> bool:
        return object_id in set(self.ids)

    def sorted_ids(self) -> list[int]:
        return sorted(self.ids)


def best_first_knn(
    lower_bounds: np.ndarray,
    row_ids: Sequence[int],
    k: int,
    verify_many: Callable[[list[int]], np.ndarray],
) -> list[Neighbor]:
    """Exact MkNNQ over a pre-computed lower-bound column, best-first.

    Candidates are verified in ascending lower-bound order, a chunk at a
    time, stopping once the next lower bound exceeds the running k-th
    nearest distance -- no object that could still enter the answer is ever
    skipped (d >= lower bound for every candidate).  This is the batch query
    layer's verification order: it typically needs far fewer distance
    computations than the storage-order scan the sequential LAESA-style
    MkNNQ performs (the closest candidates tend to come first, so the
    radius tightens immediately), while returning the identical answer.
    The saving is not a guarantee: chunk granularity always verifies the
    first chunk of k candidates before any radius exists, so adversarial
    data can make either order cheaper.

    Exactness of ties: :class:`KnnHeap` ranks candidates canonically by
    (distance, object_id), so the answer is the k smallest such pairs over
    all objects -- independent of verification order.  Every object that
    could belong to the answer has a lower bound no larger than its distance
    and hence no larger than the running radius when its turn comes, so it
    is always verified before the cutoff triggers.

    Args:
        lower_bounds: per-storage-row lower bounds of d(q, o), length n.
        row_ids: object id of each storage row, length n.
        k: number of neighbors.
        verify_many: callback computing true distances for a list of object
            ids (one vectorised counted call per chunk).
    """
    heap = KnnHeap(k)
    n = len(row_ids)
    if n == 0:
        return []
    order = np.argsort(lower_bounds, kind="stable")
    start = 0
    while start < n:
        # first chunk: exactly k (fills the heap, establishing a radius,
        # with the minimum mandatory verifications); later chunks: larger,
        # to amortise the per-call overhead of verify_many
        chunk = k if start == 0 else max(k, 32)
        stop = min(start + chunk, n)
        block = order[start:stop]
        # ascending bounds: once one exceeds the radius, all later ones do
        keep = block[lower_bounds[block] <= heap.radius]
        if keep.size == 0:
            break
        ids = [int(row_ids[pos]) for pos in keep]
        dists = verify_many(ids)
        for object_id, d in zip(ids, dists):
            heap.consider(object_id, float(d))
        if keep.size < block.size:
            break
        start = stop
    return heap.neighbors()


class KnnHeap:
    """Bounded max-heap of the best k candidates seen so far.

    ``radius`` is the current pruning radius: infinity until k candidates are
    known, afterwards the k-th smallest distance.  Candidates are ranked by
    the lexicographic pair ``(distance, object_id)`` -- ties at the radius
    are broken toward the smaller object id -- so the final content is the k
    smallest such pairs *regardless of arrival order*.  That canonical
    tie-breaking is what lets the batch query layer verify candidates in any
    (e.g. best-first) order and still return bit-for-bit the sequential
    scan's answer, while matching the paper's definition of MkNNQ returning
    exactly k objects.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        # min-heap of (-distance, -object_id): the root is the largest
        # (distance, object_id) pair, i.e. the current worst candidate
        self._heap: list[tuple[float, int]] = []

    @property
    def radius(self) -> float:
        """Current search radius (inf until the heap holds k candidates)."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def consider(self, object_id: int, distance: float) -> bool:
        """Offer a candidate; returns True when it entered the heap."""
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-distance, -object_id))
            return True
        # accept iff (distance, id) < (worst distance, worst id): negation
        # flips the lexicographic comparison
        if (-distance, -object_id) > self._heap[0]:
            heapq.heapreplace(self._heap, (-distance, -object_id))
            return True
        return False

    def __len__(self) -> int:
        return len(self._heap)

    def is_full(self) -> bool:
        return len(self._heap) >= self.k

    def neighbors(self) -> list[Neighbor]:
        """Final answers, ascending by distance (ties by id)."""
        return sorted(
            Neighbor(-neg_dist, -neg_id) for neg_dist, neg_id in self._heap
        )

    def ids(self) -> list[int]:
        return [n.object_id for n in self.neighbors()]

    def distances(self) -> list[float]:
        return [n.distance for n in self.neighbors()]
