"""Query result containers and the bounded k-NN heap.

Defines the two query types of Section 2.1:

* **MRQ(q, r)** -- metric range query: all objects within distance r of q.
* **MkNNQ(q, k)** -- metric k nearest neighbours.

:class:`KnnHeap` implements the standard "radius tightening" used by every
best-first MkNNQ algorithm in the paper: the search radius starts at infinity
and shrinks to the current k-th nearest distance as candidates are verified.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = ["Neighbor", "KnnHeap", "RangeResult"]


@dataclass(frozen=True, order=True)
class Neighbor:
    """One answer of a k-NN query (ordered by distance, then id)."""

    distance: float
    object_id: int


@dataclass
class RangeResult:
    """Answer set of a metric range query."""

    ids: list[int] = field(default_factory=list)
    distances: dict[int, float] = field(default_factory=dict)

    def add(self, object_id: int, distance: float | None = None) -> None:
        self.ids.append(object_id)
        if distance is not None:
            self.distances[object_id] = distance

    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, object_id: int) -> bool:
        return object_id in set(self.ids)

    def sorted_ids(self) -> list[int]:
        return sorted(self.ids)


class KnnHeap:
    """Bounded max-heap of the best k candidates seen so far.

    ``radius`` is the current pruning radius: infinity until k candidates are
    known, afterwards the k-th smallest distance.  Ties at the radius are kept
    out (strictly better candidates replace the worst), which matches the
    paper's definition of MkNNQ returning exactly k objects.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        # max-heap via negated distances
        self._heap: list[tuple[float, int]] = []

    @property
    def radius(self) -> float:
        """Current search radius (inf until the heap holds k candidates)."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def consider(self, object_id: int, distance: float) -> bool:
        """Offer a candidate; returns True when it entered the heap."""
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-distance, object_id))
            return True
        if distance < -self._heap[0][0]:
            heapq.heapreplace(self._heap, (-distance, object_id))
            return True
        return False

    def __len__(self) -> int:
        return len(self._heap)

    def is_full(self) -> bool:
        return len(self._heap) >= self.k

    def neighbors(self) -> list[Neighbor]:
        """Final answers, ascending by distance (ties by id)."""
        return sorted(
            (Neighbor(-negated, object_id) for negated, object_id in self._heap)
        )

    def ids(self) -> list[int]:
        return [n.object_id for n in self.neighbors()]

    def distances(self) -> list[float]:
        return [n.distance for n in self.neighbors()]
