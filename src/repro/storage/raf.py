"""Random Access File: the separate object store of the Omni / M-index / SPB.

The Omni-family, M-index and SPB-tree keep the real objects (optionally with
their pre-computed pivot distances) out of the index structure, in a
sequential record file addressed by (page, slot) pointers.  Reading a record
costs one page access unless the page is cached -- the paper's duplicate-RAF-
access discussion for MkNNQ is exactly about this.

Records are grouped into pages greedily in insertion order, mirroring the
sequential layout the paper describes; M-index and SPB-tree pass records in
cluster/SFC order so that proximate objects share pages.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Iterable

from ..obs import tracing
from .pager import Pager

__all__ = ["RecordPointer", "RandomAccessFile"]


@dataclass(frozen=True)
class RecordPointer:
    """Stable address of one record: page id + slot within the page."""

    page_id: int
    slot: int


class RandomAccessFile:
    """Append-organised record file over a :class:`~repro.storage.pager.Pager`.

    Args:
        pager: page allocator/IO with PA counting (shared with the index).
        fill_factor: fraction of the page size to fill before opening a new
            page; < 1 leaves slack so updated records can be rewritten in
            place without overflowing.
    """

    def __init__(self, pager: Pager, fill_factor: float = 0.9):
        if not 0 < fill_factor <= 1:
            raise ValueError(f"fill_factor must be in (0, 1], got {fill_factor}")
        self.pager = pager
        self.fill_factor = fill_factor
        self._open_page_id: int | None = None
        self._open_records: list[Any] = []
        self._open_bytes = 0
        self._count = 0

    def _record_bytes(self, record: Any) -> int:
        return len(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))

    def _budget(self) -> int:
        return int(self.pager.page_size * self.fill_factor)

    def append(self, record: Any) -> RecordPointer:
        """Write one record, returning its pointer."""
        nbytes = self._record_bytes(record)
        if (
            self._open_page_id is None
            or (self._open_bytes + nbytes > self._budget() and self._open_records)
        ):
            self._seal_open_page()
            self._open_page_id = self.pager.allocate()
            self._open_records = []
            self._open_bytes = 0
        self._open_records.append(record)
        self._open_bytes += nbytes
        self._count += 1
        pointer = RecordPointer(self._open_page_id, len(self._open_records) - 1)
        self.pager.write(self._open_page_id, list(self._open_records))
        return pointer

    def append_many(self, records: Iterable[Any]) -> list[RecordPointer]:
        return [self.append(record) for record in records]

    def _seal_open_page(self) -> None:
        if self._open_page_id is not None and self._open_records:
            self.pager.write(self._open_page_id, list(self._open_records))

    def read(self, pointer: RecordPointer) -> Any:
        """Fetch one record (one page access on cache miss)."""
        records = self.pager.read(pointer.page_id)
        try:
            return records[pointer.slot]
        except (IndexError, TypeError):
            raise KeyError(f"no record at {pointer}") from None

    def read_many(self, pointers) -> list[Any]:
        """Fetch a batch of records with each distinct page read once.

        The storage half of the external category's grouped candidate
        fetching: pointers are resolved page-first through
        :meth:`~repro.storage.pager.Pager.read_many`, so however many
        queries of a batch share a record page, it costs one read (repeats
        are counted as ``grouped_hits``).  Records come back in input order.
        """
        pointers = list(pointers)
        with tracing.span("raf_read_many", records=len(pointers)):
            nodes = self.pager.read_many(p.page_id for p in pointers)
        out = []
        for pointer in pointers:
            try:
                out.append(nodes[pointer.page_id][pointer.slot])
            except (IndexError, TypeError):
                raise KeyError(f"no record at {pointer}") from None
        return out

    def read_cached(self, cache, pointer: RecordPointer) -> Any:
        """Fetch one record through a batch-scoped page cache.

        The lazy counterpart of :meth:`read_many` for best-first MkNNQ:
        ``cache`` is a :class:`~repro.storage.pager.BatchReadCache`, so the
        record's page is read at most once per batch no matter how many
        queries pop candidates from it.
        """
        records = cache.read(pointer.page_id)
        try:
            return records[pointer.slot]
        except (IndexError, TypeError):
            raise KeyError(f"no record at {pointer}") from None

    def update(self, pointer: RecordPointer, record: Any) -> None:
        """Rewrite a record in place."""
        records = self.pager.read(pointer.page_id)
        if pointer.slot >= len(records):
            raise KeyError(f"no record at {pointer}")
        records = list(records)
        records[pointer.slot] = record
        self.pager.write(pointer.page_id, records)
        if pointer.page_id == self._open_page_id:
            self._open_records = records

    def mark_deleted(self, pointer: RecordPointer) -> None:
        """Tombstone a record (slot positions must stay stable)."""
        self.update(pointer, None)

    def __len__(self) -> int:
        return self._count
