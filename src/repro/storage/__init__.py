"""Simulated disk substrate: page store, buffer pool, random access file."""

from .pager import DEFAULT_PAGE_SIZE, BufferPool, Pager, PageStore
from .raf import RandomAccessFile, RecordPointer

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "BufferPool",
    "Pager",
    "PageStore",
    "RandomAccessFile",
    "RecordPointer",
]
