"""Simulated disk: a page store with access counting and a buffer pool.

The paper's external indexes are evaluated by page accesses (PA) on 4 KB
pages (40 KB for CPT / PM-tree on the high-dimensional datasets) with a
128 KB LRU cache for MkNNQ.  We reproduce that substrate:

* :class:`PageStore` keeps pages as pickled bytes ("the disk").  Every read
  or write of a page increments the shared :class:`~repro.core.counters.
  CostCounters`; reads served by the buffer pool are counted separately as
  ``buffer_hits`` so ``page_reads`` stays a cold-I/O count.
* :class:`BufferPool` is an LRU write-back cache in front of the store.
  Its capacity is expressed in bytes, like the paper's 128 KB cache.
* :meth:`Pager.read_many` is the batch read path: each distinct page is
  read once per call, repeats are counted as ``grouped_hits``.

Indexes never touch pickled bytes directly -- they read and write Python
node objects; serialisation happens at the store boundary so that reported
storage sizes are real serialised sizes, and page-capacity decisions can use
measured byte sizes.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from typing import Any

import numpy as np

from ..core.counters import CostCounters
from ..obs.tracing import add_event

__all__ = ["PageStore", "BufferPool", "Pager", "BatchReadCache", "DEFAULT_PAGE_SIZE"]

DEFAULT_PAGE_SIZE = 4096


def _rebuild_page_store(page_size, next_id, directory, empty_ids, region):
    """Rebuild a :class:`PageStore` from its snapshot-region form.

    ``region`` is one flat uint8 buffer holding every written page's blob
    back to back, ``directory`` maps page id -> (offset, length) into it.
    Under the v2 snapshot format the buffer arrives as a ``np.memmap``, so
    the store starts with **zero** pages materialised -- blobs fault in
    from the OS page cache on first read.  Counters are rebound by
    ``load_index`` after restore.
    """
    store = PageStore.__new__(PageStore)
    store.page_size = int(page_size)
    store.counters = CostCounters()
    store._pages = {int(pid): b"" for pid in empty_ids}
    store._next_id = int(next_id)
    store._lazy = {int(pid): (int(o), int(n)) for pid, (o, n) in directory.items()}
    store._region = region
    return store


class PageStore:
    """Fixed-page-size backing store with PA counting.

    Args:
        page_size: logical page size in bytes; a node larger than one page
            occupies ``ceil(size / page_size)`` pages and costs that many
            accesses (the paper's large-page configurations are modelled by
            passing 40960).
        counters: shared cost counters (same object as the metric space's).

    Pages live in ``_pages`` (page id -> pickled bytes) or -- after a v2
    snapshot restore -- in ``_lazy`` (page id -> (offset, length) into the
    shared ``_region`` buffer, usually a memmap).  ``_pages`` always wins:
    the first :meth:`write` to a lazy page moves it there, so the region
    stays an immutable snapshot image while the store stays fully mutable.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        counters: CostCounters | None = None,
    ):
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.counters = counters if counters is not None else CostCounters()
        self._pages: dict[int, bytes] = {}
        self._next_id = 0
        self._lazy: dict[int, tuple[int, int]] = {}
        self._region = None

    def __setstate__(self, state):
        # pre-memmap pickles (v1 snapshots, old process-pool payloads)
        # predate the lazy-region attributes
        self.__dict__.update(state)
        self.__dict__.setdefault("_lazy", {})
        self.__dict__.setdefault("_region", None)

    def allocate(self) -> int:
        """Reserve a new page id (no I/O counted)."""
        page_id = self._next_id
        self._next_id += 1
        self._pages[page_id] = b""
        return page_id

    def write(self, page_id: int, node: Any) -> None:
        """Serialise ``node`` into the page, counting write accesses."""
        if page_id not in self._pages and page_id not in self._lazy:
            raise KeyError(f"page {page_id} was never allocated")
        blob = pickle.dumps(node, protocol=pickle.HIGHEST_PROTOCOL)
        self._pages[page_id] = blob
        self._lazy.pop(page_id, None)
        self.counters.add_page_write(self.pages_spanned(len(blob)))

    def read(self, page_id: int) -> Any:
        """Deserialise the page content, counting read accesses."""
        blob = self._pages.get(page_id)
        if blob is None:
            span = self._lazy.get(page_id)
            if span is None:
                raise KeyError(f"page {page_id} was never allocated")
            offset, length = span
            self.counters.add_page_read(self.pages_spanned(length))
            add_event("page_reads", self.pages_spanned(length))
            # a contiguous uint8 slice satisfies the buffer protocol, so
            # unpickling reads straight out of the mapped snapshot region
            return pickle.loads(self._region[offset : offset + length])
        if not blob:
            raise KeyError(f"page {page_id} was allocated but never written")
        self.counters.add_page_read(self.pages_spanned(len(blob)))
        add_event("page_reads", self.pages_spanned(len(blob)))
        return pickle.loads(blob)

    def free(self, page_id: int) -> None:
        self._pages.pop(page_id, None)
        self._lazy.pop(page_id, None)

    def pages_spanned(self, nbytes: int) -> int:
        """How many physical pages a node of ``nbytes`` occupies (>= 1)."""
        return max(1, -(-nbytes // self.page_size))

    def page_bytes(self, page_id: int) -> int:
        """Serialised size of one page's content."""
        blob = self._pages.get(page_id)
        if blob is not None:
            return len(blob)
        span = self._lazy.get(page_id)
        return span[1] if span is not None else 0

    def _blob_sizes(self):
        for page_id, blob in self._pages.items():
            if blob:
                yield page_id, len(blob)
        for page_id, (_offset, length) in self._lazy.items():
            yield page_id, length

    def total_bytes(self) -> int:
        """Total stored bytes, rounded up to whole pages (disk footprint)."""
        return sum(
            self.pages_spanned(length) * self.page_size
            for _pid, length in self._blob_sizes()
        )

    def __len__(self) -> int:
        return sum(1 for _ in self._blob_sizes())

    def _snapshot_state(self):
        """(directory, empty ids, packed uint8 buffer) for region snapshots.

        Every written page's blob is concatenated into one flat buffer;
        the snapshot pickler hands that buffer to the region writer and
        :func:`_rebuild_page_store` re-wraps it (as a memmap) on load.
        """
        directory: dict[int, tuple[int, int]] = {}
        chunks: list[bytes] = []
        empty: list[int] = []
        offset = 0
        for page_id in sorted(set(self._pages) | set(self._lazy)):
            blob = self._pages.get(page_id)
            if blob is None:
                o, n = self._lazy[page_id]
                blob = bytes(self._region[o : o + n])
            if not blob:
                empty.append(page_id)
                continue
            directory[page_id] = (offset, len(blob))
            chunks.append(blob)
            offset += len(blob)
        packed = np.frombuffer(b"".join(chunks), dtype=np.uint8)
        return directory, empty, packed


class BufferPool:
    """Byte-budgeted LRU write-back cache over a :class:`PageStore`.

    Reads served from the pool cost no page access (``page_reads`` stays a
    *cold* count); each hit is recorded as ``buffer_hits`` on the shared
    counters so measurements can tell real I/O from cache service.  Misses
    read through.  Writes are buffered (dirty) and flushed on eviction or
    :meth:`flush`.  A ``capacity_bytes`` of 0 disables caching entirely
    (every access goes to the store), which is how construction-time PA is
    measured.
    """

    def __init__(self, store: PageStore, capacity_bytes: int = 128 * 1024):
        self.store = store
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[int, tuple[Any, int, bool]] = OrderedDict()
        self._used_bytes = 0
        self.hits = 0
        self.misses = 0

    def _node_bytes(self, node: Any) -> int:
        return len(pickle.dumps(node, protocol=pickle.HIGHEST_PROTOCOL))

    def read(self, page_id: int) -> Any:
        if page_id in self._entries:
            node, nbytes, dirty = self._entries.pop(page_id)
            self._entries[page_id] = (node, nbytes, dirty)
            self.hits += 1
            # the hit stands in for this many cold page reads
            self.store.counters.add_buffer_hit(self.store.pages_spanned(nbytes))
            add_event("buffer_hits", self.store.pages_spanned(nbytes))
            return node
        self.misses += 1
        node = self.store.read(page_id)
        self._admit(page_id, node, dirty=False)
        return node

    def write(self, page_id: int, node: Any) -> None:
        if page_id in self._entries:
            _, old_bytes, _ = self._entries.pop(page_id)
            self._used_bytes -= old_bytes
        self._admit(page_id, node, dirty=True)

    def _admit(self, page_id: int, node: Any, dirty: bool) -> None:
        nbytes = self._node_bytes(node)
        if self.capacity_bytes <= 0 or nbytes > self.capacity_bytes:
            # cannot hold it: write through / serve through
            if dirty:
                self.store.write(page_id, node)
            return
        self._entries[page_id] = (node, nbytes, dirty)
        self._used_bytes += nbytes
        while self._used_bytes > self.capacity_bytes and self._entries:
            victim_id, (victim, victim_bytes, victim_dirty) = self._entries.popitem(
                last=False
            )
            self._used_bytes -= victim_bytes
            if victim_dirty:
                self.store.write(victim_id, victim)

    def resident_bytes(self, page_id: int) -> int | None:
        """Serialised size of a pooled page's node, or None when absent.

        For a dirty (or never-flushed) page the pool's copy is the
        authoritative content -- the store still holds the previous blob
        (or nothing at all) -- so size-weighted accounting must prefer this
        over :meth:`PageStore.page_bytes`.  Does not touch the LRU order.
        """
        entry = self._entries.get(page_id)
        return entry[1] if entry is not None else None

    def flush(self) -> None:
        """Write all dirty pages back to the store (keeps them cached)."""
        for page_id, (node, nbytes, dirty) in list(self._entries.items()):
            if dirty:
                self.store.write(page_id, node)
                self._entries[page_id] = (node, nbytes, False)

    def drop(self) -> None:
        """Flush, then empty the pool (used between benchmark phases)."""
        self.flush()
        self._entries.clear()
        self._used_bytes = 0

    def invalidate(self, page_id: int) -> None:
        """Forget a cached page without writing it back (after free)."""
        entry = self._entries.pop(page_id, None)
        if entry is not None:
            self._used_bytes -= entry[1]


class Pager:
    """Store + buffer pool facade handed to disk-based indexes.

    One pager per index.  ``set_cache_bytes`` switches between the paper's
    configurations: 0 during construction (all accesses hit "disk") and
    128 KB during MkNNQ batches.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        counters: CostCounters | None = None,
        cache_bytes: int = 0,
    ):
        self.store = PageStore(page_size=page_size, counters=counters)
        self.pool = BufferPool(self.store, capacity_bytes=cache_bytes)

    @property
    def page_size(self) -> int:
        return self.store.page_size

    @property
    def counters(self) -> CostCounters:
        return self.store.counters

    def set_cache_bytes(self, capacity_bytes: int) -> None:
        """Resize the buffer pool (flushes and drops current contents)."""
        self.pool.drop()
        self.pool.capacity_bytes = capacity_bytes

    def allocate(self) -> int:
        return self.store.allocate()

    def read(self, page_id: int) -> Any:
        return self.pool.read(page_id)

    def read_many(self, page_ids) -> dict[int, Any]:
        """Batch read: each distinct page is read once, duplicates are free.

        Returns ``{page_id: node}`` for the distinct ids.  Requests beyond
        the first for the same page are counted as ``grouped_hits`` -- the
        I/O the batch saved over one :meth:`read` per request, weighted by
        the physical pages the node spans (the same weighting as
        ``buffer_hits`` and cold ``page_reads``) -- while the single real
        read per page is counted as usual (a cold ``page_read`` or a
        ``buffer_hit``).  This is the storage half of leaf-grouped candidate
        fetching (:meth:`repro.mtree.mtree.MTree.fetch_objects_many`).
        """
        nodes: dict[int, Any] = {}
        grouped = 0
        for page_id in page_ids:
            if page_id in nodes:
                grouped += self.grouped_weight(page_id)
                continue
            nodes[page_id] = self.pool.read(page_id)
        if grouped:
            self.counters.add_grouped_hit(grouped)
            add_event("grouped_hits", grouped)
        return nodes

    def write(self, page_id: int, node: Any) -> None:
        self.pool.write(page_id, node)

    def batch_reader(self) -> "BatchReadCache":
        """A batch-scoped read cache over this pager (see BatchReadCache)."""
        return BatchReadCache(self)

    def grouped_weight(self, page_id: int) -> int:
        """Spanned-page weight of one avoided re-read of ``page_id``.

        The shared accounting rule of :meth:`read_many` and
        :class:`BatchReadCache`: weight by the pooled node's serialised
        size when resident -- for a dirty or never-flushed page the
        store's blob is stale (or empty, which would flatten a multi-page
        node to 1) -- falling back to the store's blob size.
        """
        nbytes = self.pool.resident_bytes(page_id)
        if nbytes is None:
            nbytes = self.store.page_bytes(page_id)
        return self.store.pages_spanned(nbytes)

    def free(self, page_id: int) -> None:
        self.pool.invalidate(page_id)
        self.store.free(page_id)

    def flush(self) -> None:
        self.pool.flush()

    def prepare_snapshot(self) -> None:
        """Make the page store authoritative before serialisation.

        Dirty pages are written back and the buffer pool is emptied, so a
        snapshot carries exactly one copy of each page and a restored index
        starts with a cold cache -- the same state a process restart would
        leave a real disk-backed index in.
        """
        self.pool.drop()

    def disk_bytes(self) -> int:
        self.pool.flush()
        return self.store.total_bytes()


class BatchReadCache:
    """Read-through page cache scoped to one batch of queries.

    The lazy batch paths (best-first MkNNQ over RAF-backed indexes) cannot
    know their full page working set up front the way
    :meth:`Pager.read_many` requires, yet must still read each touched page
    at most once per batch.  A ``BatchReadCache`` memoises nodes for the
    duration of one ``*_query_many`` call: the first read of a page goes
    through the pager (a cold ``page_read`` or a ``buffer_hit``, as usual);
    every repeat is served from the memo and counted as a ``grouped_hit``
    with the same spanned-page weighting ``read_many`` uses -- the I/O the
    batch saved over the sequential loop's re-reads.

    The cache holds deserialised nodes, so it must not outlive the batch
    (drop it when the call returns) and must never be used across writes to
    the cached pages.
    """

    def __init__(self, pager: Pager):
        self.pager = pager
        self._nodes: dict[int, Any] = {}

    def read(self, page_id: int) -> Any:
        if page_id in self._nodes:
            weight = self.pager.grouped_weight(page_id)
            self.pager.counters.add_grouped_hit(weight)
            add_event("grouped_hits", weight)
            return self._nodes[page_id]
        node = self.pager.read(page_id)
        self._nodes[page_id] = node
        return node
