"""Paged M-tree (Ciaccia, Patella, Zezula, VLDB 1997).

The disk-resident metric tree the paper uses twice: CPT clusters its objects
with an M-tree (Section 3.3), and the PM-tree is an M-tree whose entries are
augmented with pivot information (Section 5.1).

Structure (matching the paper's description):

* a **routing entry** holds a routing object (the full object -- the M-tree
  embeds data in the tree, which is why CPT/PM-tree storage is the largest in
  Table 4), a covering radius, the distance to its parent routing object, and
  a child page pointer;
* a **leaf entry** holds the object, its id, and the parent distance.

Optionally each entry carries the object's mapped pivot vector I(o); routing
entries then also maintain the MBB of their subtree's vectors.  The plain
M-tree ignores these fields; the PM-tree builds on them.

Distance computations flow through the shared counted
:class:`~repro.core.metric_space.MetricSpace`; node I/O through the shared
:class:`~repro.storage.pager.Pager`.  Insertion uses the classic
min-enlargement descent and an mM_RAD-style sampled promotion split.  Deletes
are directory-assisted and lazy (covering radii are not shrunk -- still
correct, radii stay conservative), as in production M-tree implementations.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..core.metric_space import MetricSpace
from ..core.queries import KnnHeap, Neighbor
from ..storage.pager import Pager

__all__ = ["MTree", "MLeafEntry", "MRoutingEntry", "MNode"]


@dataclass
class MLeafEntry:
    object_id: int
    obj: Any
    parent_dist: float
    vec: np.ndarray | None = None  # I(o); used by the PM-tree only


@dataclass
class MRoutingEntry:
    routing_id: int
    obj: Any
    radius: float
    parent_dist: float
    child_page: int
    mbb_lows: np.ndarray | None = None  # subtree MBB in pivot space (PM-tree)
    mbb_highs: np.ndarray | None = None


@dataclass
class MNode:
    is_leaf: bool
    entries: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)


class MTree:
    """See module docstring.

    Args:
        space: counted metric space (supplies the distance function).
        pager: counted page store for nodes.
        capacity: max entries per node; derived from the page size and a
            measured entry size when omitted (clamped to >= 4 -- oversized
            nodes then simply span several pages, which the pager counts).
        track_vectors: keep I(o) vectors / MBBs in entries (PM-tree mode).
        seed: RNG seed for sampled split promotion.
    """

    def __init__(
        self,
        space: MetricSpace,
        pager: Pager,
        capacity: int | None = None,
        track_vectors: bool = False,
        seed: int = 0,
    ):
        self.space = space
        self.pager = pager
        self.capacity = capacity
        self.track_vectors = track_vectors
        self._rng = np.random.default_rng(seed)
        self.root_page = pager.allocate()
        pager.write(self.root_page, MNode(is_leaf=True))
        self.height = 1
        self._size = 0
        # object directory: id -> leaf page (maintained across splits);
        # real deployments keep an equivalent id index beside the tree.
        self.leaf_of: dict[int, int] = {}

    def __len__(self) -> int:
        return self._size

    # -- node IO helpers ------------------------------------------------------

    def read_node(self, page_id: int) -> MNode:
        return self.pager.read(page_id)

    def _write(self, page_id: int, node: MNode) -> None:
        self.pager.write(page_id, node)

    def _ensure_capacity(self, entry: MLeafEntry) -> None:
        if self.capacity is None:
            import pickle

            per_entry = max(
                16, len(pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL))
            )
            self.capacity = max(4, (self.pager.page_size - 64) // per_entry)

    # -- insertion ------------------------------------------------------------

    def insert(self, object_id: int, obj, vec: np.ndarray | None = None) -> None:
        """Insert one object (``vec`` = I(o) when pivot tracking is on)."""
        if self.track_vectors and vec is None:
            raise ValueError("track_vectors=True requires the mapped vector")
        entry = MLeafEntry(object_id=object_id, obj=obj, parent_dist=0.0, vec=vec)
        self._ensure_capacity(entry)
        path = self._descend(obj, vec)
        leaf_page, leaf, parent_obj = path[-1]
        entry.parent_dist = (
            self.space.d(obj, parent_obj) if parent_obj is not None else 0.0
        )
        leaf.entries.append(entry)
        self.leaf_of[object_id] = leaf_page
        self._size += 1
        self._write(leaf_page, leaf)
        self._update_path_vectors(path, vec)
        if len(leaf) > self.capacity:
            self._split(path)

    def _descend(self, obj, vec):
        """Choose-subtree descent; returns [(page, node, parent_routing_obj)].

        At each internal node the child whose ball already contains the
        object (minimal distance) is preferred; otherwise the child with the
        least radius enlargement, whose radius is then grown (classic M-tree
        policy).  Every candidate distance is a counted computation.
        """
        path = []
        page_id = self.root_page
        parent_obj = None
        node = self.read_node(page_id)
        while True:
            path.append((page_id, node, parent_obj))
            if node.is_leaf:
                return path
            dists = [self.space.d(obj, e.obj) for e in node.entries]
            best = None
            for i, e in enumerate(node.entries):
                if dists[i] <= e.radius:
                    if best is None or dists[i] < dists[best]:
                        best = i
            if best is None:
                best = min(
                    range(len(node.entries)),
                    key=lambda i: dists[i] - node.entries[i].radius,
                )
                node.entries[best].radius = dists[best]
                self._write(page_id, node)
            chosen = node.entries[best]
            parent_obj = chosen.obj
            page_id = chosen.child_page
            node = self.read_node(page_id)

    def _update_path_vectors(self, path, vec) -> None:
        """Grow MBBs (pivot mode) along the descent path after an insert."""
        if not self.track_vectors or vec is None:
            return
        for idx in range(len(path) - 1):
            page_id, node, _parent = path[idx]
            next_page = path[idx + 1][0]  # the child we descended into
            changed = False
            for e in node.entries:
                if not node.is_leaf and e.child_page == next_page:
                    if e.mbb_lows is None:
                        e.mbb_lows = np.array(vec, dtype=np.float64)
                        e.mbb_highs = np.array(vec, dtype=np.float64)
                        changed = True
                    else:
                        new_lows = np.minimum(e.mbb_lows, vec)
                        new_highs = np.maximum(e.mbb_highs, vec)
                        if not (
                            np.array_equal(new_lows, e.mbb_lows)
                            and np.array_equal(new_highs, e.mbb_highs)
                        ):
                            e.mbb_lows, e.mbb_highs = new_lows, new_highs
                            changed = True
            if changed:
                self._write(page_id, node)

    # -- split ------------------------------------------------------------------

    def _split(self, path) -> None:
        """Split the overflowing tail node of ``path``, propagating upward."""
        level = len(path) - 1
        while level >= 0:
            page_id, node, _parent = path[level]
            if len(node) <= self.capacity:
                return
            promoted = self._promote_and_partition(node)
            (obj1, group1, radius1), (obj2, group2, radius2) = promoted
            left = MNode(is_leaf=node.is_leaf, entries=group1)
            right = MNode(is_leaf=node.is_leaf, entries=group2)
            right_page = self.pager.allocate()
            self._write(page_id, left)
            self._write(right_page, right)
            self._reindex_leaf(page_id, left)
            self._reindex_leaf(right_page, right)

            e1 = self._make_routing(obj1, radius1, page_id, left)
            e2 = self._make_routing(obj2, radius2, right_page, right)

            if level == 0:
                new_root = MNode(is_leaf=False, entries=[e1, e2])
                self.root_page = self.pager.allocate()
                self._write(self.root_page, new_root)
                self.height += 1
                return
            parent_page, parent, grand_obj = path[level - 1]
            pos = next(
                i for i, e in enumerate(parent.entries) if e.child_page == page_id
            )
            old = parent.entries[pos]
            for e in (e1, e2):
                e.parent_dist = (
                    self.space.d(e.obj, grand_obj) if grand_obj is not None else 0.0
                )
            parent.entries[pos : pos + 1] = [e1, e2]
            self._write(parent_page, parent)
            level -= 1

    def _promote_and_partition(self, node: MNode):
        """Sampled mM_RAD promotion + generalized-hyperplane partition.

        Candidate pairs are evaluated without mutating the entries; only the
        winning partition's parent distances are applied.
        """
        entries = node.entries
        n = len(entries)
        pair_candidates: set[tuple[int, int]] = set()
        max_pairs = min(8, n * (n - 1) // 2)
        while len(pair_candidates) < max_pairs:
            i, j = self._rng.integers(0, n, size=2)
            if i != j:
                pair_candidates.add((min(int(i), int(j)), max(int(i), int(j))))
        best = None
        for i, j in pair_candidates:
            split = self._evaluate_partition(entries, i, j)
            score = max(split[0][2], split[1][2])  # the larger covering radius
            if best is None or score < best[0]:
                best = (score, (i, j), split)
        _, (i, j), split = best
        result = []
        for promoted_idx, assignment, radius in split:
            group = []
            for k, dist in assignment:
                entries[k].parent_dist = dist
                group.append(entries[k])
            result.append((entries[promoted_idx].obj, group, radius))
        return result

    def _evaluate_partition(self, entries, i: int, j: int):
        """Hyperplane partition for promoted pair (i, j), without mutation.

        Returns two triples (promoted_index, [(entry_index, dist)], radius).
        """
        obj1, obj2 = entries[i].obj, entries[j].obj
        group1: list[tuple[int, float]] = []
        group2: list[tuple[int, float]] = []
        radius1 = radius2 = 0.0
        for k, e in enumerate(entries):
            d1 = 0.0 if k == i else self.space.d(e.obj, obj1)
            d2 = 0.0 if k == j else self.space.d(e.obj, obj2)
            child_radius = 0.0 if isinstance(e, MLeafEntry) else e.radius
            if d1 <= d2:
                group1.append((k, d1))
                radius1 = max(radius1, d1 + child_radius)
            else:
                group2.append((k, d2))
                radius2 = max(radius2, d2 + child_radius)
        return (i, group1, radius1), (j, group2, radius2)

    def _make_routing(self, obj, radius: float, child_page: int, child: MNode):
        entry = MRoutingEntry(
            routing_id=-1,
            obj=obj,
            radius=radius,
            parent_dist=0.0,
            child_page=child_page,
        )
        if self.track_vectors:
            vecs = [
                e.vec if isinstance(e, MLeafEntry) else None for e in child.entries
            ]
            lows_list, highs_list = [], []
            for e in child.entries:
                if isinstance(e, MLeafEntry):
                    if e.vec is not None:
                        lows_list.append(np.asarray(e.vec))
                        highs_list.append(np.asarray(e.vec))
                else:
                    if e.mbb_lows is not None:
                        lows_list.append(e.mbb_lows)
                        highs_list.append(e.mbb_highs)
            if lows_list:
                entry.mbb_lows = np.minimum.reduce(lows_list)
                entry.mbb_highs = np.maximum.reduce(highs_list)
        return entry

    def _reindex_leaf(self, page_id: int, node: MNode) -> None:
        if node.is_leaf:
            for e in node.entries:
                self.leaf_of[e.object_id] = page_id

    # -- deletion -----------------------------------------------------------------

    def delete(self, object_id: int) -> bool:
        """Directory-assisted lazy delete (radii stay conservative)."""
        leaf_page = self.leaf_of.pop(object_id, None)
        if leaf_page is None:
            return False
        node = self.read_node(leaf_page)
        node.entries = [e for e in node.entries if e.object_id != object_id]
        self._write(leaf_page, node)
        self._size -= 1
        return True

    # -- object fetch (CPT) ----------------------------------------------------------

    def fetch_object(self, object_id: int):
        """Load one object from its leaf page (counted page access)."""
        leaf_page = self.leaf_of.get(object_id)
        if leaf_page is None:
            raise KeyError(f"object {object_id} is not in the tree")
        node = self.read_node(leaf_page)
        for e in node.entries:
            if e.object_id == object_id:
                return e.obj
        raise KeyError(f"object {object_id} missing from its leaf page")

    def fetch_objects_many(self, object_ids) -> list:
        """Load a batch of objects with one read per distinct leaf page.

        Candidates are grouped by the leaf holding them: the page is read
        once (a cold ``page_read`` or a ``buffer_hit``) and every resident
        candidate is served from that single read; the avoided re-reads are
        counted as ``grouped_hits`` by :meth:`~repro.storage.pager.Pager.
        read_many`.  This is what turns CPT's fetch-bound batch
        verification into per-leaf scans instead of one random page access
        per candidate.  Objects come back in input order.
        """
        object_ids = list(object_ids)
        leaf_pages = []
        for object_id in object_ids:
            leaf_page = self.leaf_of.get(object_id)
            if leaf_page is None:
                raise KeyError(f"object {object_id} is not in the tree")
            leaf_pages.append(leaf_page)
        nodes = self.pager.read_many(leaf_pages)
        by_id = {}
        for node in nodes.values():
            for e in node.entries:
                by_id[e.object_id] = e.obj
        try:
            return [by_id[object_id] for object_id in object_ids]
        except KeyError as exc:
            raise KeyError(f"object {exc.args[0]} missing from its leaf page") from None

    # -- queries ------------------------------------------------------------------------

    def range_query(self, query_obj, radius: float) -> list[int]:
        """MRQ(q, r) with the M-tree's parent-distance prefilter."""
        results: list[int] = []
        # stack holds (page_id, d(q, parent routing object) or None)
        stack: list[tuple[int, float | None]] = [(self.root_page, None)]
        while stack:
            page_id, d_parent = stack.pop()
            node = self.read_node(page_id)
            if node.is_leaf:
                for e in node.entries:
                    if d_parent is not None and abs(d_parent - e.parent_dist) > radius:
                        continue  # pruned without a distance computation
                    d = self.space.d(query_obj, e.obj)
                    if d <= radius:
                        results.append(e.object_id)
            else:
                for e in node.entries:
                    if (
                        d_parent is not None
                        and abs(d_parent - e.parent_dist) > radius + e.radius
                    ):
                        continue
                    d = self.space.d(query_obj, e.obj)
                    if d <= radius + e.radius:
                        stack.append((e.child_page, d))
        return results

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        """MkNNQ(q, k), best-first by ball lower bound."""
        heap_entries = KnnHeap(k)
        counter = itertools.count()
        pq: list[tuple[float, int, int, float | None]] = [
            (0.0, next(counter), self.root_page, None)
        ]
        while pq:
            bound, _, page_id, d_parent = heapq.heappop(pq)
            if bound > heap_entries.radius:
                break
            node = self.read_node(page_id)
            if node.is_leaf:
                for e in node.entries:
                    r = heap_entries.radius
                    if d_parent is not None and abs(d_parent - e.parent_dist) > r:
                        continue
                    d = self.space.d(query_obj, e.obj)
                    heap_entries.consider(e.object_id, d)
            else:
                for e in node.entries:
                    r = heap_entries.radius
                    if (
                        d_parent is not None
                        and abs(d_parent - e.parent_dist) > r + e.radius
                    ):
                        continue
                    d = self.space.d(query_obj, e.obj)
                    lower = max(0.0, d - e.radius)
                    if lower <= heap_entries.radius:
                        heapq.heappush(pq, (lower, next(counter), e.child_page, d))
        return heap_entries.neighbors()

    # -- iteration / diagnostics ----------------------------------------------------------

    def iter_leaf_entries(self) -> Iterator[tuple[int, MLeafEntry]]:
        """Yield (leaf_page_id, entry) for every stored object."""
        stack = [self.root_page]
        while stack:
            page_id = stack.pop()
            node = self.read_node(page_id)
            if node.is_leaf:
                for e in node.entries:
                    yield page_id, e
            else:
                stack.extend(e.child_page for e in node.entries)

    def check_invariants(self) -> None:
        count = self._check_node(self.root_page, None)
        assert count == self._size, "size counter out of sync"

    def _check_node(self, page_id: int, parent_ball) -> int:
        node = self.read_node(page_id)
        total = 0
        if node.is_leaf:
            for e in node.entries:
                if parent_ball is not None:
                    parent_obj, radius = parent_ball
                    d = self.space.distance(e.obj, parent_obj)  # uncounted check
                    assert d <= radius + 1e-9, "leaf object outside covering radius"
                    assert abs(d - e.parent_dist) < 1e-9, "stale parent distance"
                total += 1
            return total
        for e in node.entries:
            if parent_ball is not None:
                parent_obj, radius = parent_ball
                d = self.space.distance(e.obj, parent_obj)
                assert d - 1e-9 <= radius + e.radius, "routing ball escapes parent"
            total += self._check_node(e.child_page, (e.obj, e.radius))
        return total
