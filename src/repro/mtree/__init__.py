"""Paged M-tree substrate (CPT, PM-tree)."""

from .mtree import MLeafEntry, MNode, MRoutingEntry, MTree

__all__ = ["MLeafEntry", "MNode", "MRoutingEntry", "MTree"]
