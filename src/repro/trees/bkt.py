"""BKT: the Burkhard-Keller tree (1973), for discrete distance functions.

A pivot is chosen *at random* for the root (the paper keeps BKT's random
pivots even in the equal-footing study, because per-subtree pivots are
inherent to the structure); objects at distance i go to the i-th subtree,
recursively.  For large distance domains, children cover equal-width
*ranges* of distance values, stored with each child (the paper's
modification to avoid empty subtrees).

The tree is unbalanced; only identifiers live in the tree, objects stay in a
separate table (another of the paper's stated implementation choices).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.index import MetricIndex
from ..core.metric_space import MetricSpace
from .common import FrontierTreeMixin, interval_gap, require_discrete

__all__ = ["BKT"]


@dataclass
class _BktLeaf:
    ids: list = field(default_factory=list)

    is_leaf = True


@dataclass
class _BktNode:
    pivot_id: int
    # children as parallel lists: inclusive distance interval per child
    lows: list = field(default_factory=list)
    highs: list = field(default_factory=list)
    children: list = field(default_factory=list)

    is_leaf = False


class BKT(FrontierTreeMixin, MetricIndex):
    """Burkhard-Keller tree with range-bucketed children."""

    name = "BKT"

    def __init__(self, space: MetricSpace, root, leaf_size: int, n_buckets: int, seed: int):
        super().__init__(space)
        self.root = root
        self.leaf_size = leaf_size
        self.n_buckets = n_buckets
        self._rng = np.random.default_rng(seed)

    @classmethod
    def build(
        cls,
        space: MetricSpace,
        leaf_size: int = 16,
        n_buckets: int = 16,
        seed: int = 0,
    ) -> "BKT":
        require_discrete(space, "BKT")
        rng = np.random.default_rng(seed)
        index = cls(space, None, leaf_size, n_buckets, seed)
        index._rng = rng
        index.root = index._build_node(list(range(len(space))))
        return index

    def _build_node(self, ids: list[int]):
        if len(ids) <= self.leaf_size:
            return _BktLeaf(ids=list(ids))
        pivot_pos = int(self._rng.integers(0, len(ids)))
        pivot_id = ids[pivot_pos]
        rest = ids[:pivot_pos] + ids[pivot_pos + 1 :]
        dists = self.space.d_ids(self.space.dataset[pivot_id], rest)
        node = _BktNode(pivot_id=pivot_id)
        lo, hi = float(dists.min()), float(dists.max())
        width = max(1.0, np.ceil((hi - lo + 1) / self.n_buckets))
        buckets: dict[int, list[int]] = {}
        bucket_bounds: dict[int, tuple[float, float]] = {}
        for object_id, d in zip(rest, dists):
            b = int((d - lo) // width)
            buckets.setdefault(b, []).append(object_id)
            blo, bhi = bucket_bounds.get(b, (float("inf"), -float("inf")))
            bucket_bounds[b] = (min(blo, float(d)), max(bhi, float(d)))
        for b in sorted(buckets):
            child_ids = buckets[b]
            if len(child_ids) == len(rest):
                # no separation achieved (all objects equidistant): stop here
                node.lows.append(bucket_bounds[b][0])
                node.highs.append(bucket_bounds[b][1])
                node.children.append(_BktLeaf(ids=child_ids))
                continue
            node.lows.append(bucket_bounds[b][0])
            node.highs.append(bucket_bounds[b][1])
            node.children.append(self._build_node(child_ids))
        # frozen as arrays for the frontier engine; inserts mutate values
        # in place and re-grow the arrays when adding a child
        node.lows = np.asarray(node.lows, dtype=np.float64)
        node.highs = np.asarray(node.highs, dtype=np.float64)
        return node

    # -- queries -------------------------------------------------------------
    # MRQ/MkNNQ (single and batched) come from FrontierTreeMixin.  BKT's
    # pivots are per-subtree (each dataset object anchors at most one
    # node), the pivot itself is a result candidate, and a tombstoned
    # pivot (delete) leaves the node unable to prune.

    def _frontier_key(self, node):
        return node.pivot_id if node.pivot_id >= 0 else None

    def _frontier_pivot(self, key):
        return self.space.dataset[key]

    def _frontier_candidate(self, node) -> int | None:
        return node.pivot_id

    # -- maintenance ------------------------------------------------------------

    def insert(self, obj, object_id: int | None = None) -> int:
        """Descend by pivot distances, extending a child interval if needed."""
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        node = self.root
        while not node.is_leaf:
            if node.pivot_id < 0:
                # tombstoned pivot: queries descend all children of this node
                # unconditionally, so routing is free to pick any child
                node = node.children[0]
                continue
            d = self.space.d(obj, self.space.dataset[node.pivot_id])
            best, best_gap = -1, float("inf")
            for i in range(len(node.children)):
                gap = interval_gap(d, node.lows[i], node.highs[i])
                if gap < best_gap:
                    best, best_gap = i, gap
            if best < 0:
                node.lows = np.append(node.lows, d)
                node.highs = np.append(node.highs, d)
                node.children.append(_BktLeaf())
                best = len(node.children) - 1
            node.lows[best] = min(node.lows[best], d)
            node.highs[best] = max(node.highs[best], d)
            node = node.children[best]
        node.ids.append(int(object_id))
        return int(object_id)

    def delete(self, object_id: int) -> None:
        """Descend by distances; intervals stay conservative (lazy delete)."""
        if not 0 <= object_id < len(self.space.dataset):
            raise KeyError(f"object {object_id} is not in the tree")
        obj = self.space.dataset[object_id]
        if self._delete_from(self.root, object_id, obj):
            return
        raise KeyError(f"object {object_id} is not in the tree")

    def _delete_from(self, node, object_id: int, obj) -> bool:
        if node.is_leaf:
            if object_id in node.ids:
                node.ids.remove(object_id)
                return True
            return False
        if node.pivot_id == object_id:
            # pivots anchor their subtree: tombstone by re-pointing the pivot
            # to the nearest remaining object would change distances, so BKT
            # marks it removed instead (classic approach)
            node.pivot_id = -1
            return True
        d = self.space.d(obj, self.space.dataset[node.pivot_id]) if node.pivot_id >= 0 else None
        for i, child in enumerate(node.children):
            if d is not None and interval_gap(d, node.lows[i], node.highs[i]) > 0:
                continue
            if self._delete_from(child, object_id, obj):
                return True
        return False

    # -- accounting ---------------------------------------------------------------

    def storage_bytes(self) -> dict[str, int]:
        structure = self._node_bytes(self.root)
        objects = sum(
            self.space.dataset.object_nbytes(i) for i in range(len(self.space))
        )
        return {"memory": structure + objects, "disk": 0}

    def _node_bytes(self, node) -> int:
        if node.is_leaf:
            return 8 * len(node.ids) + 16
        total = 8 + 16  # pivot id + header
        total += 16 * len(node.children)  # interval bounds
        for child in node.children:
            total += 8 + self._node_bytes(child)
        return total
