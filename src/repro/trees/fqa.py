"""FQA: the Fixed Queries Array (Chavez et al. 2001).

The FQA linearises an FQT: each object is represented by the tuple of its
(discretised) distances to the l level pivots, and the tuples are kept in
one lexicographically sorted array.  Subtrees of the conceptual FQT
correspond to contiguous runs of the array, found by binary search.

Storing b bits per coordinate compresses the signature matrix; the price is
that a stored value v only tells us d(o, p) lies in the bucket [v*w,
(v+1)*w), so the Lemma 1 lower bound works on bucket bounds (the same
discretisation trade-off the SPB-tree makes, Section 5.4).
"""

from __future__ import annotations

import numpy as np

from ..core.index import MetricIndex
from ..core.metric_space import MetricSpace
from ..core.pivot_filter import query_chunk
from ..core.queries import KnnHeap, Neighbor, best_first_knn
from .common import require_discrete

__all__ = ["FQA"]


class FQA(MetricIndex):
    """Fixed Queries Array: sorted discretised signature matrix."""

    name = "FQA"

    def __init__(
        self,
        space: MetricSpace,
        pivot_ids,
        signatures: np.ndarray,
        row_ids: np.ndarray,
        width: float,
    ):
        super().__init__(space)
        self.pivot_ids = [int(p) for p in pivot_ids]
        self._signatures = signatures  # n x l unsigned buckets, lex-sorted
        self._row_ids = row_ids
        self._width = width

    @classmethod
    def build(
        cls, space: MetricSpace, pivot_ids, bits_per_pivot: int = 8
    ) -> "FQA":
        require_discrete(space, "FQA")
        columns = [
            space.d_many(space.dataset[int(p)], space.dataset.objects)
            for p in pivot_ids
        ]
        matrix = np.stack(columns, axis=1)
        max_value = float(matrix.max()) if matrix.size else 1.0
        levels = (1 << bits_per_pivot) - 1
        width = max(1.0, np.ceil((max_value + 1) / levels))
        signatures = np.minimum((matrix // width).astype(np.uint32), levels)
        order = np.lexsort(signatures.T[::-1])  # lexicographic by column 0,1,...
        return cls(
            space,
            pivot_ids,
            signatures[order],
            np.arange(len(space), dtype=np.intp)[order],
            width,
        )

    # -- bounds -----------------------------------------------------------------

    def _lower_bounds(self, query_dists: np.ndarray) -> np.ndarray:
        """Lemma 1 over bucket intervals [v*w, (v+1)*w)."""
        return self._lower_bounds_many(np.atleast_2d(query_dists))[0]

    def _lower_bounds_many(self, query_dist_matrix: np.ndarray) -> np.ndarray:
        """Batched Lemma 1 over bucket intervals: ``q x n`` bounds.

        The FQA is the linearised FQT, so its batch engine is the table
        indexes' 2-D bound matrix rather than a node frontier: one
        broadcast over (queries x rows x pivots), chunked along the query
        axis to bound the temporary (same policy as
        :func:`~repro.core.pivot_filter.lower_bound_many_queries`).
        """
        qmat = np.atleast_2d(np.asarray(query_dist_matrix, dtype=np.float64))
        n_rows = self._signatures.shape[0]
        if not self._signatures.size:
            return np.zeros((qmat.shape[0], n_rows))
        lows = self._signatures * self._width
        highs = lows + self._width  # exclusive upper bucket edge
        out = np.empty((qmat.shape[0], n_rows))
        step = query_chunk(n_rows, self._signatures.shape[1])
        for start in range(0, qmat.shape[0], step):
            block = qmat[start : start + step, None, :]
            below = lows[None, :, :] - block  # bucket entirely above d(q,p)
            above = block - highs[None, :, :]  # bucket entirely below
            out[start : start + step] = np.maximum(
                np.maximum(below, above), 0.0
            ).max(axis=2)
        return out

    def _query_pivot_matrix(self, queries) -> np.ndarray:
        """Counted ``q x l`` query-to-pivot distances, one pairwise call."""
        return self.space.pairwise_objects(
            queries, self.space.dataset.gather(self.pivot_ids)
        )

    # -- queries -------------------------------------------------------------------

    def range_query(self, query_obj, radius: float) -> list[int]:
        query_dists = np.asarray(
            [self.space.d_id(query_obj, p) for p in self.pivot_ids]
        )
        lower = self._lower_bounds(query_dists)
        results: list[int] = []
        for i in np.flatnonzero(lower <= radius):
            object_id = int(self._row_ids[i])
            if self.space.d_id(query_obj, object_id) <= radius:
                results.append(object_id)
        return sorted(results)

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        query_dists = np.asarray(
            [self.space.d_id(query_obj, p) for p in self.pivot_ids]
        )
        lower = self._lower_bounds(query_dists)
        heap = KnnHeap(k)
        # visit candidates in ascending lower-bound order (the array's sorted
        # runs make this the FQA's natural traversal)
        for i in np.argsort(lower, kind="stable"):
            if lower[i] > heap.radius:
                break
            object_id = int(self._row_ids[i])
            heap.consider(object_id, self.space.d_id(query_obj, object_id))
        return heap.neighbors()

    # -- batch queries -----------------------------------------------------------

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        """Batched MRQ: one q x l pivot matrix, one 2-D bound matrix."""
        queries = list(queries)
        if not queries:
            return []
        lower = self._lower_bounds_many(self._query_pivot_matrix(queries))
        out: list[list[int]] = []
        for qi, q in enumerate(queries):
            rows = np.flatnonzero(lower[qi] <= radius)
            results: list[int] = []
            if rows.size:
                ids = [int(self._row_ids[i]) for i in rows]
                dists = self.space.d_many(q, self.space.dataset.gather(ids))
                results = [o for o, d in zip(ids, dists) if d <= radius]
            out.append(sorted(results))
        return out

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        """Batched MkNNQ: shared bound matrix + best-first chunked verify."""
        queries = list(queries)
        if not queries:
            return []
        lower = self._lower_bounds_many(self._query_pivot_matrix(queries))
        return [
            best_first_knn(
                lower[qi],
                self._row_ids,
                k,
                lambda ids, q=q: self.space.d_many(q, self.space.dataset.gather(ids)),
            )
            for qi, q in enumerate(queries)
        ]

    # -- maintenance ------------------------------------------------------------------

    def insert(self, obj, object_id: int | None = None) -> int:
        """l distance computations + sorted insertion."""
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        dists = np.asarray(
            [self.space.d(obj, self.space.dataset[p]) for p in self.pivot_ids]
        )
        levels = np.iinfo(self._signatures.dtype).max
        signature = np.minimum((dists // self._width).astype(np.uint32), levels)
        # binary search for the lexicographic position
        position = self._lex_position(signature)
        self._signatures = np.insert(self._signatures, position, signature, axis=0)
        self._row_ids = np.insert(self._row_ids, position, int(object_id))
        return int(object_id)

    def _lex_position(self, signature: np.ndarray) -> int:
        lo, hi = 0, len(self._row_ids)
        sig_tuple = tuple(signature.tolist())
        while lo < hi:
            mid = (lo + hi) // 2
            if tuple(self._signatures[mid].tolist()) < sig_tuple:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def delete(self, object_id: int) -> None:
        positions = np.flatnonzero(self._row_ids == object_id)
        if positions.size == 0:
            raise KeyError(f"object {object_id} is not in the array")
        self._signatures = np.delete(self._signatures, positions[0], axis=0)
        self._row_ids = np.delete(self._row_ids, positions[0])

    # -- accounting -----------------------------------------------------------------------

    def storage_bytes(self) -> dict[str, int]:
        objects = sum(
            self.space.dataset.object_nbytes(int(i)) for i in self._row_ids
        )
        return {
            "memory": int(self._signatures.nbytes)
            + int(self._row_ids.nbytes)
            + 8 * len(self.pivot_ids)
            + objects,
            "disk": 0,
        }
