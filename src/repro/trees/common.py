"""Shared pieces of the pivot-based tree indexes (paper Section 4).

All four trees prune subtrees with the same one-pivot form of Lemma 1: a
subtree whose objects have d(o, p) inside [lo, hi] can be skipped when
[lo, hi] misses [d(q,p) - r, d(q,p) + r].  Equivalently
``interval_gap(d(q,p), lo, hi)`` is a lower bound of d(q, o) for every o in
the subtree; best-first MkNNQ orders subtrees by the maximum such gap
accumulated along the path from the root.
"""

from __future__ import annotations

__all__ = ["interval_gap", "require_discrete"]


def interval_gap(query_to_pivot: float, lo: float, hi: float) -> float:
    """Lower bound of |d(q,p) - d(o,p)| when d(o,p) is within [lo, hi]."""
    if query_to_pivot < lo:
        return lo - query_to_pivot
    if query_to_pivot > hi:
        return query_to_pivot - hi
    return 0.0


def require_discrete(space, index_name: str) -> None:
    """BKT/FQT/FQA are defined for discrete distance functions only.

    The paper leaves LA and Color blank in Tables 4 and 6 for exactly this
    reason; we raise instead of silently mis-indexing.
    """
    from ..core.index import UnsupportedOperation

    if not space.is_discrete:
        raise UnsupportedOperation(
            f"{index_name} requires a discrete distance function; "
            f"{space.distance.name} is continuous (wrap it in "
            "DiscreteMetricAdapter to ceil distances)"
        )
