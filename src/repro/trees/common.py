"""Shared pieces of the pivot-based tree indexes (paper Section 4).

All four trees prune subtrees with the same one-pivot form of Lemma 1: a
subtree whose objects have d(o, p) inside [lo, hi] can be skipped when
[lo, hi] misses [d(q,p) - r, d(q,p) + r].  Equivalently
``interval_gap(d(q,p), lo, hi)`` is a lower bound of d(q, o) for every o in
the subtree; best-first MkNNQ orders subtrees by the maximum such gap
accumulated along the path from the root.

Because the pruning rule is identical everywhere, the whole family shares
one **batch frontier engine** (:class:`FrontierTreeMixin`): a frontier of
(node, active-query-subset) pairs descends the tree once per *batch*.  At
each node the query-to-pivot distances of every still-active query are
computed with a single counted ``pairwise`` call, ``interval_gap`` is
applied as one vectorized 2-D operation over (active queries x children),
and the active set is re-partitioned per child.  MkNNQ keeps one
:class:`~repro.core.queries.KnnHeap` per query and orders the shared
frontier best-first by the smallest per-query bound, so batch answers are
bit-for-bit identical to the sequential traversal and to brute force (the
heap's canonical (distance, id) tie-breaking makes the answer independent
of verification order; pruning only ever uses each query's own radius).

The sequential ``range_query`` / ``knn_query`` are the same engine run
with a single-query frontier -- one traversal implementation per tree, not
two -- and compute exactly the distances the hand-written per-node loops
used to: one pivot distance per (query, pivot) pair (cached across nodes
that share a pivot) plus the leaf verifications.

Node protocol the engine expects (what all the trees already store):

* leaves have ``is_leaf = True`` and an ``ids`` list;
* internal nodes have parallel ``lows`` / ``highs`` / ``children`` lists
  with tight per-child distance bounds to the node's pivot.

Trees plug in via two small hooks: :meth:`FrontierTreeMixin._frontier_key`
maps a node to a hashable pivot identity (``None`` = no pruning possible,
e.g. BKT's tombstoned pivots) shared by every node using the same pivot
(the distance-cache key), and :meth:`FrontierTreeMixin._frontier_pivot`
resolves that key to the raw pivot object.  BKT additionally reports its
pivot as a result candidate via ``_frontier_candidate``.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from ..core.queries import KnnHeap, Neighbor

__all__ = ["FrontierTreeMixin", "interval_gap", "require_discrete"]


def interval_gap(query_to_pivot: float, lo: float, hi: float) -> float:
    """Lower bound of |d(q,p) - d(o,p)| when d(o,p) is within [lo, hi]."""
    if query_to_pivot < lo:
        return lo - query_to_pivot
    if query_to_pivot > hi:
        return query_to_pivot - hi
    return 0.0


def require_discrete(space, index_name: str) -> None:
    """BKT/FQT/FQA are defined for discrete distance functions only.

    The paper leaves LA and Color blank in Tables 4 and 6 for exactly this
    reason; we raise instead of silently mis-indexing.
    """
    from ..core.index import UnsupportedOperation

    if not space.is_discrete:
        raise UnsupportedOperation(
            f"{index_name} requires a discrete distance function; "
            f"{space.distance.name} is continuous (wrap it in "
            "DiscreteMetricAdapter to ceil distances)"
        )


def _interval_gaps(dists: np.ndarray, node) -> np.ndarray:
    """Vectorized :func:`interval_gap`: (active queries) x (children)."""
    lows = np.asarray(node.lows, dtype=np.float64)
    highs = np.asarray(node.highs, dtype=np.float64)
    d = dists[:, None]
    return np.maximum(np.maximum(lows[None, :] - d, d - highs[None, :]), 0.0)


class FrontierTreeMixin:
    """Batch frontier traversal shared by VPT/MVPT/BKT/FQT.

    Provides ``range_query_many`` / ``knn_query_many`` (and the
    single-query ``range_query`` / ``knn_query`` as one-element batches)
    on top of the node protocol and hooks described in the module
    docstring.  Mixing classes must define ``root`` and ``space``.
    """

    # -- hooks ---------------------------------------------------------------

    def _frontier_key(self, node):
        """Hashable identity of the node's pivot (``None``: cannot prune).

        Nodes sharing a key share one cached distance per query -- the
        per-level pivots of VPT/MVPT/FQT cost at most one computation per
        (query, level) no matter how many same-level nodes the query
        visits, exactly as the sequential level cache behaved.
        """
        raise NotImplementedError

    def _frontier_pivot(self, key):
        """The raw pivot object for a key returned by `_frontier_key`."""
        raise NotImplementedError

    def _frontier_candidate(self, node) -> int | None:
        """Object id of a pivot that is itself a result candidate (BKT)."""
        return None

    # -- shared machinery ----------------------------------------------------

    def _query_selector(self, queries: list):
        """``take(idxs) -> query batch`` for a subset of the query list.

        Vector datasets get one up-front 2-D matrix so subsets are a fancy
        index instead of a per-node Python list build; everything else
        (strings, ragged objects) falls back to list selection.
        """
        if self.space.dataset.is_vector:
            try:
                qmat = np.asarray(queries)
                if qmat.ndim == 2:
                    return qmat.__getitem__
            except (ValueError, TypeError):
                pass
        return lambda idxs: [queries[i] for i in idxs]

    def _pivot_dists(
        self, cache: dict, take, n_queries: int, key, active: np.ndarray
    ) -> np.ndarray:
        """d(q, pivot) for the active queries, lazily computed and cached."""
        column = cache.get(key)
        if column is None:
            column = np.full(n_queries, np.nan)
            cache[key] = column
        need = active[np.isnan(column[active])]
        if need.size:
            column[need] = self.space.pairwise_objects(
                take(need), [self._frontier_pivot(key)]
            )[:, 0]
        return column[active]

    # -- queries -------------------------------------------------------------

    def range_query(self, query_obj, radius: float) -> list[int]:
        return self.range_query_many([query_obj], radius)[0]

    def knn_query(self, query_obj, k: int) -> list[Neighbor]:
        return self.knn_query_many([query_obj], k)[0]

    def range_query_many(self, queries, radius: float) -> list[list[int]]:
        """Batched MRQ: one frontier descent for the whole batch.

        The active set carried to each node is exactly the set of queries
        whose sequential traversal would visit it, and leaf verification is
        deferred into one vectorized counted call per query at the end, so
        the counted distance computations match the sequential loop query
        for query.
        """
        queries = list(queries)
        if not queries:
            return []
        take = self._query_selector(queries)
        results: list[list[int]] = [[] for _ in queries]
        reached: list[list[int]] = [[] for _ in queries]  # leaf ids to verify
        cache: dict = {}
        stack = [(self.root, np.arange(len(queries), dtype=np.intp))]
        while stack:
            node, active = stack.pop()
            if node.is_leaf:
                if node.ids:
                    for qi in active:
                        reached[qi].extend(node.ids)
                continue
            key = self._frontier_key(node)
            if key is None:  # no pruning possible: descend with everyone
                for child in node.children:
                    stack.append((child, active))
                continue
            d = self._pivot_dists(cache, take, len(queries), key, active)
            candidate = self._frontier_candidate(node)
            if candidate is not None:
                for qi, dq in zip(active, d):
                    if dq <= radius:
                        results[qi].append(candidate)
            gaps = _interval_gaps(d, node)
            for j, child in enumerate(node.children):
                keep = gaps[:, j] <= radius
                if keep.any():
                    stack.append((child, active[keep]))
        gather = self.space.dataset.gather
        for qi, ids in enumerate(reached):
            if ids:
                dists = self.space.d_many(queries[qi], gather(ids))
                results[qi].extend(np.asarray(ids)[dists <= radius].tolist())
        return [sorted(ids) for ids in results]

    def knn_query_many(self, queries, k: int) -> list[list[Neighbor]]:
        """Batched MkNNQ: shared best-first frontier, per-query heaps.

        A frontier entry carries each active query's accumulated lower
        bound; the shared priority is the smallest of them.  A query is
        dropped from an entry once its bound exceeds its own heap radius
        -- it can never prune *more* than its private best-first search
        would (radii only shrink, bounds only grow down the tree), so with
        the canonical (distance, id) heap the answers are bit-for-bit the
        sequential ones regardless of the interleaving.

        Leaf verification is **deferred across consecutive leaf pops**:
        popped leaves accumulate into ``pending`` and are verified in one
        grouped ``pairwise_objects`` call per distinct active set when the
        next internal node arrives (so its pruning sees fresh radii) or
        the frontier empties.  Deferral is answer-preserving -- a radius
        that would have shrunk between two leaf pops can only let extra
        candidates into the verification matrix, and those lose to the
        heap's canonical ordering exactly as if considered late.
        """
        queries = list(queries)
        if not queries:
            return []
        take = self._query_selector(queries)
        gather = self.space.dataset.gather
        heaps = [KnnHeap(k) for _ in queries]
        cache: dict = {}
        counter = itertools.count()
        every = np.arange(len(queries), dtype=np.intp)
        pending: list[tuple[list, np.ndarray]] = []

        def flush() -> None:
            if not pending:
                return
            groups: dict[bytes, tuple[np.ndarray, list]] = {}
            for ids, active in pending:
                got = groups.get(active.tobytes())
                if got is None:
                    groups[active.tobytes()] = (active, list(ids))
                else:
                    got[1].extend(ids)
            pending.clear()
            for active, ids in groups.values():
                dists = self.space.pairwise_objects(take(active), gather(ids))
                for qi, row in zip(active, dists):
                    heap = heaps[qi]
                    for object_id, d in zip(ids, row):
                        heap.consider(object_id, float(d))

        pq = [(0.0, next(counter), self.root, every, np.zeros(len(queries)))]
        while pq:
            priority, _, node, active, bounds = heapq.heappop(pq)
            if priority > max(heap.radius for heap in heaps):
                # the frontier pops ascending by its entries' smallest
                # per-query bound, so once that exceeds every radius the
                # whole remaining frontier is dead -- the batch analogue of
                # the sequential best-first break (flushing first could
                # only shrink radii further, never revive the frontier)
                break
            radii = np.asarray([heaps[qi].radius for qi in active])
            alive = bounds <= radii
            if not alive.any():
                continue
            active, bounds = active[alive], bounds[alive]
            if node.is_leaf:
                if node.ids:
                    pending.append((node.ids, active))
                continue
            flush()  # internal node: prune against up-to-date radii
            key = self._frontier_key(node)
            if key is None:
                for child in node.children:
                    heapq.heappush(
                        pq, (float(bounds.min()), next(counter), child, active, bounds)
                    )
                continue
            d = self._pivot_dists(cache, take, len(queries), key, active)
            candidate = self._frontier_candidate(node)
            if candidate is not None:
                for qi, dq in zip(active, d):
                    heaps[qi].consider(candidate, float(dq))
            child_bounds = np.maximum(bounds[:, None], _interval_gaps(d, node))
            radii = np.asarray([heaps[qi].radius for qi in active])
            for j, child in enumerate(node.children):
                cb = child_bounds[:, j]
                keep = cb <= radii
                if keep.any():
                    kept = cb[keep]
                    heapq.heappush(
                        pq,
                        (float(kept.min()), next(counter), child, active[keep], kept),
                    )
        flush()
        return [heap.neighbors() for heap in heaps]
