"""Pivot-based trees: BKT, FQT, FQA, VPT, MVPT (paper Section 4)."""

from .bkt import BKT
from .fqa import FQA
from .fqt import FQT
from .mvpt import MVPT, VPT

__all__ = ["BKT", "FQA", "FQT", "MVPT", "VPT"]
