"""VPT and MVPT: (multi-way) vantage point trees (Yianilos 1993; Bozkaya &
Ozsoyoglu 1997).

VPT splits on the median distance to the level's pivot; MVPT generalises to
m-way splits on m-1 quantiles (the paper defaults m = 5 -- larger m gives
more compact subtrees per level but fewer pivot levels overall, Section 4.3).

Following the paper's equal-footing protocol, nodes at the same level share
the same pivot, taken from the common pivot set; the tree height is thus at
most |P|.  Nodes store only the split values (plus tight child bounds), not
the per-object distances -- the source of the trees' higher search compdists
in Figures 16-17.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.index import MetricIndex
from ..core.metric_space import MetricSpace
from .common import FrontierTreeMixin, interval_gap

__all__ = ["MVPT", "VPT"]


@dataclass
class _MvptLeaf:
    ids: list = field(default_factory=list)

    is_leaf = True


@dataclass
class _MvptNode:
    level: int
    lows: list = field(default_factory=list)  # tight per-child bounds
    highs: list = field(default_factory=list)
    children: list = field(default_factory=list)

    is_leaf = False


class MVPT(FrontierTreeMixin, MetricIndex):
    """m-ary vantage point tree with shared per-level pivots."""

    name = "MVPT"

    def __init__(self, space: MetricSpace, pivot_ids, arity: int, leaf_size: int):
        super().__init__(space)
        if arity < 2:
            raise ValueError(f"arity must be >= 2, got {arity}")
        self.pivot_ids = [int(p) for p in pivot_ids]
        self.arity = arity
        self.leaf_size = leaf_size
        self.root = None

    @classmethod
    def build(
        cls, space: MetricSpace, pivot_ids, arity: int = 5, leaf_size: int = 16
    ) -> "MVPT":
        index = cls(space, pivot_ids, arity, leaf_size)
        index.root = index._build_node(list(range(len(space))), level=0)
        return index

    def _build_node(self, ids: list[int], level: int):
        if level >= len(self.pivot_ids) or len(ids) <= self.leaf_size:
            return _MvptLeaf(ids=list(ids))
        pivot_obj = self.space.dataset[self.pivot_ids[level]]
        dists = self.space.d_ids(pivot_obj, ids)
        quantiles = np.quantile(dists, np.linspace(0, 1, self.arity + 1)[1:-1])
        node = _MvptNode(level=level)
        assignments = np.searchsorted(quantiles, dists, side="left")
        for child_idx in range(self.arity):
            mask = assignments == child_idx
            child_ids = [ids[i] for i in np.flatnonzero(mask)]
            if not child_ids:
                continue
            child_dists = dists[mask]
            node.lows.append(float(child_dists.min()))
            node.highs.append(float(child_dists.max()))
            node.children.append(self._build_node(child_ids, level + 1))
        if len(node.children) <= 1:
            # the pivot cannot separate these objects; stop splitting
            return _MvptLeaf(ids=list(ids))
        # freeze the bounds as arrays: the frontier engine reads them as
        # vectors on every visit, and inserts only mutate values in place
        node.lows = np.asarray(node.lows, dtype=np.float64)
        node.highs = np.asarray(node.highs, dtype=np.float64)
        return node

    # -- queries ----------------------------------------------------------------
    # MRQ/MkNNQ (single and batched) come from FrontierTreeMixin; nodes at
    # the same level share one pivot, so the engine's distance cache keys
    # on the level.

    def _frontier_key(self, node):
        return node.level

    def _frontier_pivot(self, key):
        return self.space.dataset[self.pivot_ids[key]]

    # -- maintenance ----------------------------------------------------------------

    def insert(self, obj, object_id: int | None = None) -> int:
        """One distance per level; bounds stretch to cover the new object."""
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        node = self.root
        while not node.is_leaf:
            d = self.space.d(obj, self.space.dataset[self.pivot_ids[node.level]])
            best, best_gap = 0, float("inf")
            for i in range(len(node.children)):
                gap = interval_gap(d, node.lows[i], node.highs[i])
                if gap < best_gap:
                    best, best_gap = i, gap
            node.lows[best] = min(node.lows[best], d)
            node.highs[best] = max(node.highs[best], d)
            node = node.children[best]
        node.ids.append(int(object_id))
        return int(object_id)

    def delete(self, object_id: int) -> None:
        if not 0 <= object_id < len(self.space.dataset):
            raise KeyError(f"object {object_id} is not in the tree")
        obj = self.space.dataset[object_id]
        if not self._delete_from(self.root, object_id, obj):
            raise KeyError(f"object {object_id} is not in the tree")

    def _delete_from(self, node, object_id: int, obj) -> bool:
        if node.is_leaf:
            if object_id in node.ids:
                node.ids.remove(object_id)
                return True
            return False
        d = self.space.d(obj, self.space.dataset[self.pivot_ids[node.level]])
        for i, child in enumerate(node.children):
            if interval_gap(d, node.lows[i], node.highs[i]) > 0:
                continue
            if self._delete_from(child, object_id, obj):
                return True
        return False

    # -- accounting -----------------------------------------------------------------

    def storage_bytes(self) -> dict[str, int]:
        structure = self._node_bytes(self.root)
        objects = sum(
            self.space.dataset.object_nbytes(i) for i in range(len(self.space))
        )
        return {"memory": structure + 8 * len(self.pivot_ids) + objects, "disk": 0}

    def _node_bytes(self, node) -> int:
        if node.is_leaf:
            return 8 * len(node.ids) + 16
        total = 24 + 16 * len(node.children)
        for child in node.children:
            total += 8 + self._node_bytes(child)
        return total


class VPT(MVPT):
    """Binary vantage point tree: MVPT with arity 2 (median split)."""

    name = "VPT"

    @classmethod
    def build(
        cls, space: MetricSpace, pivot_ids, arity: int = 2, leaf_size: int = 16
    ) -> "VPT":
        if arity != 2:
            raise ValueError("VPT is binary; use MVPT for m-way splits")
        index = cls(space, pivot_ids, 2, leaf_size)
        index.root = index._build_node(list(range(len(space))), level=0)
        return index
