"""FQT: the Fixed Queries Tree (Baeza-Yates et al. 1994).

Like BKT but every node at tree level i uses the *same* pivot p_i -- which
is what lets the study give FQT the shared pivot set.  A query therefore
computes at most one distance per level (|P| total for the descent), and
with well-chosen pivots FQT is expected to beat BKT (Section 4.2).

Children again cover equal-width ranges of distance values for large
domains; leaves hold object id buckets after the last pivot level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.index import MetricIndex
from ..core.metric_space import MetricSpace
from .common import FrontierTreeMixin, interval_gap, require_discrete

__all__ = ["FQT"]


@dataclass
class _FqtLeaf:
    ids: list = field(default_factory=list)

    is_leaf = True


@dataclass
class _FqtNode:
    level: int
    lows: list = field(default_factory=list)
    highs: list = field(default_factory=list)
    children: list = field(default_factory=list)

    is_leaf = False


class FQT(FrontierTreeMixin, MetricIndex):
    """Fixed Queries Tree over a shared per-level pivot set."""

    name = "FQT"

    def __init__(self, space: MetricSpace, pivot_ids, root, n_buckets: int):
        super().__init__(space)
        self.pivot_ids = [int(p) for p in pivot_ids]
        self.root = root
        self.n_buckets = n_buckets

    @classmethod
    def build(
        cls, space: MetricSpace, pivot_ids, n_buckets: int = 16
    ) -> "FQT":
        require_discrete(space, "FQT")
        index = cls(space, pivot_ids, None, n_buckets)
        index.root = index._build_node(list(range(len(space))), level=0)
        return index

    def _build_node(self, ids: list[int], level: int):
        if level >= len(self.pivot_ids) or len(ids) <= 1:
            return _FqtLeaf(ids=list(ids))
        pivot_obj = self.space.dataset[self.pivot_ids[level]]
        dists = self.space.d_ids(pivot_obj, ids)
        node = _FqtNode(level=level)
        lo, hi = float(dists.min()), float(dists.max())
        width = max(1.0, np.ceil((hi - lo + 1) / self.n_buckets))
        buckets: dict[int, list[int]] = {}
        bounds: dict[int, tuple[float, float]] = {}
        for object_id, d in zip(ids, dists):
            b = int((d - lo) // width)
            buckets.setdefault(b, []).append(object_id)
            blo, bhi = bounds.get(b, (float("inf"), -float("inf")))
            bounds[b] = (min(blo, float(d)), max(bhi, float(d)))
        for b in sorted(buckets):
            node.lows.append(bounds[b][0])
            node.highs.append(bounds[b][1])
            node.children.append(self._build_node(buckets[b], level + 1))
        # frozen as arrays for the frontier engine; inserts mutate in place
        node.lows = np.asarray(node.lows, dtype=np.float64)
        node.highs = np.asarray(node.highs, dtype=np.float64)
        return node

    # -- queries ---------------------------------------------------------------
    # MRQ/MkNNQ (single and batched) come from FrontierTreeMixin; every
    # node at level i shares pivot p_i, so a query computes at most one
    # distance per level -- the property that defines the FQT.

    def _frontier_key(self, node):
        return node.level

    def _frontier_pivot(self, key):
        return self.space.dataset[self.pivot_ids[key]]

    # -- maintenance -------------------------------------------------------------

    def insert(self, obj, object_id: int | None = None) -> int:
        """One distance per level; child intervals stretch as needed."""
        if object_id is None:
            object_id = self.space.dataset.add(obj)
        node = self.root
        if node.is_leaf:
            node.ids.append(int(object_id))
            return int(object_id)
        while not node.is_leaf:
            d = self.space.d(obj, self.space.dataset[self.pivot_ids[node.level]])
            best, best_gap = -1, float("inf")
            for i in range(len(node.children)):
                gap = interval_gap(d, node.lows[i], node.highs[i])
                if gap < best_gap:
                    best, best_gap = i, gap
            node.lows[best] = min(node.lows[best], d)
            node.highs[best] = max(node.highs[best], d)
            node = node.children[best]
        node.ids.append(int(object_id))
        return int(object_id)

    def delete(self, object_id: int) -> None:
        if not 0 <= object_id < len(self.space.dataset):
            raise KeyError(f"object {object_id} is not in the tree")
        obj = self.space.dataset[object_id]
        if not self._delete_from(self.root, object_id, obj):
            raise KeyError(f"object {object_id} is not in the tree")

    def _delete_from(self, node, object_id: int, obj) -> bool:
        if node.is_leaf:
            if object_id in node.ids:
                node.ids.remove(object_id)
                return True
            return False
        d = self.space.d(obj, self.space.dataset[self.pivot_ids[node.level]])
        for i, child in enumerate(node.children):
            if interval_gap(d, node.lows[i], node.highs[i]) > 0:
                continue
            if self._delete_from(child, object_id, obj):
                return True
        return False

    # -- accounting ----------------------------------------------------------------

    def storage_bytes(self) -> dict[str, int]:
        structure = self._node_bytes(self.root)
        objects = sum(
            self.space.dataset.object_nbytes(i) for i in range(len(self.space))
        )
        return {"memory": structure + 8 * len(self.pivot_ids) + objects, "disk": 0}

    def _node_bytes(self, node) -> int:
        if node.is_leaf:
            return 8 * len(node.ids) + 16
        total = 24 + 16 * len(node.children)
        for child in node.children:
            total += 8 + self._node_bytes(child)
        return total
