"""One function per table/figure of the paper's Section 6.

Each experiment returns plain row dicts so the pytest benchmarks, the
``benchmarks/run_experiments.py`` driver, and EXPERIMENTS.md generation all
share the exact same measurement code.  Scale is a parameter everywhere: the
paper runs at 0.6-1.1M objects, we default to laptop-friendly sizes and
report shapes, not absolute numbers (see DESIGN.md section 4).
"""

from __future__ import annotations

from ..core.dataset import dataset_statistics
from .runner import (
    measure_build,
    run_batch_comparison,
    run_http_comparison,
    run_knn_queries,
    run_page_access_comparison,
    run_range_queries,
    run_service_comparison,
    run_updates,
    shared_pivots,
)
from .workloads import Workload, make_workload

__all__ = [
    "exp_table2_datasets",
    "exp_table4_construction",
    "exp_table5_ranking",
    "exp_table6_updates",
    "exp_table7_ranking",
    "exp_fig14_ept",
    "exp_fig15_mindex",
    "exp_fig16_range",
    "exp_fig17_knn",
    "exp_fig18_pivots",
    "exp_ablation_pivot_selection",
    "exp_ablation_mvpt_arity",
    "exp_ablation_sfc",
    "exp_batch_throughput",
    "exp_cpt_paging",
    "exp_http_throughput",
    "exp_service_throughput",
    "build_all",
]

# indexes with genuinely vectorized batch overrides -- the subjects of the
# batch throughput experiment (other indexes fall back to the sequential
# default, so comparing them would only measure noise).  The tables share
# one q x l query-pivot matrix; the tree category shares per-node pivot
# evaluations through the batch frontier engine (repro.trees.common); the
# external category (Omni family, M-index/M-index*, SPB-tree, PM-tree,
# DEPT) traverses its structure once per batch with 2-D MBB bounds and
# page-grouped RAF fetches (repro.external.batch); discrete-only trees are
# skipped automatically on continuous datasets.
BATCH_INDEX_NAMES = (
    "LAESA",
    "EPT*",
    "CPT",
    "MVPT",
    "VPT",
    "BKT",
    "FQT",
    "FQA",
    "PM-tree",
    "Omni-seq",
    "OmniB+",
    "OmniR-tree",
    "M-index",
    "M-index*",
    "SPB-tree",
    "DEPT",
)

N_PIVOTS_DEFAULT = 5


def exp_table2_datasets(workloads: dict[str, Workload]) -> list[dict]:
    """Table 2: dataset statistics."""
    return [
        dataset_statistics(wl.dataset).row() for wl in workloads.values()
    ]


def build_all(
    workload: Workload,
    index_names,
    n_pivots: int = N_PIVOTS_DEFAULT,
    seed: int = 0,
    **overrides,
):
    """Build every applicable index once; returns {name: BuildResult}."""
    pivots = shared_pivots(workload, n_pivots, seed=seed)
    out = {}
    for name in index_names:
        if name in ("BKT", "FQT", "FQA") and not workload.dataset.distance.is_discrete:
            continue  # the paper's blank cells (discrete-only indexes)
        out[name] = measure_build(name, workload, pivots, seed=seed, **overrides)
    return out


def exp_table4_construction(
    workloads: dict[str, Workload],
    index_names,
    n_pivots: int = N_PIVOTS_DEFAULT,
) -> tuple[list[dict], dict]:
    """Table 4: construction PA / compdists / time / storage per dataset.

    Also returns the built indexes ({workload: {index: BuildResult}}) so
    downstream experiments reuse them.
    """
    rows = []
    built: dict[str, dict] = {}
    for wl_name, workload in workloads.items():
        built[wl_name] = build_all(workload, index_names, n_pivots)
        for index_name, result in built[wl_name].items():
            rows.append(
                {
                    "Dataset": wl_name,
                    "Index": index_name,
                    "PA": result.page_accesses,
                    "Compdists": result.compdists,
                    "Time (s)": round(result.seconds, 3),
                    "Mem (KB)": round(result.memory_bytes / 1024, 1),
                    "Disk (KB)": round(result.disk_bytes / 1024, 1),
                }
            )
    return rows, built


def exp_table5_ranking(table4_rows: list[dict]) -> dict[str, dict[str, float]]:
    """Table 5: per-metric totals across datasets (lower = better rank)."""
    metrics = {"PA": {}, "Compdists": {}, "Time (s)": {}, "Storage (KB)": {}}
    for row in table4_rows:
        name = row["Index"]
        metrics["PA"][name] = metrics["PA"].get(name, 0) + row["PA"]
        metrics["Compdists"][name] = metrics["Compdists"].get(name, 0) + row["Compdists"]
        metrics["Time (s)"][name] = metrics["Time (s)"].get(name, 0) + row["Time (s)"]
        metrics["Storage (KB)"][name] = (
            metrics["Storage (KB)"].get(name, 0) + row["Mem (KB)"] + row["Disk (KB)"]
        )
    return metrics


def exp_table6_updates(
    workloads: dict[str, Workload],
    index_names,
    n_pivots: int = N_PIVOTS_DEFAULT,
    n_updates: int = 20,
    built: dict | None = None,
) -> list[dict]:
    """Table 6: mean delete+reinsert cost."""
    rows = []
    for wl_name, workload in workloads.items():
        indexes = (built or {}).get(wl_name) or build_all(
            workload, index_names, n_pivots
        )
        victims = list(range(10, 10 + n_updates))
        for index_name, result in indexes.items():
            if index_name == "AESA":
                continue
            cost = run_updates(result.index, victims)
            rows.append(
                {
                    "Dataset": wl_name,
                    "Index": index_name,
                    "PA": round(cost.page_accesses, 1),
                    "Compdists": round(cost.compdists, 1),
                    "Time (s)": round(cost.cpu_seconds, 5),
                }
            )
    return rows


def exp_table7_ranking(table6_rows: list[dict]) -> dict[str, dict[str, float]]:
    """Table 7: update-cost totals per numeric metric column."""
    metrics: dict[str, dict[str, float]] = {}
    for row in table6_rows:
        name = row["Index"]
        for column, value in row.items():
            if column in ("Dataset", "Index") or not isinstance(value, (int, float)):
                continue
            metrics.setdefault(column, {})
            metrics[column][name] = metrics[column].get(name, 0) + value
    return metrics


def _knn_series(index, workload, ks) -> list[dict]:
    rows = []
    for k in ks:
        cost = run_knn_queries(index, workload.queries, k)
        rows.append(
            {
                "k": k,
                "Compdists": round(cost.compdists, 1),
                "PA": round(cost.page_accesses, 1),
                "CPU (ms)": round(cost.cpu_seconds * 1000, 2),
            }
        )
    return rows


def exp_fig14_ept(
    workloads: dict[str, Workload],
    ks=(5, 10, 20, 50, 100),
    n_pivots: int = N_PIVOTS_DEFAULT,
) -> list[dict]:
    """Figure 14: EPT vs EPT* MkNNQ cost vs k."""
    rows = []
    for wl_name, workload in workloads.items():
        for index_name in ("EPT", "EPT*"):
            result = measure_build(index_name, workload, shared_pivots(workload, n_pivots))
            for row in _knn_series(result.index, workload, ks):
                rows.append({"Dataset": wl_name, "Index": index_name, **row})
    return rows


def exp_fig15_mindex(
    workloads: dict[str, Workload],
    ks=(5, 10, 20, 50, 100),
    n_pivots: int = N_PIVOTS_DEFAULT,
) -> list[dict]:
    """Figure 15: M-index vs M-index* MkNNQ cost vs k."""
    rows = []
    for wl_name, workload in workloads.items():
        pivots = shared_pivots(workload, n_pivots)
        for index_name in ("M-index", "M-index*"):
            result = measure_build(index_name, workload, pivots)
            for row in _knn_series(result.index, workload, ks):
                rows.append({"Dataset": wl_name, "Index": index_name, **row})
    return rows


def exp_fig16_range(
    workloads: dict[str, Workload],
    index_names,
    selectivities=(0.04, 0.08, 0.16, 0.32, 0.64),
    n_pivots: int = N_PIVOTS_DEFAULT,
    built: dict | None = None,
) -> list[dict]:
    """Figure 16: MRQ cost vs radius (as result selectivity) for all indexes."""
    rows = []
    for wl_name, workload in workloads.items():
        indexes = (built or {}).get(wl_name) or build_all(
            workload, index_names, n_pivots
        )
        for selectivity in selectivities:
            radius = workload.radius_for(selectivity)
            for index_name, result in indexes.items():
                cost = run_range_queries(result.index, workload.queries, radius)
                rows.append(
                    {
                        "Dataset": wl_name,
                        "Index": index_name,
                        "r (%)": int(selectivity * 100),
                        "Compdists": round(cost.compdists, 1),
                        "PA": round(cost.page_accesses, 1),
                        "CPU (ms)": round(cost.cpu_seconds * 1000, 2),
                    }
                )
    return rows


def exp_fig17_knn(
    workloads: dict[str, Workload],
    index_names,
    ks=(5, 10, 20, 50, 100),
    n_pivots: int = N_PIVOTS_DEFAULT,
    built: dict | None = None,
) -> list[dict]:
    """Figure 17: MkNNQ cost vs k for all indexes."""
    rows = []
    for wl_name, workload in workloads.items():
        indexes = (built or {}).get(wl_name) or build_all(
            workload, index_names, n_pivots
        )
        for index_name, result in indexes.items():
            for row in _knn_series(result.index, workload, ks):
                rows.append({"Dataset": wl_name, "Index": index_name, **row})
    return rows


def exp_fig18_pivots(
    workloads: dict[str, Workload],
    index_names,
    pivot_counts=(1, 3, 5, 7, 9),
    k: int = 20,
) -> list[dict]:
    """Figure 18: MkNNQ cost vs the number of pivots |P| (LA + Synthetic)."""
    rows = []
    for wl_name, workload in workloads.items():
        for n_pivots in pivot_counts:
            indexes = build_all(workload, index_names, n_pivots)
            for index_name, result in indexes.items():
                if index_name in ("M-index", "M-index*") and n_pivots < 2:
                    continue  # hyperplane partitioning needs >= 2 pivots
                cost = run_knn_queries(result.index, workload.queries, k)
                rows.append(
                    {
                        "Dataset": wl_name,
                        "Index": index_name,
                        "|P|": n_pivots,
                        "Compdists": round(cost.compdists, 1),
                        "PA": round(cost.page_accesses, 1),
                        "CPU (ms)": round(cost.cpu_seconds * 1000, 2),
                    }
                )
    return rows


def exp_batch_throughput(
    workloads: dict[str, Workload],
    index_names=BATCH_INDEX_NAMES,
    n_pivots: int = N_PIVOTS_DEFAULT,
    selectivity: float = 0.16,
    k: int = 10,
    built: dict | None = None,
    repeats: int = 3,
) -> list[dict]:
    """Batch execution layer: sequential-loop vs vectorized multi-query q/s.

    The paper's workloads issue whole batches of MRQ/MkNNQ queries per
    configuration; this experiment quantifies what the batch layer buys on
    each workload.  Exactness is asserted inside the measurement (batch
    answers must equal sequential answers).
    """
    rows = []
    for wl_name, workload in workloads.items():
        indexes = (built or {}).get(wl_name) or build_all(
            workload, index_names, n_pivots
        )
        radius = workload.radius_for(selectivity)
        for index_name in index_names:
            if index_name not in indexes:
                continue
            row = run_batch_comparison(
                indexes[index_name].index, workload.queries, radius, k, repeats=repeats
            )
            rows.append({"Dataset": wl_name, **row})
    return rows


def exp_cpt_paging(
    workloads: dict[str, Workload],
    n_pivots: int = N_PIVOTS_DEFAULT,
    selectivity: float = 0.16,
    built: dict | None = None,
) -> list[dict]:
    """CPT leaf-grouped batch verification: MRQ page accesses vs sequential.

    CPT's batch MRQ throughput is fetch-bound, so the interesting metric is
    I/O, not wall clock: the leaf-grouped batch path reads every touched
    M-tree leaf page once per batch, where the sequential loop pays one
    (LRU-filtered) random page access per verified candidate.  Reports the
    deterministic PA counts of both passes from identical cold pools.
    """
    rows = []
    for wl_name, workload in workloads.items():
        indexes = (built or {}).get(wl_name) or build_all(
            workload, ("CPT",), n_pivots
        )
        if "CPT" not in indexes:
            continue
        radius = workload.radius_for(selectivity)
        row = run_page_access_comparison(
            indexes["CPT"].index, workload.queries, radius
        )
        rows.append({"Dataset": wl_name, **row})
    return rows


def exp_service_throughput(
    workloads: dict[str, Workload],
    index_names=BATCH_INDEX_NAMES,
    n_pivots: int = N_PIVOTS_DEFAULT,
    selectivity: float = 0.16,
    k: int = 10,
    built: dict | None = None,
    n_clients: int = 8,
    repeats: int = 2,
    max_batch_size: int = 32,
    max_wait_ms: float = 2.0,
) -> list[dict]:
    """Query service: naive per-query loop vs dispatcher + LRU result cache.

    Single-query traffic (the serving shape the ROADMAP targets) is driven
    through :class:`~repro.service.QueryService` by concurrent callers; the
    dispatcher coalesces it into the batch layer and the cache absorbs the
    repeats.  Reports cold and warm throughput, cache hit rate, and the
    mean coalesced batch size per index and workload.
    """
    rows = []
    for wl_name, workload in workloads.items():
        indexes = (built or {}).get(wl_name) or build_all(
            workload, index_names, n_pivots
        )
        radius = workload.radius_for(selectivity)
        for index_name in index_names:
            if index_name not in indexes:
                continue
            row = run_service_comparison(
                indexes[index_name].index,
                workload.queries,
                radius,
                k,
                n_clients=n_clients,
                repeats=repeats,
                max_batch_size=max_batch_size,
                max_wait_ms=max_wait_ms,
            )
            rows.append({"Dataset": wl_name, **row})
    return rows


def exp_http_throughput(
    workloads: dict[str, Workload],
    index_names=("LAESA",),
    n_pivots: int = N_PIVOTS_DEFAULT,
    selectivity: float = 0.16,
    k: int = 10,
    built: dict | None = None,
    repeats: int = 3,
    batch_copies: int = 4,
    codecs=("json", "binary"),
) -> list[dict]:
    """HTTP front-end overhead: batch endpoints vs in-process batch calls.

    One ``POST /range_many`` / ``POST /knn_many`` per measured pass against
    a loopback :class:`~repro.service.http.HttpQueryServer`, compared to
    the identical ``*_query_many`` call in process (cache disabled on both
    sides).  Each workload is measured once per wire ``codec`` -- the
    default JSON protocol and the raw-buffer binary frames -- so the table
    shows exactly what the per-element JSON tax costs and what the binary
    path recovers.  The reported ratio is what the codec and one localhost
    round trip cost, amortised over the batch; answers are asserted
    bit-for-bit equal before timing.
    """
    rows = []
    for wl_name, workload in workloads.items():
        indexes = (built or {}).get(wl_name) or build_all(
            workload, index_names, n_pivots
        )
        radius = workload.radius_for(selectivity)
        for index_name in index_names:
            if index_name not in indexes:
                continue
            for codec in codecs:
                row = run_http_comparison(
                    indexes[index_name].index,
                    workload.queries,
                    radius,
                    k,
                    repeats=repeats,
                    batch_copies=batch_copies,
                    codec=codec,
                )
                rows.append({"Dataset": wl_name, **row})
    return rows


def exp_ablation_pivot_selection(
    workload: Workload,
    strategies=("random", "max_variance", "hf", "hfi"),
    n_pivots: int = N_PIVOTS_DEFAULT,
    selectivity: float = 0.16,
) -> list[dict]:
    """Ablation: how much the pivot selection strategy matters (Section 1).

    Runs LAESA (pure pivot filtering, no structural effects) under each
    strategy -- the paper's motivation for fixing HFI across the study.
    """
    from ..core.metric_space import MetricSpace
    from ..core.pivot_selection import select_pivots
    from .runner import build_index

    rows = []
    radius = workload.radius_for(selectivity)
    for strategy in strategies:
        scratch = MetricSpace(workload.dataset)
        pivots = select_pivots(scratch, n_pivots, strategy=strategy, seed=0)
        space = workload.fresh_space()
        index = build_index("LAESA", space, pivots, workload_name=workload.name)
        cost = run_range_queries(index, workload.queries, radius)
        rows.append(
            {
                "Strategy": strategy,
                "Compdists": round(cost.compdists, 1),
                "CPU (ms)": round(cost.cpu_seconds * 1000, 2),
            }
        )
    return rows


def exp_ablation_mvpt_arity(
    workload: Workload,
    arities=(2, 3, 5, 9),
    n_pivots: int = N_PIVOTS_DEFAULT,
    k: int = 20,
) -> list[dict]:
    """Ablation: MVPT arity m (Section 4.3 -- pruning rises then falls)."""
    from .runner import build_index

    rows = []
    pivots = shared_pivots(workload, n_pivots)
    for arity in arities:
        space = workload.fresh_space()
        index = build_index(
            "MVPT", space, pivots, workload_name=workload.name, arity=arity
        )
        cost = run_knn_queries(index, workload.queries, k)
        rows.append(
            {
                "m": arity,
                "Compdists": round(cost.compdists, 1),
                "CPU (ms)": round(cost.cpu_seconds * 1000, 2),
            }
        )
    return rows


def exp_ablation_sfc(
    workload: Workload,
    n_pivots: int = N_PIVOTS_DEFAULT,
    selectivity: float = 0.16,
) -> list[dict]:
    """Ablation: SPB-tree with Hilbert vs Z-order keys (Section 5.4)."""
    from ..sfc import HilbertCurve, ZOrderCurve
    from .runner import build_index

    rows = []
    pivots = shared_pivots(workload, n_pivots)
    radius = workload.radius_for(selectivity)
    for curve_name, curve_cls in (("Hilbert", HilbertCurve), ("Z-order", ZOrderCurve)):
        space = workload.fresh_space()
        index = build_index(
            "SPB-tree", space, pivots, workload_name=workload.name, curve_cls=curve_cls
        )
        range_cost = run_range_queries(index, workload.queries, radius)
        knn_cost = run_knn_queries(index, workload.queries, 20)
        rows.append(
            {
                "Curve": curve_name,
                "MRQ PA": round(range_cost.page_accesses, 1),
                "kNN PA": round(knn_cost.page_accesses, 1),
                "Compdists": round(range_cost.compdists, 1),
            }
        )
    return rows


def default_workloads(
    n: int = 2000,
    color_n: int | None = None,
    n_queries: int = 10,
    names=("LA", "Words", "Color", "Synthetic"),
) -> dict[str, Workload]:
    """The paper's four workloads at a configurable scale."""
    out = {}
    for name in names:
        size = color_n if (name == "Color" and color_n) else n
        out[name] = make_workload(name, n=size, n_queries=n_queries)
    return out
