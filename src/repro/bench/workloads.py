"""Workload construction for the benchmark harness.

Builds the four datasets at a configurable scale, samples query objects, and
calibrates range-query radii the way the paper parameterises them: the
radius value "denotes the percentage of objects in the dataset that are
result objects of a metric range query" (Section 6.1, Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.dataset import DATASET_FACTORIES, Dataset
from ..core.metric_space import MetricSpace

__all__ = ["Workload", "calibrate_radius", "sample_queries", "make_workload"]


def sample_queries(dataset: Dataset, n_queries: int, seed: int = 99) -> list:
    """Random query objects drawn from the dataset (the paper's protocol)."""
    rng = np.random.default_rng(seed)
    ids = rng.choice(len(dataset), size=min(n_queries, len(dataset)), replace=False)
    return [dataset[int(i)] for i in ids]


def calibrate_radius(
    dataset: Dataset,
    selectivity: float,
    sample_pairs: int = 4000,
    seed: int = 7,
) -> float:
    """Radius whose MRQ returns about ``selectivity`` of the dataset.

    Estimated as the ``selectivity`` quantile of the query-to-object distance
    distribution over random pairs (uncounted -- calibration is workload
    setup, not measured query work).
    """
    if not 0 < selectivity <= 1:
        raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
    rng = np.random.default_rng(seed)
    n = len(dataset)
    left = rng.integers(0, n, size=sample_pairs)
    right = rng.integers(0, n, size=sample_pairs)
    keep = left != right
    d = dataset.distance
    dists = np.asarray(
        [d(dataset[int(i)], dataset[int(j)]) for i, j in zip(left[keep], right[keep])]
    )
    return float(np.quantile(dists, selectivity))


@dataclass
class Workload:
    """One benchmark configuration: a dataset plus query parameters."""

    dataset: Dataset
    queries: list = field(default_factory=list)
    radii: dict[float, float] = field(default_factory=dict)  # selectivity -> r

    @property
    def name(self) -> str:
        return self.dataset.name

    def radius_for(self, selectivity: float) -> float:
        if selectivity not in self.radii:
            self.radii[selectivity] = calibrate_radius(self.dataset, selectivity)
        return self.radii[selectivity]

    def fresh_space(self):
        """A new counted MetricSpace over this dataset (per-index isolation)."""
        return MetricSpace(self.dataset)


def make_workload(
    name: str,
    n: int = 10_000,
    n_queries: int = 20,
    selectivities: tuple[float, ...] = (0.04, 0.08, 0.16, 0.32, 0.64),
    seed: int = 42,
) -> Workload:
    """Build one of the paper's workloads ("LA", "Words", "Color", "Synthetic")."""
    try:
        factory = DATASET_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(DATASET_FACTORIES)}"
        ) from None
    dataset = factory(n, seed=seed)
    workload = Workload(dataset=dataset, queries=sample_queries(dataset, n_queries))
    for s in selectivities:
        workload.radius_for(s)
    return workload
