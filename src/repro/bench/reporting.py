"""Plain-text and Markdown table emitters for the benchmark harness.

Formats results in the layout of the paper's tables (rows = indexes,
column groups = datasets x metrics) so measured output can be eyeballed
against the original numbers.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_markdown", "format_ranking", "human_bytes"]


def human_bytes(n: float) -> str:
    """1234567 -> '1.2 MB' (storage columns)."""
    value = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GB"


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    title: str = "",
    first_column: str | None = None,
) -> str:
    """Aligned plain-text table from a list of dicts (shared keys)."""
    if not rows:
        return f"{title}\n(no rows)"
    columns = list(rows[0].keys())
    if first_column and first_column in columns:
        columns.remove(first_column)
        columns.insert(0, first_column)
    rendered = [[_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def format_markdown(
    rows: Sequence[Mapping[str, object]],
    first_column: str | None = None,
) -> str:
    """GitHub-flavoured Markdown table (for EXPERIMENTS.md)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    if first_column and first_column in columns:
        columns.remove(first_column)
        columns.insert(0, first_column)
    lines = ["| " + " | ".join(columns) + " |"]
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_cell(row.get(col, "")) for col in columns) + " |")
    return "\n".join(lines)


def format_ranking(scores: Mapping[str, float], metric: str, ascending: bool = True) -> str:
    """Ranking line like the paper's Tables 5 and 7 (1st = best)."""
    ordered = sorted(scores.items(), key=lambda kv: kv[1], reverse=not ascending)
    parts = [f"{i + 1}. {name} ({_cell(value)})" for i, (name, value) in enumerate(ordered)]
    return f"{metric}: " + "  ".join(parts)
