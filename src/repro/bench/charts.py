"""ASCII charts for figure-style series (terminal-friendly plots).

The paper's Figures 14-18 are line charts of cost vs a parameter; these
helpers render the same series as aligned ASCII so bench output and
EXPERIMENTS.md stay readable without a plotting stack.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_chart", "series_from_rows"]

_MARKS = "*o+x#@%&"


def series_from_rows(
    rows: Sequence[Mapping],
    x_key: str,
    y_key: str,
    label_key: str = "Index",
) -> dict[str, list[tuple[float, float]]]:
    """Group row dicts into {label: [(x, y), ...]} series for ascii_chart."""
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        label = str(row[label_key])
        series.setdefault(label, []).append((float(row[x_key]), float(row[y_key])))
    for points in series.values():
        points.sort()
    return series


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str = "",
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
) -> str:
    """Render {label: [(x, y), ...]} as an ASCII scatter/line chart.

    Each series gets a marker character; a legend follows the plot.  With
    ``log_y`` the y axis is log-scaled (the paper's figures often are).
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    import math

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_y:
        floor = min(y for y in ys if y > 0) if any(y > 0 for y in ys) else 1.0
        transform = lambda y: math.log10(max(y, floor))  # noqa: E731
    else:
        transform = lambda y: y  # noqa: E731
    ty = [transform(y) for y in ys]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ty), max(ty)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for mark, (label, pts) in zip(_MARKS * 4, series.items()):
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((transform(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    y_top = f"{(10 ** y_hi if log_y else y_hi):,.4g}"
    y_bottom = f"{(10 ** y_lo if log_y else y_lo):,.4g}"
    gutter = max(len(y_top), len(y_bottom))
    for i, row_chars in enumerate(grid):
        label = y_top if i == 0 else (y_bottom if i == height - 1 else "")
        lines.append(f"{label:>{gutter}} |" + "".join(row_chars))
    lines.append(" " * gutter + " +" + "-" * width)
    lines.append(
        " " * gutter + f"  {x_lo:,.4g}" + " " * max(1, width - 16) + f"{x_hi:,.4g}"
    )
    legend = "   ".join(
        f"{mark} {label}" for mark, (label, _) in zip(_MARKS * 4, series.items())
    )
    lines.append("legend: " + legend + ("   [log y]" if log_y else ""))
    return "\n".join(lines)
