"""Benchmark runner: builds indexes and measures the paper's three metrics.

The measurement protocol follows Section 6.1:

* **compdists** and **PA** are counted through the shared
  :class:`~repro.core.counters.CostCounters`;
* CPU time is wall-clock around the query call;
* construction runs with a cold buffer pool (every node write hits "disk");
* MkNNQ batches enable the paper's 128 KB LRU cache; MRQ runs uncached;
* every reported number is the mean over the workload's query sample.

Query workloads drive the indexes through the batch execution layer
(``range_query_many`` / ``knn_query_many``) by default -- the paper's
Section 6 issues hundreds of queries per configuration, and batch answers
are contractually identical to sequential ones.  Per-query attribution is
preserved: every computation is still counted and every reported metric is
the per-query mean.  For MRQ the counted totals are *identical* to the
sequential loop (the q x l query-pivot matrix costs q*l computations
either way, and the survivor sets match).  For MkNNQ the table indexes
verify best-first rather than in the paper's storage order, so their
compdists/PA reflect that (typically lower) verification schedule -- pass
``batch=False`` to measure the paper's storage-order algorithm instead;
:func:`run_batch_comparison` measures both and reports the speedup.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..core.index import MetricIndex
from ..core.metric_space import MetricSpace
from ..core.pivot_selection import select_pivots
from ..external import (
    DEPT,
    MIndex,
    MIndexStar,
    MTreeIndex,
    OmniBPlusTree,
    OmniRTree,
    OmniSequentialFile,
    PMTree,
    SPBTree,
)
from ..storage.pager import Pager
from ..tables import AESA, CPT, EPT, EPTStar, LAESA
from ..trees import BKT, FQA, FQT, MVPT, VPT
from .workloads import Workload

__all__ = [
    "BuildResult",
    "QueryCost",
    "build_index",
    "measure_build",
    "run_range_queries",
    "run_knn_queries",
    "run_batch_comparison",
    "run_http_comparison",
    "run_page_access_comparison",
    "run_service_comparison",
    "run_updates",
    "DEFAULT_INDEX_NAMES",
    "KNN_CACHE_BYTES",
    "RANGE_CACHE_BYTES",
]

KNN_CACHE_BYTES = 128 * 1024
# MRQ runs without the paper's query cache, but a few pages of buffer model
# the sequential RAF scans the paper assumes (adjacent records on one page
# cost one access, not one per record)
RANGE_CACHE_BYTES = 16 * 1024

def _best_seconds(run, repeats: int) -> float:
    """Best-of-``repeats`` wall clock of one callable (floored at 1 ns).

    The shared timing policy of every throughput comparison in this module;
    best-of suppresses scheduler noise better than the mean on short runs.
    """
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - t0)
    return max(best, 1e-9)


# the nine indexes of the paper's Section 6.5 comparison
DEFAULT_INDEX_NAMES = (
    "LAESA",
    "EPT*",
    "CPT",
    "BKT",
    "FQT",
    "MVPT",
    "PM-tree",
    "OmniR-tree",
    "M-index*",
    "SPB-tree",
)


@dataclass
class BuildResult:
    index: MetricIndex
    page_accesses: int
    compdists: int
    seconds: float
    memory_bytes: int
    disk_bytes: int


@dataclass
class QueryCost:
    compdists: float
    page_accesses: float
    cpu_seconds: float

    def row(self) -> dict:
        return {
            "compdists": round(self.compdists, 1),
            "PA": round(self.page_accesses, 1),
            "CPU (s)": self.cpu_seconds,
        }


def _page_size_for(index_name: str, workload_name: str) -> int:
    """The paper's page-size rule: 40 KB for CPT/PM-tree on high-dim data."""
    if index_name in ("CPT", "PM-tree") and workload_name in ("Color", "Synthetic"):
        return 40960
    return 4096


def build_index(
    name: str,
    space: MetricSpace,
    pivot_ids: list[int],
    workload_name: str = "",
    seed: int = 0,
    **overrides,
) -> MetricIndex:
    """Construct any index of the study by its paper name.

    All indexes receive the same HFI pivots except EPT/EPT* (per-object
    pivots) and BKT (random subtree pivots) -- the paper's protocol.
    """
    n_pivots = len(pivot_ids)
    page_size = overrides.pop("page_size", _page_size_for(name, workload_name))
    # staged-cascade knobs only exist on the pivot-table family; the trees
    # and external indexes silently keep their own bound machinery
    pruning = {
        key: overrides.pop(key)
        for key in ("bounds", "staged")
        if key in overrides
    }
    if name == "AESA":
        bounds = pruning.get("bounds")
        return AESA.build(space, **({"bounds": bounds} if bounds else {}))
    if name == "LAESA":
        return LAESA.build(space, pivot_ids, **pruning, **overrides)
    if name == "EPT":
        return EPT.build(space, n_groups=n_pivots, seed=seed, **pruning, **overrides)
    if name == "EPT*":
        return EPTStar.build(
            space, n_pivots_per_object=n_pivots, seed=seed, **pruning, **overrides
        )
    if name == "CPT":
        return CPT.build(
            space, pivot_ids, page_size=page_size, seed=seed, **pruning, **overrides
        )
    if name == "BKT":
        return BKT.build(space, seed=seed, **overrides)
    if name == "FQT":
        return FQT.build(space, pivot_ids, **overrides)
    if name == "FQA":
        return FQA.build(space, pivot_ids, **overrides)
    if name == "VPT":
        return VPT.build(space, pivot_ids, **overrides)
    if name == "MVPT":
        return MVPT.build(space, pivot_ids, **overrides)
    if name == "PM-tree":
        return PMTree.build(space, pivot_ids, page_size=page_size, seed=seed, **overrides)
    if name == "Omni-seq":
        return OmniSequentialFile.build(space, pivot_ids, page_size=page_size, **overrides)
    if name == "OmniB+":
        return OmniBPlusTree.build(space, pivot_ids, page_size=page_size, **overrides)
    if name == "OmniR-tree":
        return OmniRTree.build(space, pivot_ids, page_size=page_size, **overrides)
    if name == "M-index":
        return MIndex.build(space, pivot_ids, page_size=page_size, **overrides)
    if name == "M-index*":
        return MIndexStar.build(space, pivot_ids, page_size=page_size, **overrides)
    if name == "SPB-tree":
        return SPBTree.build(space, pivot_ids, page_size=page_size, **overrides)
    if name == "DEPT":
        return DEPT.build(
            space, n_pivots_per_object=n_pivots, page_size=page_size, seed=seed, **overrides
        )
    if name == "M-tree":
        return MTreeIndex.build(space, page_size=page_size, seed=seed, **overrides)
    raise ValueError(f"unknown index {name!r}")


def _index_pager(index: MetricIndex) -> Pager | None:
    for attr in ("pager",):
        pager = getattr(index, attr, None)
        if pager is not None:
            return pager
    mtree = getattr(index, "mtree", None)
    if mtree is not None:
        return mtree.pager
    return None


def set_cache(index: MetricIndex, capacity_bytes: int) -> None:
    """Resize the index's buffer pool (no-op for in-memory indexes)."""
    pager = _index_pager(index)
    if pager is not None:
        pager.set_cache_bytes(capacity_bytes)


def measure_build(
    name: str,
    workload: Workload,
    pivot_ids: list[int],
    seed: int = 0,
    **overrides,
) -> BuildResult:
    """Build an index cold and report Table 4's columns."""
    space = workload.fresh_space()
    counters = space.counters
    before = counters.snapshot()
    t0 = time.perf_counter()
    index = build_index(
        name, space, pivot_ids, workload_name=workload.name, seed=seed, **overrides
    )
    seconds = time.perf_counter() - t0
    delta = counters.snapshot() - before
    storage = index.storage_bytes()
    return BuildResult(
        index=index,
        page_accesses=delta.page_accesses,
        compdists=delta.distance_computations,
        seconds=seconds,
        memory_bytes=storage["memory"],
        disk_bytes=storage["disk"],
    )


def run_range_queries(
    index: MetricIndex, queries, radius: float, batch: bool = True
) -> QueryCost:
    """Mean MRQ cost over the query sample (scan buffer only, no query cache).

    ``batch=True`` (default) answers the whole sample through the batch
    execution layer; ``batch=False`` preserves the legacy sequential loop.
    Either way, counters attribute the identical per-query means.
    """
    set_cache(index, RANGE_CACHE_BYTES)
    counters = index.space.counters
    before = counters.snapshot()
    t0 = time.perf_counter()
    if batch:
        index.range_query_many(queries, radius)
    else:
        for q in queries:
            index.range_query(q, radius)
    seconds = time.perf_counter() - t0
    delta = counters.snapshot() - before
    n = max(1, len(queries))
    return QueryCost(
        compdists=delta.distance_computations / n,
        page_accesses=delta.page_accesses / n,
        cpu_seconds=seconds / n,
    )


def run_knn_queries(
    index: MetricIndex,
    queries,
    k: int,
    cache_bytes: int = KNN_CACHE_BYTES,
    batch: bool = True,
) -> QueryCost:
    """Mean MkNNQ cost over the query sample (paper's 128 KB LRU cache)."""
    set_cache(index, cache_bytes)
    counters = index.space.counters
    before = counters.snapshot()
    t0 = time.perf_counter()
    if batch:
        index.knn_query_many(queries, k)
    else:
        for q in queries:
            index.knn_query(q, k)
    seconds = time.perf_counter() - t0
    delta = counters.snapshot() - before
    n = max(1, len(queries))
    set_cache(index, 0)
    return QueryCost(
        compdists=delta.distance_computations / n,
        page_accesses=delta.page_accesses / n,
        cpu_seconds=seconds / n,
    )


def run_batch_comparison(
    index: MetricIndex,
    queries,
    radius: float,
    k: int,
    repeats: int = 3,
) -> dict:
    """Sequential-loop vs batch-layer throughput for one index.

    Answers the same query sample ``repeats`` times per mode (best-of to
    damp timer noise) and double-checks exactness: batch answers must equal
    the sequential ones.  Returns a report row with queries/second per mode
    and the speedup factors.
    """
    queries = list(queries)
    n = max(1, len(queries))

    seq_range = [index.range_query(q, radius) for q in queries]
    batch_range = index.range_query_many(queries, radius)
    if batch_range != seq_range:
        raise AssertionError(f"{index.name}: batch MRQ answers diverge from sequential")
    seq_knn = [index.knn_query(q, k) for q in queries]
    batch_knn = index.knn_query_many(queries, k)
    if batch_knn != seq_knn:
        raise AssertionError(f"{index.name}: batch MkNNQ answers diverge from sequential")

    def best_seconds(run):
        return _best_seconds(run, repeats)

    seq_range_s = best_seconds(lambda: [index.range_query(q, radius) for q in queries])
    batch_range_s = best_seconds(lambda: index.range_query_many(queries, radius))
    seq_knn_s = best_seconds(lambda: [index.knn_query(q, k) for q in queries])
    batch_knn_s = best_seconds(lambda: index.knn_query_many(queries, k))

    return {
        "Index": index.name,
        "MRQ seq q/s": round(n / seq_range_s, 1),
        "MRQ batch q/s": round(n / batch_range_s, 1),
        "MRQ speedup": round(seq_range_s / batch_range_s, 2),
        "kNN seq q/s": round(n / seq_knn_s, 1),
        "kNN batch q/s": round(n / batch_knn_s, 1),
        "kNN speedup": round(seq_knn_s / batch_knn_s, 2),
    }


def run_page_access_comparison(
    index: MetricIndex,
    queries,
    radius: float,
    cache_bytes: int = RANGE_CACHE_BYTES,
) -> dict:
    """Sequential vs batch MRQ page accesses for a disk-based index.

    Both passes start from an identical cold buffer pool (``set_cache``
    drops it) and answer the same query sample; exactness is asserted.
    With the leaf-grouped batch verification, the batch pass reads every
    touched M-tree leaf page at most once per batch, so its PA should be a
    fraction of the sequential loop's per-candidate random reads.  The
    report also shows where the saved I/O went: ``grouped hits`` were
    served from a page read earlier in the same batched fetch, ``buffer
    hits`` from the LRU pool.
    """
    queries = list(queries)
    counters = index.space.counters

    def measure(run):
        set_cache(index, cache_bytes)  # identical cold pool per pass
        before = counters.snapshot()
        answers = run()
        return answers, counters.snapshot() - before

    sequential, seq_cost = measure(
        lambda: [index.range_query(q, radius) for q in queries]
    )
    batch, batch_cost = measure(lambda: index.range_query_many(queries, radius))
    set_cache(index, 0)
    if batch != sequential:
        raise AssertionError(f"{index.name}: batch MRQ answers diverge from sequential")
    seq_pa = max(1, seq_cost.page_accesses)
    return {
        "Index": index.name,
        "seq PA": seq_cost.page_accesses,
        "batch PA": batch_cost.page_accesses,
        "PA ratio": round(batch_cost.page_accesses / seq_pa, 3),
        "grouped hits": batch_cost.grouped_hits,
        "buffer hits": batch_cost.buffer_hits,
    }


def run_service_comparison(
    index: MetricIndex,
    queries,
    radius: float,
    k: int,
    n_clients: int = 8,
    repeats: int = 2,
    max_batch_size: int = 32,
    max_wait_ms: float = 2.0,
    cache_size: int = 4096,
) -> dict:
    """Naive per-query loop vs the query service, on single-query traffic.

    The request stream interleaves MRQ and MkNNQ over the workload's query
    sample -- the shape of online serving traffic, where queries arrive one
    at a time and popular queries repeat.  Three modes are measured:

    * **naive**: a sequential loop calling ``range_query``/``knn_query``
      per request (no batching, no caching) -- the pre-service baseline;
    * **service cold**: ``n_clients`` concurrent callers submitting single
      queries to a :class:`~repro.service.QueryService`, empty cache -- what
      the micro-batching dispatcher alone buys;
    * **service warm**: the same stream again, cache populated -- what
      repeat traffic costs once the LRU absorbs it.

    Answers are verified identical to direct index calls before timing.
    """
    from ..service import QueryService

    queries = list(queries)
    requests = [("range", q, radius) for q in queries] + [
        ("knn", q, k) for q in queries
    ]
    n = max(1, len(requests))

    expected = [
        index.range_query(q, radius) if kind == "range" else index.knn_query(q, p)
        for kind, q, p in requests
    ]

    def naive_pass() -> list:
        return [
            index.range_query(q, p) if kind == "range" else index.knn_query(q, p)
            for kind, q, p in requests
        ]

    def best_seconds(run):
        return _best_seconds(run, repeats)

    assert naive_pass() == expected, f"{index.name}: naive answers diverge"
    naive_s = best_seconds(naive_pass)

    service = QueryService(
        index,
        cache_size=cache_size,
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
    )
    pool = ThreadPoolExecutor(max_workers=n_clients)
    try:

        def service_pass() -> list:
            def one(request):
                kind, q, p = request
                if kind == "range":
                    return service.range_query(q, p)
                return service.knn_query(q, p)

            return list(pool.map(one, requests))

        answers = service_pass()
        assert answers == expected, f"{index.name}: service answers diverge"
        # cold = first exposure to the stream: drop the cache between runs
        def cold_pass() -> list:
            service.cache.invalidate(service.index_id)
            return service_pass()

        cold_s = best_seconds(cold_pass)
        service.cache.invalidate(service.index_id)
        service_pass()  # warm the cache once
        warm_s = best_seconds(service_pass)
        stats = service.stats()
    finally:
        pool.shutdown(wait=True)
        service.close()

    return {
        "Index": index.name,
        "naive q/s": round(n / naive_s, 1),
        "cold q/s": round(n / cold_s, 1),
        "warm q/s": round(n / warm_s, 1),
        "cold speedup": round(naive_s / cold_s, 2),
        "warm speedup": round(naive_s / warm_s, 2),
        "hit rate": stats["cache"]["hit_rate"],
        "mean batch": stats["dispatcher"]["mean_batch_size"],
    }


def run_http_comparison(
    index: MetricIndex,
    queries,
    radius: float,
    k: int,
    repeats: int = 3,
    batch_copies: int = 4,
    codec: str = "json",
) -> dict:
    """Batch queries in process vs the same batches over HTTP loopback.

    Guards the HTTP front-end's overhead budget: one ``POST /range_many``
    (or ``/knn_many``) carrying a whole batch must stay within a small
    constant factor of calling ``range_query_many`` / ``knn_query_many``
    directly -- the codec plus one localhost round trip, amortised over
    the batch, is all the wire may cost.  ``codec`` selects the wire
    format: ``"json"`` (the default protocol) or ``"binary"``
    (:mod:`repro.service.wire` raw-buffer frames, the fast path that
    removes the per-element codec tax on vector workloads).

    The hosting service runs with the result cache *disabled* so both
    sides pay the full evaluation each pass; with a warm cache the
    comparison would degenerate into a dict lookup vs the wire codec and
    say nothing about serving real traffic.  The query sample is repeated
    ``batch_copies`` times so the batch is big enough to amortise the round
    trip the way production batches do.  Wire answers are asserted
    bit-for-bit equal to the in-process ones before anything is timed.
    """
    from ..service import QueryService
    from ..service.http import HttpQueryServer, ServiceClient

    if codec not in ("json", "binary"):
        raise ValueError(f"codec must be 'json' or 'binary', got {codec!r}")
    queries = list(queries) * batch_copies
    n = len(queries)

    def best_seconds(run):
        return _best_seconds(run, repeats)

    with QueryService(index, cache_size=0, use_dispatcher=False) as service:
        expected_range = service.range_query_many(queries, radius)
        expected_knn = service.knn_query_many(queries, k)
        server = HttpQueryServer(service)
        server.start()
        try:
            with ServiceClient(port=server.port, binary=codec == "binary") as client:
                wire_range = client.range_query_many(queries, radius)
                wire_knn = client.knn_query_many(queries, k)
                if wire_range != expected_range:
                    raise AssertionError(f"{index.name}: HTTP MRQ answers diverge")
                if wire_knn != expected_knn:
                    raise AssertionError(f"{index.name}: HTTP MkNNQ answers diverge")
                inproc_range = best_seconds(
                    lambda: service.range_query_many(queries, radius)
                )
                http_range = best_seconds(
                    lambda: client.range_query_many(queries, radius)
                )
                inproc_knn = best_seconds(lambda: service.knn_query_many(queries, k))
                http_knn = best_seconds(lambda: client.knn_query_many(queries, k))
        finally:
            server.close()

    return {
        "Index": index.name,
        "codec": codec,
        "batch": n,
        "MRQ inproc ms": round(inproc_range * 1000.0, 2),
        "MRQ http ms": round(http_range * 1000.0, 2),
        "MRQ ratio": round(http_range / inproc_range, 2),
        "kNN inproc ms": round(inproc_knn * 1000.0, 2),
        "kNN http ms": round(http_knn * 1000.0, 2),
        "kNN ratio": round(http_knn / inproc_knn, 2),
    }


def run_updates(index: MetricIndex, object_ids) -> QueryCost:
    """Mean cost of one update = delete an object, insert it back (Table 6)."""
    set_cache(index, 0)
    counters = index.space.counters
    dataset = index.space.dataset
    before = counters.snapshot()
    t0 = time.perf_counter()
    for object_id in object_ids:
        obj = dataset[object_id]
        index.delete(object_id)
        index.insert(obj, object_id=object_id)
    seconds = time.perf_counter() - t0
    delta = counters.snapshot() - before
    n = max(1, len(object_ids))
    return QueryCost(
        compdists=delta.distance_computations / n,
        page_accesses=delta.page_accesses / n,
        cpu_seconds=seconds / n,
    )


def shared_pivots(workload: Workload, n_pivots: int, seed: int = 0) -> list[int]:
    """The study's common pivots: HFI on an uncounted scratch space."""
    scratch = MetricSpace(workload.dataset)
    return select_pivots(scratch, n_pivots, strategy="hfi", seed=seed)
