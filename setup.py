"""Legacy setuptools shim.

Metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments that lack the ``wheel``
package (PEP 660 editable builds require it; the legacy develop path does
not).
"""

from setuptools import setup

setup()
