"""Property-based golden tests: random data, random queries, every index.

Hypothesis drives small random vector datasets and query parameters; each
drawn case must produce brute-force-identical answers.  This hunts corner
cases the fixed-seed golden tests cannot (degenerate clusters, duplicate
points, tiny radii, k = n, ...).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    CostCounters,
    Dataset,
    L2,
    LInf,
    MetricSpace,
    brute_force_knn,
    brute_force_range,
    make_uniform,
    select_pivots,
)
from repro.bench.runner import build_index

FAST_INDEXES = ("LAESA", "EPT", "VPT", "MVPT", "OmniR-tree", "M-index*", "SPB-tree")


@st.composite
def vector_datasets(draw):
    n = draw(st.integers(20, 60))
    dim = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    kind = draw(st.sampled_from(["uniform", "clustered", "degenerate"]))
    if kind == "uniform":
        points = rng.uniform(0, 100, size=(n, dim))
    elif kind == "clustered":
        centers = rng.uniform(0, 100, size=(3, dim))
        points = centers[rng.integers(0, 3, size=n)] + rng.normal(0, 2, size=(n, dim))
    else:
        # many duplicates and near-duplicates
        base = rng.uniform(0, 10, size=(max(2, n // 5), dim))
        points = base[rng.integers(0, len(base), size=n)]
        points = points + rng.choice([0.0, 0.25], size=(n, 1))
    return Dataset(points, L2, name="prop")


@given(
    data=vector_datasets(),
    index_name=st.sampled_from(FAST_INDEXES),
    query_seed=st.integers(0, 1000),
    radius_scale=st.floats(0.0, 1.5),
)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_range_queries_match_brute_force(
    data, index_name, query_seed, radius_scale
):
    space = MetricSpace(data, CostCounters())
    n_pivots = min(3, len(data) - 1)
    pivots = select_pivots(MetricSpace(data), n_pivots, strategy="hfi", seed=1)
    kwargs = {"maxnum": 16} if index_name in ("M-index", "M-index*") else {}
    index = build_index(index_name, space, pivots, seed=2, **kwargs)
    rng = np.random.default_rng(query_seed)
    q = data[int(rng.integers(0, len(data)))]
    spread = float(np.ptp(np.asarray(data.objects))) or 1.0
    radius = radius_scale * spread
    reference = MetricSpace(data)
    assert index.range_query(q, radius) == brute_force_range(reference, q, radius)


@given(
    data=vector_datasets(),
    index_name=st.sampled_from(FAST_INDEXES),
    k=st.integers(1, 70),
)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_knn_queries_match_brute_force(data, index_name, k):
    space = MetricSpace(data, CostCounters())
    n_pivots = min(3, len(data) - 1)
    pivots = select_pivots(MetricSpace(data), n_pivots, strategy="hfi", seed=1)
    kwargs = {"maxnum": 16} if index_name in ("M-index", "M-index*") else {}
    index = build_index(index_name, space, pivots, seed=2, **kwargs)
    q = data[0]
    reference = MetricSpace(data)
    got = [round(n.distance, 9) for n in index.knn_query(q, k)]
    want = [round(n.distance, 9) for n in brute_force_knn(reference, q, k)]
    assert got == want


@given(
    n=st.integers(20, 50),
    seed=st.integers(0, 500),
    ops_seed=st.integers(0, 500),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_update_sequences_stay_exact(n, seed, ops_seed):
    """Interleaved deletes/reinserts on a disk index never corrupt answers."""
    data = make_uniform(n, dim=2, seed=seed)
    space = MetricSpace(data, CostCounters())
    pivots = select_pivots(MetricSpace(data), 2, strategy="hfi", seed=1)
    index = build_index("SPB-tree", space, pivots)
    rng = np.random.default_rng(ops_seed)
    deleted: set[int] = set()
    for _ in range(12):
        if deleted and rng.random() < 0.5:
            victim = int(rng.choice(sorted(deleted)))
            index.insert(data[victim], object_id=victim)
            deleted.discard(victim)
        else:
            alive = sorted(set(range(n)) - deleted)
            if not alive:
                continue
            victim = int(rng.choice(alive))
            index.delete(victim)
            deleted.add(victim)
    q = data[0]
    radius = 300.0
    reference = MetricSpace(data)
    want = [i for i in brute_force_range(reference, q, radius) if i not in deleted]
    assert index.range_query(q, radius) == want


@given(values=st.lists(st.integers(0, 50), min_size=5, max_size=60))
@settings(max_examples=50, deadline=None)
def test_discrete_trees_on_integer_lines(values):
    """BKT/FQT/FQA on 1-d integer data under L-infinity (discrete)."""
    points = np.asarray(values, dtype=np.float64).reshape(-1, 1)
    from repro import DiscreteMetricAdapter

    dist = DiscreteMetricAdapter(LInf)
    data = Dataset(points, dist, name="ints")
    reference = MetricSpace(data)
    pivots = select_pivots(
        MetricSpace(data), min(2, len(data) - 1) or 1, strategy="hfi", seed=0
    )
    for name in ("BKT", "FQT", "FQA"):
        space = MetricSpace(data, CostCounters())
        index = build_index(name, space, pivots, seed=3)
        q = data[0]
        for radius in (0.0, 2.0, 10.0):
            assert index.range_query(q, radius) == brute_force_range(
                reference, q, radius
            ), name
