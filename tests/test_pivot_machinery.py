"""Pivot filtering (Lemmas 1-4) and pivot selection strategies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MetricSpace, make_la, make_uniform, make_words
from repro.core.pivot_filter import (
    can_prune,
    can_validate,
    double_pivot_can_prune,
    lower_bound,
    lower_bound_many,
    mbb_can_prune,
    mbb_can_validate,
    mbb_max_dist,
    mbb_min_dist,
    range_pivot_can_prune,
    range_pivot_min_dist,
    upper_bound,
    upper_bound_many,
)
from repro.core.pivot_selection import hf, hfi, max_variance_pivots, psa, random_pivots, select_pivots


def _setup(n=120, pivots=3, seed=0):
    ds = make_uniform(n, dim=3, seed=seed)
    space = MetricSpace(ds)
    rng = np.random.default_rng(seed)
    pivot_ids = rng.choice(n, size=pivots, replace=False)
    q = ds[int(rng.integers(0, n))]
    qd = np.asarray([ds.distance(q, ds[int(p)]) for p in pivot_ids])
    mat = np.stack(
        [
            np.asarray([ds.distance(ds[i], ds[int(p)]) for p in pivot_ids])
            for i in range(n)
        ]
    )
    true = np.asarray([ds.distance(q, ds[i]) for i in range(n)])
    return qd, mat, true


class TestLemma1And4Bounds:
    """The safety invariants: lower <= d(q,o) <= upper, always."""

    def test_bounds_sandwich_truth(self):
        qd, mat, true = _setup()
        lows = lower_bound_many(qd, mat)
        highs = upper_bound_many(qd, mat)
        assert np.all(lows <= true + 1e-9)
        assert np.all(highs >= true - 1e-9)

    def test_scalar_versions_agree(self):
        qd, mat, true = _setup()
        for i in range(len(true)):
            assert lower_bound(qd, mat[i]) == pytest.approx(
                lower_bound_many(qd, mat)[i]
            )
            assert upper_bound(qd, mat[i]) == pytest.approx(
                upper_bound_many(qd, mat)[i]
            )

    def test_prune_never_drops_answers(self):
        qd, mat, true = _setup(seed=1)
        for radius in (0.0, 50.0, 200.0, 800.0):
            for i in range(len(true)):
                if can_prune(qd, mat[i], radius):
                    assert true[i] > radius

    def test_validate_never_admits_non_answers(self):
        qd, mat, true = _setup(seed=2)
        for radius in (50.0, 200.0, 800.0):
            for i in range(len(true)):
                if can_validate(qd, mat[i], radius):
                    assert true[i] <= radius

    def test_empty_pivots(self):
        assert lower_bound([], []) == 0.0
        assert upper_bound([], []) == float("inf")


class TestLemma2:
    def test_range_pivot(self):
        # ball region of radius 3 around p; q at distance 10 from p
        assert range_pivot_can_prune(10.0, 3.0, 6.0)
        assert not range_pivot_can_prune(10.0, 3.0, 7.0)
        assert range_pivot_min_dist(10.0, 3.0) == 7.0
        assert range_pivot_min_dist(2.0, 3.0) == 0.0

    def test_range_pivot_safety_on_real_data(self):
        ds = make_la(200, seed=3)
        rng = np.random.default_rng(3)
        p = ds[0]
        members = [int(i) for i in rng.choice(200, size=50)]
        region_radius = max(ds.distance(p, ds[i]) for i in members)
        q = ds[7]
        dqp = ds.distance(q, p)
        for radius in (100.0, 500.0):
            if range_pivot_can_prune(dqp, region_radius, radius):
                for i in members:
                    assert ds.distance(q, ds[i]) > radius


class TestLemma3:
    def test_double_pivot(self):
        assert double_pivot_can_prune(10.0, 3.0, 3.0)
        assert not double_pivot_can_prune(10.0, 3.0, 4.0)

    def test_double_pivot_safety(self):
        ds = make_la(300, seed=4)
        pi, pj = ds[0], ds[1]
        region = [
            i
            for i in range(2, 300)
            if ds.distance(ds[i], pi) <= ds.distance(ds[i], pj)
        ]
        q = ds[5]
        dqi, dqj = ds.distance(q, pi), ds.distance(q, pj)
        for radius in (50.0, 400.0):
            if double_pivot_can_prune(dqi, dqj, radius):
                for i in region:
                    assert ds.distance(q, ds[i]) > radius


class TestMbbBounds:
    def test_min_max_dist(self):
        qd = np.array([5.0, 5.0])
        assert mbb_min_dist(qd, [6.0, 0.0], [8.0, 4.0]) == 1.0
        assert mbb_min_dist(qd, [4.0, 4.0], [6.0, 6.0]) == 0.0
        assert mbb_max_dist(qd, [0.0, 0.0], [2.0, 3.0]) == 7.0

    def test_prune_validate(self):
        qd = np.array([5.0])
        assert mbb_can_prune(qd, [10.0], [12.0], 4.9)
        assert not mbb_can_prune(qd, [10.0], [12.0], 5.0)
        assert mbb_can_validate(qd, [0.0], [1.0], 6.0)

    def test_mbb_bounds_cover_members(self):
        qd, mat, true = _setup(seed=5)
        lows, highs = mat.min(axis=0), mat.max(axis=0)
        lo = mbb_min_dist(qd, lows, highs)
        hi = mbb_max_dist(qd, lows, highs)
        assert lo <= true.min() + 1e-9
        assert hi >= true.min() - 1e-9  # upper bound holds for each member
        assert np.all(true >= lo - 1e-9)

    @given(
        qd=st.lists(st.floats(0, 100), min_size=2, max_size=4),
        deltas=st.lists(st.floats(0, 50), min_size=2, max_size=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_point_box_consistency(self, qd, deltas):
        size = min(len(qd), len(deltas))
        qd = np.asarray(qd[:size])
        point = np.asarray(deltas[:size])
        # a degenerate box equals the point: min dist == lower bound formula
        assert mbb_min_dist(qd, point, point) == pytest.approx(
            float(np.abs(qd - point).max())
        )


class TestPivotSelection:
    def setup_method(self):
        self.space = MetricSpace(make_la(300, seed=6))

    @pytest.mark.parametrize("strategy", ["random", "max_variance", "hf", "hfi"])
    def test_distinct_pivots(self, strategy):
        pivots = select_pivots(self.space, 5, strategy=strategy, seed=1)
        assert len(pivots) == 5
        assert len(set(pivots)) == 5
        assert all(0 <= p < 300 for p in pivots)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            select_pivots(self.space, 3, strategy="nope")

    def test_too_many_pivots(self):
        with pytest.raises(ValueError):
            random_pivots(self.space, 1000)

    def test_hf_finds_outliers(self):
        # HF should pick objects far apart: the first two foci should be
        # farther from each other than a random pair on average
        foci = hf(self.space, 2, seed=2)
        ds = self.space.dataset
        rng = np.random.default_rng(2)
        random_mean = np.mean(
            [
                ds.distance(ds[int(a)], ds[int(b)])
                for a, b in rng.integers(0, 300, size=(50, 2))
            ]
        )
        assert ds.distance(ds[foci[0]], ds[foci[1]]) > random_mean

    def test_hfi_beats_random_on_bound_quality(self):
        ds = self.space.dataset
        rng = np.random.default_rng(3)
        pairs = rng.integers(0, 300, size=(200, 2))

        def bound_quality(pivots):
            total, count = 0.0, 0
            for a, b in pairs:
                true = ds.distance(ds[int(a)], ds[int(b)])
                if true == 0:
                    continue
                lb = max(
                    abs(
                        ds.distance(ds[int(a)], ds[int(p)])
                        - ds.distance(ds[int(b)], ds[int(p)])
                    )
                    for p in pivots
                )
                total += lb / true
                count += 1
            return total / count

        hfi_pivots = hfi(self.space, 4, seed=4)
        random_p = random_pivots(self.space, 4, seed=4)
        assert bound_quality(hfi_pivots) >= bound_quality(random_p) * 0.95

    def test_psa_shapes(self):
        space = MetricSpace(make_words(80, seed=7))
        idx, dist, candidates = psa(space, 3, candidate_scale=10, sample_size=16, seed=0)
        assert idx.shape == (80, 3)
        assert dist.shape == (80, 3)
        assert idx.max() < len(candidates)
        # stored distances must be the real distances
        ds = space.dataset
        for o in (0, 17, 42):
            for j in range(3):
                p = candidates[idx[o, j]]
                assert dist[o, j] == pytest.approx(ds.distance(ds[o], ds[p]))

    def test_max_variance_pivots(self):
        pivots = max_variance_pivots(self.space, 3, seed=5)
        assert len(set(pivots)) == 3


class TestManyQueriesMbbBounds:
    """2-D MBB bounds: agree with the scalar forms, masks stay safe."""

    def _boxes(self, n_boxes=12, l=4, seed=9):
        rng = np.random.default_rng(seed)
        lows = rng.uniform(0, 50, size=(n_boxes, l))
        highs = lows + rng.uniform(0, 30, size=(n_boxes, l))
        qmat = rng.uniform(0, 80, size=(7, l))
        return qmat, lows, highs

    def test_agree_with_scalar_forms(self):
        from repro.core.pivot_filter import (
            mbb_max_dist_many_queries,
            mbb_min_dist_many_queries,
        )

        qmat, lows, highs = self._boxes()
        mins = mbb_min_dist_many_queries(qmat, lows, highs)
        maxs = mbb_max_dist_many_queries(qmat, lows, highs)
        assert mins.shape == maxs.shape == (7, 12)
        for i in range(qmat.shape[0]):
            for j in range(lows.shape[0]):
                assert mins[i, j] == mbb_min_dist(qmat[i], lows[j], highs[j])
                assert maxs[i, j] == mbb_max_dist(qmat[i], lows[j], highs[j])

    def test_single_box_broadcast(self):
        from repro.core.pivot_filter import (
            mbb_max_dist_many_queries,
            mbb_min_dist_many_queries,
        )

        qmat, lows, highs = self._boxes()
        one = mbb_min_dist_many_queries(qmat, lows[0], highs[0])
        assert one.shape == (7, 1)
        assert one[3, 0] == mbb_min_dist(qmat[3], lows[0], highs[0])
        assert mbb_max_dist_many_queries(qmat, lows[0], highs[0]).shape == (7, 1)

    def test_masks_match_scalar_decisions(self):
        from repro.core.pivot_filter import (
            mbb_prune_mask_many_queries,
            mbb_validate_mask_many_queries,
        )

        qmat, lows, highs = self._boxes()
        radius = 25.0
        prune = mbb_prune_mask_many_queries(qmat, lows, highs, radius)
        validate = mbb_validate_mask_many_queries(qmat, lows, highs, radius)
        for i in range(qmat.shape[0]):
            for j in range(lows.shape[0]):
                assert prune[i, j] == mbb_can_prune(qmat[i], lows[j], highs[j], radius)
                assert validate[i, j] == mbb_can_validate(
                    qmat[i], lows[j], highs[j], radius
                )

    def test_per_query_radii(self):
        from repro.core.pivot_filter import mbb_prune_mask_many_queries

        qmat, lows, highs = self._boxes()
        radii = np.linspace(5.0, 60.0, qmat.shape[0])
        masks = mbb_prune_mask_many_queries(qmat, lows, highs, radii)
        for i, r in enumerate(radii):
            for j in range(lows.shape[0]):
                assert masks[i, j] == mbb_can_prune(qmat[i], lows[j], highs[j], r)


def _hfi_reference(space, n_pivots, candidate_scale=40, sample_pairs=200, seed=0):
    """The pre-vectorization HFI incremental selection (scalar inner loop).

    A faithful copy of the original per-candidate Python loop, kept as the
    oracle for the vectorized reduction in
    :func:`repro.core.pivot_selection.hfi` -- both must choose identical
    pivots (scores are reduced in the same float summation order and ties
    break toward the first candidate either way).
    """
    rng = np.random.default_rng(seed)
    n = len(space)
    n_candidates = min(max(candidate_scale, n_pivots), n)
    candidates = hf(space, n_candidates, seed=seed)

    pair_left = rng.integers(0, n, size=sample_pairs)
    pair_right = rng.integers(0, n, size=sample_pairs)
    keep = pair_left != pair_right
    pair_left = [int(i) for i in pair_left[keep]]
    pair_right = [int(i) for i in pair_right[keep]]
    true_d = np.array(
        [space.d_between_ids(i, j) for i, j in zip(pair_left, pair_right)],
        dtype=np.float64,
    )
    positive = true_d > 0
    left_mat = space.pairwise_ids(pair_left, candidates)
    right_mat = space.pairwise_ids(pair_right, candidates)
    gaps = np.abs(left_mat - right_mat)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(
            positive[:, None], gaps / np.maximum(true_d[:, None], 1e-12), 0.0
        )

    chosen: list[int] = []
    chosen_cols: list[int] = []
    current = np.zeros(ratios.shape[0], dtype=np.float64)
    while len(chosen) < n_pivots:
        best_score, best_col = -1.0, -1
        for col in range(len(candidates)):
            if col in chosen_cols:
                continue
            score = float(np.maximum(current, ratios[:, col]).mean())
            if score > best_score:
                best_score, best_col = score, col
        if best_col < 0:
            break
        chosen_cols.append(best_col)
        chosen.append(candidates[best_col])
        current = np.maximum(current, ratios[:, best_col])
    if len(chosen) < n_pivots:
        extra = [i for i in range(n) if i not in chosen]
        rng.shuffle(extra)
        chosen.extend(extra[: n_pivots - len(chosen)])
    return chosen


class TestHfiVectorization:
    """The vectorized incremental selection picks identical pivots."""

    @pytest.mark.parametrize("seed", (0, 1, 7))
    def test_identical_pivots_on_la(self, seed):
        space = MetricSpace(make_la(300, seed=11))
        assert hfi(space, 5, seed=seed) == _hfi_reference(space, 5, seed=seed)

    def test_identical_pivots_on_words(self):
        space = MetricSpace(make_words(200, seed=13))
        assert hfi(space, 4, seed=2) == _hfi_reference(space, 4, seed=2)

    def test_exhausting_candidates_falls_back(self):
        # more pivots than candidates: the greedy loop must stop cleanly
        # and fill from the random fallback, exactly like the scalar loop
        space = MetricSpace(make_la(12, seed=5))
        got = hfi(space, 12, candidate_scale=4, seed=3)
        ref = _hfi_reference(space, 12, candidate_scale=4, seed=3)
        assert got == ref
        assert len(set(got)) == 12
