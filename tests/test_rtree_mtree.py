"""R-tree and M-tree substrates."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CostCounters, MetricSpace, brute_force_knn, brute_force_range, make_la, make_words
from repro.mtree import MTree
from repro.rtree import Rect, RTree
from repro.storage import Pager


class TestRect:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            Rect([1.0], [0.0])
        with pytest.raises(ValueError):
            Rect([1.0, 2.0], [3.0])

    def test_union_contains(self):
        a = Rect([0, 0], [1, 1])
        b = Rect([2, 2], [3, 3])
        u = Rect.union_of([a, b])
        assert u.contains_rect(a) and u.contains_rect(b)
        assert not a.intersects(b)
        assert u.intersects(a)

    def test_point_ops(self):
        r = Rect([0, 0], [2, 2])
        assert r.contains_point([1, 1])
        assert not r.contains_point([3, 0])
        assert r.expanded_point([5, 1]).highs[0] == 5

    def test_min_dist_linf(self):
        r = Rect([2, 2], [4, 4])
        assert r.min_dist_linf([0, 3]) == 2.0
        assert r.min_dist_linf([3, 3]) == 0.0
        assert r.min_dist_linf([5, 6]) == 2.0

    def test_margin_volume_enlargement(self):
        r = Rect([0, 0], [2, 3])
        assert r.margin() == 5.0
        assert r.volume() == 6.0
        assert r.enlargement([4, 0]) == 2.0
        assert r.enlargement([1, 1]) == 0.0

    def test_from_points(self):
        r = Rect.bounding_points([[1, 5], [3, 2]])
        assert r.lows.tolist() == [1, 2]
        assert r.highs.tolist() == [3, 5]


class TestRTree:
    def _data(self, n=800, dims=3, seed=0):
        rng = np.random.default_rng(seed)
        return rng.uniform(0, 100, size=(n, dims))

    def test_bulk_load_window_query(self):
        pts = self._data()
        tree = RTree(Pager(page_size=1024), dims=3)
        tree.bulk_load(pts, range(len(pts)))
        tree.check_invariants()
        window = Rect([10] * 3, [40] * 3)
        got = sorted(pl for _, pl in tree.search_rect(window))
        want = [
            i
            for i in range(len(pts))
            if np.all(pts[i] >= 10) and np.all(pts[i] <= 40)
        ]
        assert got == want

    def test_insert_path_equivalent(self):
        pts = self._data(300)
        tree = RTree(Pager(page_size=512), dims=3)
        for i, p in enumerate(pts):
            tree.insert(p, i)
        tree.check_invariants()
        window = Rect([20] * 3, [60] * 3)
        got = sorted(pl for _, pl in tree.search_rect(window))
        want = [
            i
            for i in range(300)
            if np.all(pts[i] >= 20) and np.all(pts[i] <= 60)
        ]
        assert got == want

    def test_delete_and_condense(self):
        pts = self._data(400, seed=1)
        tree = RTree(Pager(page_size=512), dims=3)
        tree.bulk_load(pts, range(400))
        for i in range(0, 400, 2):
            assert tree.delete(pts[i], i)
        assert not tree.delete(pts[0], 0)  # already gone
        tree.check_invariants()
        assert len(tree) == 200

    def test_nearest_order_and_completeness(self):
        pts = self._data(500, seed=2)
        tree = RTree(Pager(page_size=1024), dims=3)
        tree.bulk_load(pts, range(500))
        q = np.array([50.0, 50.0, 50.0])
        stream = [next(tree.nearest_linf(q)) for _ in range(1)]  # restartable
        it = tree.nearest_linf(q)
        got = [next(it) for _ in range(20)]
        dists = [g[0] for g in got]
        assert dists == sorted(dists)
        brute = np.sort(np.abs(pts - q).max(axis=1))[:20]
        assert np.allclose(dists, brute)

    def test_empty_tree(self):
        tree = RTree(Pager(page_size=512), dims=2)
        assert tree.search_rect(Rect([0, 0], [1, 1])) == []
        assert list(tree.nearest_linf([0, 0])) == []

    def test_dims_validation(self):
        with pytest.raises(ValueError):
            RTree(Pager(), dims=0)
        tree = RTree(Pager(), dims=2)
        with pytest.raises(ValueError):
            tree.insert(np.zeros(3), 0)

    def test_bulk_requires_empty_and_aligned(self):
        tree = RTree(Pager(page_size=512), dims=2)
        with pytest.raises(ValueError):
            tree.bulk_load(np.zeros((2, 2)), [1])
        tree.insert(np.zeros(2), 0)
        with pytest.raises(RuntimeError):
            tree.bulk_load(np.zeros((2, 2)), [0, 1])


class TestMTree:
    def _build(self, n=500, seed=0):
        ds = make_la(n, seed=seed)
        counters = CostCounters()
        space = MetricSpace(ds, counters)
        tree = MTree(space, Pager(page_size=1024, counters=counters), seed=seed)
        for i in range(n):
            tree.insert(i, ds[i])
        return ds, tree, counters

    def test_range_matches_brute_force(self):
        ds, tree, _ = self._build()
        tree.check_invariants()
        for qi, radius in ((0, 300.0), (100, 900.0), (250, 50.0)):
            got = sorted(tree.range_query(ds[qi], radius))
            want = brute_force_range(MetricSpace(ds), ds[qi], radius)
            assert got == want

    def test_knn_matches_brute_force(self):
        ds, tree, _ = self._build(seed=1)
        for qi in (0, 33, 77):
            got = [round(n.distance, 6) for n in tree.knn_query(ds[qi], 12)]
            want = [
                round(n.distance, 6)
                for n in brute_force_knn(MetricSpace(ds), ds[qi], 12)
            ]
            assert got == want

    def test_strings(self):
        ds = make_words(300, seed=2)
        space = MetricSpace(ds)
        tree = MTree(space, Pager(page_size=2048), seed=2)
        for i in range(300):
            tree.insert(i, ds[i])
        got = sorted(tree.range_query(ds[4], 4.0))
        assert got == brute_force_range(MetricSpace(ds), ds[4], 4.0)

    def test_delete(self):
        ds, tree, _ = self._build(seed=3)
        for i in range(0, 100):
            assert tree.delete(i)
        assert not tree.delete(0)
        got = sorted(tree.range_query(ds[200], 800.0))
        want = [
            i for i in brute_force_range(MetricSpace(ds), ds[200], 800.0) if i >= 100
        ]
        assert got == want
        assert len(tree) == 400

    def test_fetch_object(self):
        ds, tree, counters = self._build(seed=4)
        counters.reset()
        obj = tree.fetch_object(42)
        assert np.array_equal(obj, ds[42])
        assert counters.page_reads >= 1
        with pytest.raises(KeyError):
            tree.fetch_object(10_000)

    def test_iter_leaf_entries(self):
        ds, tree, _ = self._build(n=200, seed=5)
        ids = sorted(e.object_id for _, e in tree.iter_leaf_entries())
        assert ids == list(range(200))

    def test_build_counts_costs(self):
        _, _, counters = self._build(n=300, seed=6)
        assert counters.distance_computations > 300  # descent + splits
        assert counters.page_writes > 0

    def test_track_vectors_requires_vec(self):
        ds = make_la(10, seed=7)
        space = MetricSpace(ds)
        tree = MTree(space, Pager(page_size=1024), track_vectors=True)
        with pytest.raises(ValueError):
            tree.insert(0, ds[0])
