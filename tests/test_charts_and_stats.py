"""ASCII charts and the QueryStats accumulator."""

from __future__ import annotations

import pytest

from repro import CostCounters, Measurement, QueryStats
from repro.bench.charts import ascii_chart, series_from_rows


class TestSeriesFromRows:
    ROWS = [
        {"Index": "A", "k": 5, "Compdists": 10.0},
        {"Index": "A", "k": 20, "Compdists": 30.0},
        {"Index": "B", "k": 20, "Compdists": 15.0},
        {"Index": "B", "k": 5, "Compdists": 12.0},
    ]

    def test_grouping_and_sorting(self):
        series = series_from_rows(self.ROWS, "k", "Compdists")
        assert set(series) == {"A", "B"}
        assert series["B"] == [(5.0, 12.0), (20.0, 15.0)]  # sorted by x

    def test_custom_label_key(self):
        rows = [{"Dataset": "LA", "k": 1, "PA": 2.0}]
        series = series_from_rows(rows, "k", "PA", label_key="Dataset")
        assert series == {"LA": [(1.0, 2.0)]}


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        series = {"A": [(0, 0), (10, 10)], "B": [(0, 10), (10, 0)]}
        chart = ascii_chart(series, title="T", width=20, height=8)
        assert chart.startswith("T")
        assert "*" in chart and "o" in chart
        assert "legend: * A   o B" in chart

    def test_empty(self):
        assert "(no data)" in ascii_chart({}, title="x")

    def test_constant_series(self):
        chart = ascii_chart({"A": [(0, 5), (1, 5)]}, width=10, height=4)
        assert "*" in chart

    def test_log_scale(self):
        series = {"A": [(1, 1.0), (2, 1000.0)]}
        chart = ascii_chart(series, log_y=True, width=20, height=6)
        assert "[log y]" in chart
        assert "1,000" in chart or "1000" in chart

    def test_axis_labels_reflect_range(self):
        chart = ascii_chart({"A": [(3, 7), (9, 42)]}, width=20, height=5)
        assert "42" in chart and "7" in chart
        assert "3" in chart and "9" in chart


class TestQueryStats:
    def test_record_and_averages(self):
        stats = QueryStats()
        counters = CostCounters()
        with counters.measure() as m1:
            counters.add_distances(10)
            counters.add_page_read(4)
        stats.record(m1)
        with counters.measure() as m2:
            counters.add_distances(20)
        stats.record(m2)
        assert stats.queries == 2
        assert stats.mean_compdists == 15.0
        assert stats.mean_page_accesses == 2.0
        assert stats.mean_cpu_seconds >= 0

    def test_empty_stats(self):
        stats = QueryStats()
        assert stats.mean_compdists == 0.0
        assert stats.mean_page_accesses == 0.0
        assert stats.mean_cpu_seconds == 0.0

    def test_as_dict(self):
        stats = QueryStats()
        stats.record(Measurement())
        d = stats.as_dict()
        assert set(d) == {"queries", "compdists", "page_accesses", "cpu_seconds"}
