"""Extensions beyond the paper's evaluation (its Section 7 future work):

DEPT (disk-resident EPT* with cheap construction), MTreeIndex (compact
partitioning baseline), ShardedIndex (partitioned construction).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CostCounters,
    DEPT,
    EPTStar,
    MTreeIndex,
    MVPT,
    MetricSpace,
    ShardedIndex,
    brute_force_knn,
    brute_force_range,
    make_la,
    make_words,
    select_pivots,
)


@pytest.fixture(scope="module")
def la():
    return make_la(500, seed=51)


@pytest.fixture(scope="module")
def words():
    return make_words(500, seed=51)


class TestDEPT:
    @pytest.mark.parametrize("maker_radius", [("la", 900.0), ("words", 5.0)])
    def test_golden_equivalence(self, la, words, maker_radius):
        name, radius = maker_radius
        dataset = la if name == "la" else words
        reference = MetricSpace(dataset)
        index = DEPT.build(MetricSpace(dataset, CostCounters()), seed=2)
        for qi in (0, 100, 300):
            q = dataset[qi]
            assert index.range_query(q, radius) == brute_force_range(
                reference, q, radius
            )
            got = [round(n.distance, 6) for n in index.knn_query(q, 8)]
            want = [round(n.distance, 6) for n in brute_force_knn(reference, q, 8)]
            assert got == want

    def test_builds_cheaper_than_ept_star(self, la):
        c_dept, c_star = CostCounters(), CostCounters()
        DEPT.build(MetricSpace(la, c_dept), n_pivots_per_object=4, seed=2)
        EPTStar.build(MetricSpace(la, c_star), n_pivots_per_object=4, seed=2)
        assert c_dept.distance_computations < c_star.distance_computations / 2

    def test_is_disk_resident(self, la):
        index = DEPT.build(MetricSpace(la, CostCounters()), seed=2)
        assert index.is_disk_based
        assert index.storage_bytes()["disk"] > 0
        counters = index.space.counters
        counters.reset()
        index.range_query(la[0], 500.0)
        assert counters.page_reads > 0

    def test_updates(self, la):
        index = DEPT.build(MetricSpace(la, CostCounters()), seed=2)
        for object_id in (5, 17, 44):
            index.delete(object_id)
            index.insert(la[object_id], object_id=object_id)
        index.delete(100)
        q = la[2]
        got = index.range_query(q, 800.0)
        want = [
            i for i in brute_force_range(MetricSpace(la), q, 800.0) if i != 100
        ]
        assert got == want
        with pytest.raises(KeyError):
            index.delete(100)

    def test_group_pivot_structure(self, la):
        index = DEPT.build(
            MetricSpace(la, CostCounters()), n_pivots_per_object=3, seed=2
        )
        for cols in index.group_pivots.values():
            assert len(cols) == 3
            assert len(set(cols)) == 3
            assert all(0 <= c < len(index.candidate_ids) for c in cols)


class TestMTreeIndex:
    def test_golden_equivalence(self, la):
        reference = MetricSpace(la)
        index = MTreeIndex.build(MetricSpace(la, CostCounters()), seed=3)
        for qi in (0, 123, 400):
            q = la[qi]
            assert index.range_query(q, 700.0) == brute_force_range(
                reference, q, 700.0
            )
            got = [round(n.distance, 6) for n in index.knn_query(q, 9)]
            want = [round(n.distance, 6) for n in brute_force_knn(reference, q, 9)]
            assert got == want

    def test_updates(self, la):
        index = MTreeIndex.build(MetricSpace(la, CostCounters()), seed=3)
        index.delete(7)
        index.insert(la[7], object_id=7)
        index.delete(8)
        q = la[2]
        want = [i for i in brute_force_range(MetricSpace(la), q, 700.0) if i != 8]
        assert index.range_query(q, 700.0) == want
        with pytest.raises(KeyError):
            index.delete(8)

    def test_pivot_based_beats_compact_on_compdists(self, la):
        """The paper's stated premise for focusing on pivot-based methods."""
        from repro import SPBTree

        pivots = select_pivots(MetricSpace(la), 5, strategy="hfi", seed=1)
        costs = {}
        for name, build in (
            ("M-tree", lambda s: MTreeIndex.build(s, seed=3)),
            ("SPB-tree", lambda s: SPBTree.build(s, pivots)),
        ):
            counters = CostCounters()
            index = build(MetricSpace(la, counters))
            counters.reset()
            for qi in (3, 77, 200):
                index.range_query(la[qi], 600.0)
            costs[name] = counters.distance_computations
        assert costs["SPB-tree"] <= costs["M-tree"]


class TestShardedIndex:
    def _build(self, dataset, n_shards=4):
        space = MetricSpace(dataset, CostCounters())

        def build_shard(shard_space):
            pivots = select_pivots(shard_space, 3, strategy="hfi", seed=1)
            return MVPT.build(shard_space, pivots)

        return ShardedIndex.build(space, build_shard, n_shards=n_shards, seed=0)

    def test_exact_answers(self, la):
        index = self._build(la)
        reference = MetricSpace(la)
        for qi in (0, 50, 499):
            q = la[qi]
            assert index.range_query(q, 800.0) == brute_force_range(
                reference, q, 800.0
            )
            got = [round(n.distance, 6) for n in index.knn_query(q, 11)]
            want = [round(n.distance, 6) for n in brute_force_knn(reference, q, 11)]
            assert got == want

    def test_strings(self, words):
        index = self._build(words, n_shards=3)
        reference = MetricSpace(words)
        q = words[9]
        assert index.range_query(q, 4.0) == brute_force_range(reference, q, 4.0)

    def test_partition_is_disjoint_and_complete(self, la):
        index = self._build(la, n_shards=5)
        all_ids = [i for ids in index._shard_ids for i in ids]
        assert sorted(all_ids) == list(range(len(la)))

    def test_single_shard_degenerates_gracefully(self, la):
        index = self._build(la, n_shards=1)
        q = la[3]
        assert index.range_query(q, 500.0) == brute_force_range(
            MetricSpace(la), q, 500.0
        )

    def test_invalid_shards(self, la):
        with pytest.raises(ValueError):
            self._build(la, n_shards=0)

    def test_storage_aggregates(self, la):
        index = self._build(la)
        assert index.storage_bytes()["memory"] > 0

    def test_counters_shared_with_parent(self, la):
        counters = CostCounters()
        space = MetricSpace(la, counters)

        def build_shard(shard_space):
            pivots = select_pivots(shard_space, 3, strategy="hfi", seed=1)
            return MVPT.build(shard_space, pivots)

        index = ShardedIndex.build(space, build_shard, n_shards=4, seed=0)
        counters.reset()
        index.range_query(la[0], 500.0)
        assert counters.distance_computations > 0
