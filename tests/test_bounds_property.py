"""Property-based bound correctness: triangle, MBB, and Ptolemaic.

Hypothesis draws random vector datasets, pivot sets, and queries; every
drawn case must satisfy the bound sandwich ``lower <= d(q, o) <= upper``
for each bound family, and the Ptolemaic bound must only be offered on
metrics that declare Ptolemy's inequality (L2, PSD quadratic form --
never Hamming).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    CostCounters,
    Dataset,
    HammingDistance,
    L2,
    MetricSpace,
    QuadraticFormDistance,
)
from repro.core.pivot_filter import (
    lower_bound_many,
    mbb_max_dist,
    mbb_min_dist,
    ptolemaic_lower_bound_many,
    ptolemaic_pairs,
    upper_bound_many,
)
from repro.core.staged import StagedPruner, score_pivot_order

EPS = 1e-7


def _metric_for(kind: str, dim: int, rng):
    if kind == "l2":
        return L2
    if kind == "quadratic":
        basis = rng.normal(size=(dim, dim))
        return QuadraticFormDistance(basis @ basis.T + dim * np.eye(dim))
    return HammingDistance()


@st.composite
def bound_cases(draw):
    kind = draw(st.sampled_from(["l2", "quadratic", "hamming"]))
    n = draw(st.integers(4, 24))
    dim = draw(st.integers(1, 5))
    n_pivots = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    if kind == "hamming":
        points = rng.integers(0, 2, size=(n + n_pivots + 1, max(2, dim * 3)))
    else:
        style = draw(st.sampled_from(["uniform", "degenerate"]))
        shape = (n + n_pivots + 1, dim)
        if style == "uniform":
            points = rng.uniform(-10, 10, size=shape)
        else:  # duplicates / collinear-ish points stress zero denominators
            base = rng.uniform(0, 3, size=(max(2, n // 4), dim))
            points = base[rng.integers(0, len(base), size=shape[0])]
    metric = _metric_for(kind, dim, rng)
    query, pivots, objects = points[0], points[1 : 1 + n_pivots], points[1 + n_pivots :]
    return kind, metric, query, pivots, objects


@given(case=bound_cases())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.data_too_large],
)
def test_bound_sandwich_holds_for_every_family(case):
    kind, metric, query, pivots, objects = case
    qdists = metric.one_to_many(query, pivots)
    omat = metric.pairwise(objects, pivots)
    true_d = metric.one_to_many(query, objects)

    # triangle (Lemma 1 / Lemma 4)
    lower = lower_bound_many(qdists, omat)
    upper = upper_bound_many(qdists, omat)
    assert (lower <= true_d + EPS).all()
    assert (true_d <= upper + EPS).all()

    # MBB: the pivot-space bounding box of the whole object set must
    # sandwich every member's true distance
    lows, highs = omat.min(axis=0), omat.max(axis=0)
    lo = mbb_min_dist(qdists, lows, highs)
    hi = mbb_max_dist(qdists, lows, highs)
    assert (lo <= true_d + EPS).all()
    assert (true_d <= hi + EPS).all()
    # and it can never beat the per-object triangle bound
    assert (lo <= lower + EPS).all()

    # Ptolemaic -- only on metrics declaring the inequality
    if metric.is_ptolemaic and len(pivots) > 1:
        pair = metric.pairwise(pivots, pivots)
        pt = ptolemaic_lower_bound_many(qdists, omat, pair)
        assert (pt <= true_d + EPS).all()
    else:
        assert kind == "hamming" or len(pivots) == 1


@given(case=bound_cases())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.data_too_large],
)
def test_staged_pruner_bound_dominates_triangle(case):
    """The cascade's kNN bound is the max of triangle and Ptolemaic, so it
    is always at least as tight as triangle alone and still a true lower
    bound of the exact distance."""
    kind, metric, query, pivots, objects = case
    space = MetricSpace(
        Dataset(np.vstack([pivots, objects]), metric, name="prop"), CostCounters()
    )
    qdists = metric.one_to_many(query, pivots)
    omat = metric.pairwise(objects, pivots)
    true_d = metric.one_to_many(query, objects)
    pruner = StagedPruner.build(
        space, omat, [space.dataset[i] for i in range(len(pivots))]
    )
    combined = pruner.lower_bounds_many(qdists, omat)
    triangle = lower_bound_many(qdists, omat)
    assert (combined >= triangle - EPS).all()
    assert (combined <= true_d + EPS).all()
    if not metric.is_ptolemaic:
        # non-Ptolemaic: the combined bound IS the triangle bound
        assert np.allclose(combined, triangle)
        assert not pruner.use_ptolemaic


@given(
    radius=st.floats(0.0, 30.0),
    case=bound_cases(),
)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.data_too_large],
)
def test_cascade_never_prunes_an_answer(radius, case):
    """Soundness of the full mask cascade at arbitrary radii: every true
    answer is either a survivor or validated, never pruned."""
    kind, metric, query, pivots, objects = case
    space = MetricSpace(
        Dataset(np.vstack([pivots, objects]), metric, name="prop"), CostCounters()
    )
    qdists = metric.one_to_many(query, pivots)
    omat = metric.pairwise(objects, pivots)
    true_d = metric.one_to_many(query, objects)
    pruner = StagedPruner.build(
        space, omat, [space.dataset[i] for i in range(len(pivots))]
    )
    survivors, validated = pruner.masks_many(qdists, omat, radius, validate=True)
    answers = true_d <= radius
    assert (answers <= (survivors | validated)).all()
    # validated objects really are answers (Lemma 4 is an upper bound)
    assert (true_d[validated] <= radius + EPS).all()


def test_score_pivot_order_is_a_permutation():
    rng = np.random.default_rng(0)
    mat = rng.uniform(0, 5, size=(40, 6))
    order = score_pivot_order(mat)
    assert sorted(int(i) for i in order) == list(range(6))
    # deterministic in the seed
    assert np.array_equal(order, score_pivot_order(mat))


def test_ptolemaic_pairs_budget_respected():
    rng = np.random.default_rng(1)
    pts = rng.uniform(0, 5, size=(6, 3))
    pair = L2.pairwise(pts, pts)
    for budget in (1, 3, 8, 100):
        pairs = ptolemaic_pairs(pair, budget=budget)
        assert pairs.shape[0] <= budget
        assert pairs.shape[0] == min(budget, 15)  # C(6,2) distinct pairs
