"""Dataset persistence (save_dataset / load_dataset)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import MetricSpace, brute_force_range, make_la, make_synthetic, make_words
from repro.core import load_dataset, save_dataset


class TestVectorRoundtrip:
    def test_la(self, tmp_path):
        dataset = make_la(120, seed=1)
        path = tmp_path / "la.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.name == "LA"
        assert loaded.distance.name == "L2"
        assert np.array_equal(loaded.objects, dataset.objects)

    def test_synthetic_keeps_discreteness(self, tmp_path):
        dataset = make_synthetic(100, seed=1)
        path = tmp_path / "syn.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.distance.is_discrete
        assert loaded.distance.name == "Linf"

    def test_queries_identical_after_roundtrip(self, tmp_path):
        dataset = make_la(150, seed=2)
        path = tmp_path / "la.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        q = dataset[3]
        assert brute_force_range(MetricSpace(loaded), q, 800.0) == brute_force_range(
            MetricSpace(dataset), q, 800.0
        )


class TestWordsRoundtrip:
    def test_words(self, tmp_path):
        dataset = make_words(80, seed=3)
        path = tmp_path / "words.txt"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.name == "Words"
        assert loaded.distance.name == "edit"
        assert list(loaded.objects) == list(dataset.objects)

    def test_header_parsing_defaults(self, tmp_path):
        path = tmp_path / "bare.txt"
        path.write_text("# hello\nalpha\nbeta\n")
        loaded = load_dataset(path)
        assert list(loaded.objects) == ["alpha", "beta"]
        assert loaded.distance.name == "edit"
