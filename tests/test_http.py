"""HTTP front-end: the QueryService surface over a loopback socket.

Covers the tentpole contracts:

* every endpoint returns answers bit-for-bit equal to direct
  ``QueryService`` / index calls (strings and numpy vectors both survive
  the JSON round trip);
* concurrent HTTP clients flow through the cache -> dispatcher -> batch
  stack (coalescing visible in ``/stats``);
* backpressure: requests beyond ``max_inflight`` get 503 immediately;
* graceful shutdown: in-flight requests complete, the dispatcher drains,
  then the socket closes;
* ``POST /admin/reload`` hot-swaps a newer snapshot atomically;
* the ``repro serve --http`` CLI serves and shuts down cleanly on SIGINT.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from conftest import RADIUS
from repro import (
    CostCounters,
    MetricSpace,
    QueryService,
    save_index,
    select_pivots,
)
from repro.service.http import (
    HttpQueryServer,
    ServiceClient,
    ServiceClientError,
    decode_neighbors,
    encode_neighbors,
    encode_object,
)
from repro.tables import LAESA

K = 5


def _laesa_over(dataset):
    space = MetricSpace(dataset, CostCounters())
    return LAESA.build(space, select_pivots(MetricSpace(dataset), 3, strategy="hfi"))


@pytest.fixture
def served(datasets, built_indexes):
    """Words LAESA behind a loopback HTTP server (shared, read-only)."""
    index = built_indexes("Words", "LAESA")
    service = QueryService(index, max_batch_size=16, max_wait_ms=25.0)
    server = HttpQueryServer(service, max_inflight=64).start()
    client = ServiceClient(port=server.port)
    yield index, service, server, client
    server.close()
    service.close()


class _SlowServed:
    """A served index whose range queries block until released.

    ``service.range_query`` is wrapped so each call signals ``entered``
    and parks on ``release`` -- the deterministic way to hold requests
    in flight while a test observes backpressure or drain behaviour.
    """

    def __init__(self, dataset, max_inflight):
        self.index = _laesa_over(dataset)
        self.service = QueryService(self.index, max_wait_ms=1.0)
        self.entered = threading.Semaphore(0)
        self.release = threading.Event()
        original = self.service.range_query

        def slow(query_obj, radius, index=None):
            self.entered.release()
            assert self.release.wait(20), "test never released in-flight queries"
            return original(query_obj, radius, index=index)

        self.service.range_query = slow
        self.server = HttpQueryServer(self.service, max_inflight=max_inflight)
        self.server.start()
        self.client = ServiceClient(port=self.server.port)

    def close(self):
        self.release.set()
        self.server.close()
        self.service.close()


# ---------------------------------------------------------------------------
# wire codec + basic endpoints
# ---------------------------------------------------------------------------


def test_encode_decode_neighbors_roundtrip():
    from repro.core.queries import Neighbor

    answer = [Neighbor(1.5, 3), Neighbor(2.25, 8)]
    assert decode_neighbors(encode_neighbors(answer)) == answer
    assert encode_object("word") == "word"
    assert encode_object(np.array([1.0, 2.5])) == [1.0, 2.5]


def test_healthz_and_stats_shapes(served):
    index, service, server, client = served
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["index"] == "LAESA"
    assert health["objects"] == len(index.space)
    stats = client.stats()
    assert set(stats) >= {"cache", "dispatcher", "http", "index"}
    assert stats["http"]["max_inflight"] == 64
    assert stats["http"]["draining"] is False


def test_single_endpoints_match_direct_calls(served, datasets):
    index, service, server, client = served
    radius = RADIUS["Words"]
    for q in [datasets["Words"][i] for i in range(5)]:
        assert client.range_query(q, radius) == index.range_query(q, radius)
        assert client.knn_query(q, K) == index.knn_query(q, K)


def test_batch_endpoints_match_direct_calls(served, datasets):
    index, service, server, client = served
    queries = [datasets["Words"][i] for i in range(8)]
    radius = RADIUS["Words"]
    assert client.range_query_many(queries, radius) == index.range_query_many(
        queries, radius
    )
    assert client.knn_query_many(queries, K) == index.knn_query_many(queries, K)


def test_vector_queries_roundtrip_bit_for_bit(datasets):
    """Float64 vectors must survive the JSON trip exactly -- kNN distances
    and ids compare with ==, not approx."""
    index = _laesa_over(datasets["LA"])
    with QueryService(index, use_dispatcher=False) as service:
        with HttpQueryServer(service).start() as server:
            client = ServiceClient(port=server.port)
            queries = [datasets["LA"][i] for i in range(4)]
            radius = RADIUS["LA"]
            assert client.range_query_many(queries, radius) == (
                index.range_query_many(queries, radius)
            )
            assert client.knn_query_many(queries, K) == index.knn_query_many(
                queries, K
            )


def test_error_statuses(served):
    index, service, server, client = served
    with pytest.raises(ServiceClientError, match="404"):
        client._request("POST", "/no/such/route", {})
    with pytest.raises(ServiceClientError, match="404"):
        client._request("GET", "/no/such/route")
    with pytest.raises(ServiceClientError, match="400") as excinfo:
        client._request("POST", "/range", {"radius": 2.0})  # missing query
    assert excinfo.value.status == 400
    with pytest.raises(ServiceClientError, match="400"):
        client._request("POST", "/range", {"query": "word"})  # missing radius
    with pytest.raises(ServiceClientError, match="400"):
        client._request("POST", "/knn", {"query": "word", "k": 0})
    with pytest.raises(ServiceClientError, match="400"):
        client._request("POST", "/range_many", {"queries": [], "radius": 1.0})
    with pytest.raises(ServiceClientError, match="400"):
        client._request("POST", "/delete", {"object_id": "three"})
    # malformed body -> 400, not a hung connection
    import http.client as http_client

    conn = http_client.HTTPConnection(client.host, client.port, timeout=10)
    try:
        conn.request(
            "POST", "/range", body=b"{not json", headers={"Content-Type": "application/json"}
        )
        assert conn.getresponse().status == 400
    finally:
        conn.close()


def test_vector_shape_mismatch_is_400(datasets):
    index = _laesa_over(datasets["LA"])
    with QueryService(index, use_dispatcher=False) as service:
        with HttpQueryServer(service).start() as server:
            client = ServiceClient(port=server.port)
            with pytest.raises(ServiceClientError, match="400"):
                client.range_query(np.array([1.0, 2.0, 3.0]), 10.0)  # LA is 2-d
            with pytest.raises(ServiceClientError, match="400"):
                client.range_query("not-a-vector", 10.0)


# ---------------------------------------------------------------------------
# concurrency: exactness + micro-batching over the wire
# ---------------------------------------------------------------------------


def test_32_concurrent_mixed_clients_exact_and_coalesced(served, datasets):
    """The acceptance bar: >= 32 concurrent clients of mixed MRQ/MkNNQ
    traffic, answers bit-for-bit the direct ones, dispatcher coalescing
    visible in /stats (batches < queries)."""
    index, service, server, client = served
    dataset = datasets["Words"]
    radius = RADIUS["Words"]
    sample = [dataset[i] for i in range(16)]
    expected_range = {i: index.range_query(q, radius) for i, q in enumerate(sample)}
    expected_knn = {i: index.knn_query(q, K) for i, q in enumerate(sample)}

    def one_client(i):
        # each of the 32 clients issues one MRQ and one MkNNQ
        q = sample[i % len(sample)]
        return client.range_query(q, radius), client.knn_query(q, K)

    with ThreadPoolExecutor(max_workers=32) as pool:
        results = list(pool.map(one_client, range(32)))
    for i, (got_range, got_knn) in enumerate(results):
        assert got_range == expected_range[i % len(sample)]
        assert got_knn == expected_knn[i % len(sample)]
    stats = client.stats()
    dispatcher = stats["dispatcher"]
    assert dispatcher["queries"] > 0, "wire traffic never reached the dispatcher"
    assert dispatcher["batches"] < dispatcher["queries"], dispatcher
    assert stats["http"]["served"] >= 64


# ---------------------------------------------------------------------------
# keep-alive connection pooling
# ---------------------------------------------------------------------------


def test_keep_alive_reuses_one_connection(served, datasets):
    """N sequential calls ride one pooled keep-alive connection."""
    index, service, server, client = served
    dataset = datasets["Words"]
    radius = RADIUS["Words"]
    with ServiceClient(port=server.port) as fresh:
        assert fresh.connections_opened == 0
        for i in range(6):
            q = dataset[i]
            assert fresh.range_query(q, radius) == index.range_query(q, radius)
            assert fresh.knn_query(q, K) == index.knn_query(q, K)
        assert fresh.healthz()["status"] == "ok"
        # GETs bypass admission accounting; the 12 POSTs were all served
        assert fresh.stats()["http"]["served"] >= 12
        assert fresh.connections_opened == 1


def test_keep_alive_reconnects_on_stale_socket(served, datasets):
    """A dead pooled socket is replaced transparently, one retry, no error."""
    import socket

    index, service, server, client = served
    dataset = datasets["Words"]
    radius = RADIUS["Words"]
    with ServiceClient(port=server.port) as fresh:
        q = dataset[0]
        expected = index.range_query(q, radius)
        assert fresh.range_query(q, radius) == expected
        assert fresh.connections_opened == 1
        # simulate the server dropping the idle keep-alive connection: the
        # next request hits a dead socket and must retry on a fresh one
        fresh._local.conn.sock.shutdown(socket.SHUT_RDWR)
        assert fresh.range_query(q, radius) == expected
        assert fresh.connections_opened == 2
        # the transparent retry is accounted, not silent
        assert fresh.retries == 1
        assert fresh.client_stats() == {
            "connections_opened": 2,
            "retries": 1,
            "pooled": 1,
        }
        # the replacement connection is pooled and reused thereafter
        assert fresh.knn_query(q, K) == index.knn_query(q, K)
        assert fresh.connections_opened == 2
        assert fresh.retries == 1


def test_keep_alive_close_releases_and_reopens(served, datasets):
    """close() drops pooled sockets; the client stays usable afterwards."""
    index, service, server, client = served
    dataset = datasets["Words"]
    radius = RADIUS["Words"]
    fresh = ServiceClient(port=server.port)
    q = dataset[1]
    expected = index.range_query(q, radius)
    assert fresh.range_query(q, radius) == expected
    fresh.close()
    assert fresh._conns == []
    assert fresh.range_query(q, radius) == expected  # reopens cleanly
    assert fresh.connections_opened == 2
    fresh.close()


def test_keep_alive_pools_per_thread(served, datasets):
    """A shared client fans out: one pooled connection per calling thread."""
    index, service, server, client = served
    dataset = datasets["Words"]
    radius = RADIUS["Words"]
    with ServiceClient(port=server.port) as fresh:
        expected = {i: index.range_query(dataset[i], radius) for i in range(4)}

        def worker(i):
            # two sequential calls per thread: the second reuses the first's
            # pooled connection, so total connections == thread count
            assert fresh.range_query(dataset[i], radius) == expected[i]
            assert fresh.range_query(dataset[i], radius) == expected[i]

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(worker, range(4)))
        assert 1 <= fresh.connections_opened <= 4


# ---------------------------------------------------------------------------
# backpressure
# ---------------------------------------------------------------------------


def test_backpressure_rejects_with_503(datasets):
    slow = _SlowServed(datasets["Words"].subset(range(60)), max_inflight=2)
    try:
        q = datasets["Words"][0]
        answers = []
        clients = [
            threading.Thread(target=lambda: answers.append(slow.client.range_query(q, 2.0)))
            for _ in range(2)
        ]
        for t in clients:
            t.start()
        slow.entered.acquire(timeout=10)
        slow.entered.acquire(timeout=10)
        # both slots occupied: the third request is rejected immediately
        with pytest.raises(ServiceClientError) as excinfo:
            slow.client.range_query(q, 2.0)
        assert excinfo.value.status == 503
        assert slow.server.rejected == 1
        # observability keeps answering under saturation
        assert slow.client.healthz()["status"] == "ok"
        slow.release.set()
        for t in clients:
            t.join(timeout=10)
        expected = slow.index.range_query(q, 2.0)
        assert answers == [expected, expected]
        # capacity freed: new requests are admitted again
        assert slow.client.range_query(q, 2.0) == expected
    finally:
        slow.close()


# ---------------------------------------------------------------------------
# graceful shutdown
# ---------------------------------------------------------------------------


def test_graceful_shutdown_drains_inflight_then_closes(datasets):
    slow = _SlowServed(datasets["Words"].subset(range(60)), max_inflight=8)
    q = datasets["Words"][0]
    answers = []
    clients = [
        threading.Thread(target=lambda: answers.append(slow.client.range_query(q, 2.0)))
        for _ in range(2)
    ]
    for t in clients:
        t.start()
    slow.entered.acquire(timeout=10)
    slow.entered.acquire(timeout=10)

    closer = threading.Thread(target=slow.server.close)
    closer.start()
    # draining: new work is rejected while in-flight requests keep running
    deadline = time.time() + 10
    while not slow.server.draining and time.time() < deadline:
        time.sleep(0.01)
    assert slow.server.draining
    with pytest.raises(ServiceClientError) as excinfo:
        slow.client.range_query(q, 2.0)
    assert excinfo.value.status == 503
    assert slow.client.healthz()["status"] == "draining"
    closer.join(timeout=0.2)
    assert closer.is_alive()  # close() is still waiting on the in-flight pair

    slow.release.set()
    for t in clients:
        t.join(timeout=10)
    closer.join(timeout=10)
    assert not closer.is_alive()
    # the in-flight requests completed with real answers, never resets
    expected = slow.index.range_query(q, 2.0)
    assert answers == [expected, expected]
    # the dispatcher drained before the socket closed...
    with pytest.raises(RuntimeError, match="closed"):
        slow.service.dispatcher.submit(slow.service.index_id, "range", q, 2.0)
    # ...and the socket is now actually closed
    with pytest.raises(OSError):
        slow.client.healthz()
    slow.server.close()  # idempotent
    slow.service.close()


# ---------------------------------------------------------------------------
# snapshot startup + hot reload
# ---------------------------------------------------------------------------


def _snapshot_pair(datasets, tmp_path):
    """Two snapshots of LAESA over nested Words subsets (answers differ)."""
    small = datasets["Words"].subset(range(100))
    large = datasets["Words"].subset(range(250))
    index_small, index_large = _laesa_over(small), _laesa_over(large)
    path_small = tmp_path / "small.snap"
    path_large = tmp_path / "large.snap"
    save_index(index_small, path_small)
    save_index(index_large, path_large)
    return (index_small, path_small), (index_large, path_large)


def test_reload_hot_swaps_snapshot(datasets, tmp_path):
    (index_small, path_small), (index_large, path_large) = _snapshot_pair(
        datasets, tmp_path
    )
    radius = RADIUS["Words"]
    # a query whose answer provably changes with the larger subset
    query = None
    for i in range(100):
        q = datasets["Words"][i]
        if index_small.range_query(q, radius) != index_large.range_query(q, radius):
            query = q
            break
    assert query is not None, "fixture subsets too similar to distinguish"

    service = QueryService.from_snapshot(path_small, max_wait_ms=1.0)
    with service, HttpQueryServer(service).start() as server:
        client = ServiceClient(port=server.port)
        assert client.healthz()["objects"] == 100
        before = client.range_query(query, radius)
        assert before == index_small.range_query(query, radius)

        out = client.reload(path_large)
        assert out["objects"] == 250
        assert client.healthz()["objects"] == 250
        # the swap invalidated the cached pre-reload answer: the same query
        # now reflects the new snapshot, both cold and from cache
        after = client.range_query(query, radius)
        assert after == index_large.range_query(query, radius)
        assert after != before
        assert client.range_query(query, radius) == after  # cached re-ask
        assert client.stats()["cache"]["hits"] >= 1


def test_reload_rejects_bad_snapshots_and_keeps_serving(datasets, tmp_path):
    (index_small, path_small), _ = _snapshot_pair(datasets, tmp_path)
    junk = tmp_path / "junk.snap"
    junk.write_bytes(b"NOTASNAP" + b"\x00" * 32)
    service = QueryService.from_snapshot(path_small, max_wait_ms=1.0)
    with service, HttpQueryServer(service).start() as server:
        client = ServiceClient(port=server.port)
        q = datasets["Words"][0]
        expected = client.range_query(q, RADIUS["Words"])
        for bad in (str(tmp_path / "missing.snap"), str(junk)):
            with pytest.raises(ServiceClientError) as excinfo:
                client.reload(bad)
            assert excinfo.value.status == 400
        # the old index is untouched and still serving
        assert client.healthz()["objects"] == 100
        assert client.range_query(q, RADIUS["Words"]) == expected


def test_service_reload_generation_drops_inflight_puts(datasets, tmp_path):
    """An answer computed against the pre-reload index must never be cached
    after the swap (the service-level half of the reload contract)."""
    (index_small, path_small), (_, path_large) = _snapshot_pair(datasets, tmp_path)
    service = QueryService.from_snapshot(path_small, use_dispatcher=False)
    with service:
        q = datasets["Words"][0]
        key = service.cache.make_key(service.index_id, "range", q, 2.0)
        stale_generation = service.cache.generation(service.index_id)
        stale_answer = service.index.range_query(q, 2.0)
        service.reload_from_snapshot(path_large)
        service.cache.put(key, stale_answer, generation=stale_generation, query_obj=q)
        assert service.cache.get(key) is None  # the stale put was dropped
        assert len(service.index.space) == 250


# ---------------------------------------------------------------------------
# mutations over the wire
# ---------------------------------------------------------------------------


def test_insert_and_delete_endpoints(datasets):
    dataset = datasets["Words"].subset(range(120))
    index = _laesa_over(dataset)
    with QueryService(index, max_wait_ms=1.0) as service:
        with HttpQueryServer(service).start() as server:
            client = ServiceClient(port=server.port)
            q = dataset[0]
            baseline = client.range_query(q, 2.0)
            new_id = client.insert(q)  # a duplicate word: distance 0 <= r
            assert isinstance(new_id, int)
            grown = client.range_query(q, 2.0)
            assert set(grown) == set(baseline) | {new_id}
            client.delete(new_id)
            assert client.range_query(q, 2.0) == baseline


def test_insert_vector_object_over_wire(datasets):
    dataset = datasets["LA"].subset(range(80))
    index = _laesa_over(dataset)
    with QueryService(index, max_wait_ms=1.0) as service:
        with HttpQueryServer(service).start() as server:
            client = ServiceClient(port=server.port)
            q = dataset[0]
            baseline = client.range_query(q, RADIUS["LA"])
            new_id = client.insert(np.asarray(q))
            assert new_id in client.range_query(q, RADIUS["LA"])
            client.delete(new_id)
            assert client.range_query(q, RADIUS["LA"]) == baseline


# ---------------------------------------------------------------------------
# server argument validation
# ---------------------------------------------------------------------------


def test_server_rejects_bad_arguments(datasets):
    index = _laesa_over(datasets["Words"].subset(range(30)))
    with QueryService(index, use_dispatcher=False) as service:
        with pytest.raises(ValueError, match="max_inflight"):
            HttpQueryServer(service, max_inflight=0)
        server = HttpQueryServer(service)
        server.start()
        with pytest.raises(RuntimeError, match="already started"):
            server.start()
        server.close()


def test_close_before_start_returns_and_frees_the_port(datasets):
    """close() on a constructed-but-never-started server must not hang on
    the serve_forever handshake, and must release the bound socket."""
    index = _laesa_over(datasets["Words"].subset(range(30)))
    with QueryService(index, use_dispatcher=False) as service:
        server = HttpQueryServer(service)
        port = server.port
        done = threading.Event()

        def closer():
            server.close()
            done.set()

        thread = threading.Thread(target=closer)
        thread.start()
        assert done.wait(timeout=5), "close() hung on a never-started server"
        thread.join()
        # the port is free again: a new server can bind it immediately
        rebound = HttpQueryServer(service, port=port)
        rebound.start()
        rebound.close()


def test_early_replies_keep_the_connection_synchronized(datasets):
    """404/503 are decided before the handler parses the body -- the body
    must still be drained, or a keep-alive connection would parse the
    leftover bytes as the next request (and the kernel could RST the reply
    away entirely).  A follow-up request on the *same* connection proves
    the stream stayed in sync."""
    import http.client as http_client

    slow = _SlowServed(datasets["Words"].subset(range(40)), max_inflight=1)
    try:
        q = datasets["Words"][0]
        holder = threading.Thread(
            target=lambda: slow.client.range_query(q, 2.0)
        )
        holder.start()
        slow.entered.acquire(timeout=10)

        body = b'{"query": "word", "radius": 2.0}'
        for path, status in (("/range", 503), ("/no/such", 404)):
            conn = http_client.HTTPConnection(
                slow.client.host, slow.client.port, timeout=10
            )
            try:
                conn.request(
                    "POST",
                    path,
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                assert response.status == status
                response.read()
                # the same connection must still speak valid HTTP
                conn.request("GET", "/healthz")
                follow_up = conn.getresponse()
                assert follow_up.status == 200
                follow_up.read()
            finally:
                conn.close()
        slow.release.set()
        holder.join(timeout=10)
    finally:
        slow.close()


def test_insert_rejects_boolean_object_id(datasets):
    """JSON true passes isinstance(x, int); it must still be a 400, not a
    silent insert at object_id 1."""
    index = _laesa_over(datasets["Words"].subset(range(40)))
    with QueryService(index, use_dispatcher=False) as service:
        with HttpQueryServer(service).start() as server:
            client = ServiceClient(port=server.port)
            with pytest.raises(ServiceClientError) as excinfo:
                client._request(
                    "POST", "/insert", {"object": "word", "object_id": True}
                )
            assert excinfo.value.status == 400
            with pytest.raises(ServiceClientError) as excinfo:
                client._request("POST", "/delete", {"object_id": False})
            assert excinfo.value.status == 400


def test_mutations_serialize_with_reload(datasets):
    """insert/delete must hold the reload lock: an acknowledged mutation
    may never land in an index a concurrent hot swap is discarding."""
    index = _laesa_over(datasets["Words"].subset(range(40)))
    with QueryService(index, use_dispatcher=False) as service:
        acked = threading.Event()

        def mutate():
            service.insert(datasets["Words"][0])
            acked.set()

        with service._reload_lock:  # a reload is mid-swap
            thread = threading.Thread(target=mutate)
            thread.start()
            assert not acked.wait(timeout=0.2), "insert ignored the reload lock"
        assert acked.wait(timeout=5)
        thread.join()


# ---------------------------------------------------------------------------
# bearer-token auth
# ---------------------------------------------------------------------------


def test_auth_token_guards_mutations_and_admin(datasets):
    """With an auth token set, /insert, /delete, and /admin/reload demand
    `Authorization: Bearer <token>`; queries and observability stay open."""
    dataset = datasets["Words"].subset(range(60))
    index = _laesa_over(dataset)
    token = "s3cret-token"
    with QueryService(index, use_dispatcher=False) as service:
        server = HttpQueryServer(service, auth_token=token).start()
        with server:
            q = dataset[0]
            expected = index.range_query(q, 2.0)
            with ServiceClient(port=server.port) as anon:
                # read paths are open without credentials
                assert anon.range_query(q, 2.0) == expected
                assert anon.knn_query(q, K) == index.knn_query(q, K)
                assert anon.healthz()["status"] == "ok"
                assert "http" in anon.stats()
                # guarded paths are 401 without (or with a wrong) token
                for call in (
                    lambda c: c.insert(q),
                    lambda c: c.delete(0),
                    lambda c: c.reload("/nowhere.snap"),
                ):
                    with pytest.raises(ServiceClientError) as excinfo:
                        call(anon)
                    assert excinfo.value.status == 401
            with ServiceClient(port=server.port, auth_token="wrong") as bad:
                with pytest.raises(ServiceClientError) as excinfo:
                    bad.delete(0)
                assert excinfo.value.status == 401
            with ServiceClient(port=server.port, auth_token=token) as ok:
                # authorized: the mutation goes through (and the guarded
                # reload path gets far enough to reject the bad snapshot,
                # proving auth passed)
                new_id = ok.insert(q)
                assert new_id in ok.range_query(q, 2.0)
                ok.delete(new_id)
                with pytest.raises(ServiceClientError) as excinfo:
                    ok.reload("/nowhere.snap")
                assert excinfo.value.status == 400


def test_no_auth_token_leaves_every_path_open(datasets):
    dataset = datasets["Words"].subset(range(40))
    index = _laesa_over(dataset)
    with QueryService(index, use_dispatcher=False) as service:
        with HttpQueryServer(service).start() as server:
            with ServiceClient(port=server.port) as client:
                q = dataset[0]
                new_id = client.insert(q)
                client.delete(new_id)


# ---------------------------------------------------------------------------
# the CLI front door: repro serve --http
# ---------------------------------------------------------------------------


def test_cli_serve_http_from_snapshot(datasets, tmp_path):
    """End to end: snapshot -> `repro serve --http 0` subprocess -> client
    traffic -> SIGINT -> graceful shutdown with exit code 0."""
    index = _laesa_over(datasets["Words"].subset(range(150)))
    snap = tmp_path / "cli.snap"
    save_index(index, snap)

    src = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--http", "0", "--snapshot", str(snap)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        bufsize=1,
        env=env,
    )
    try:
        port = None
        deadline = time.time() + 60
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                break  # the child exited before binding
            match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        assert port is not None, "server never printed its address"
        client = ServiceClient(port=port)
        assert client.healthz()["objects"] == 150
        q = datasets["Words"][0]
        assert client.range_query(q, 2.0) == index.range_query(q, 2.0)
        assert client.knn_query(q, K) == index.knn_query(q, K)
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, err
    assert "shut down cleanly" in out
