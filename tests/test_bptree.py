"""B+-tree substrate: ordering, duplicates, deletes, bulk load, augmentation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import Augmentation, BPlusTree
from repro.storage import Pager


def make_tree(page_size=512, **kwargs) -> BPlusTree:
    return BPlusTree(Pager(page_size=page_size), **kwargs)


class TestBasicOps:
    def test_insert_search(self):
        tree = make_tree()
        tree.insert(5, "five")
        tree.insert(3, "three")
        assert tree.search(5) == ["five"]
        assert tree.search(4) == []

    def test_sorted_iteration(self):
        tree = make_tree()
        keys = random.Random(0).sample(range(10_000), 800)
        for k in keys:
            tree.insert(k, k * 2)
        assert [k for k, _ in tree.items()] == sorted(keys)
        tree.check_invariants()

    def test_duplicates(self):
        tree = make_tree(page_size=256)
        for i in range(100):
            tree.insert(7, i)
        assert sorted(tree.search(7)) == list(range(100))
        tree.check_invariants()

    def test_range_scan(self):
        tree = make_tree()
        for k in range(0, 1000, 3):
            tree.insert(k, k)
        got = [k for k, _ in tree.range_scan(100, 200)]
        assert got == [k for k in range(0, 1000, 3) if 100 <= k <= 200]

    def test_range_scan_empty_interval(self):
        tree = make_tree()
        tree.insert(1, 1)
        assert list(tree.range_scan(5, 2)) == []

    def test_tuple_keys(self):
        """The M-index keys by ((path...), distance) tuples."""
        tree = make_tree()
        tree.insert(((0,), 3.5), "a")
        tree.insert(((0, 1), 1.0), "b")
        tree.insert(((0,), 1.5), "c")
        keys = [k for k, _ in tree.items()]
        assert keys == sorted(keys)
        got = [v for _, v in tree.range_scan(((0,), 0.0), ((0,), 10.0))]
        assert got == ["c", "a"]


class TestDelete:
    def test_delete_by_key_and_value(self):
        tree = make_tree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "a")
        assert tree.search(1) == ["b"]
        assert not tree.delete(1, "a")

    def test_delete_missing(self):
        tree = make_tree()
        tree.insert(1, "a")
        assert not tree.delete(2)

    def test_mass_delete_keeps_invariants(self):
        tree = make_tree(page_size=256)
        rng = random.Random(1)
        keys = [rng.randint(0, 500) for _ in range(1500)]
        for i, k in enumerate(keys):
            tree.insert(k, i)
        order = list(enumerate(keys))
        rng.shuffle(order)
        for i, k in order[:1200]:
            assert tree.delete(k, i)
        tree.check_invariants()
        remaining = sorted(k for i, k in order[1200:])
        assert [k for k, _ in tree.items()] == remaining

    def test_delete_to_empty(self):
        tree = make_tree(page_size=256)
        for i in range(300):
            tree.insert(i, i)
        for i in range(300):
            assert tree.delete(i, i)
        assert list(tree.items()) == []
        assert len(tree) == 0
        tree.insert(5, 5)  # still usable
        assert tree.search(5) == [5]

    def test_duplicate_walk_delete(self):
        """Duplicates spanning many leaves are still deletable by value."""
        tree = make_tree(page_size=256)
        for i in range(400):
            tree.insert(9, i)
        for i in range(0, 400, 7):
            assert tree.delete(9, i)
        assert len(tree.search(9)) == 400 - len(range(0, 400, 7))


class TestBulkLoad:
    def test_bulk_matches_inserts(self):
        items = [(k, str(k)) for k in range(0, 2000, 2)]
        bulk = make_tree()
        bulk.bulk_load(items)
        bulk.check_invariants()
        assert list(bulk.items()) == items

    def test_bulk_requires_sorted(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.bulk_load([(2, "b"), (1, "a")])

    def test_bulk_requires_empty(self):
        tree = make_tree()
        tree.insert(1, 1)
        with pytest.raises(RuntimeError):
            tree.bulk_load([(2, 2)])

    def test_bulk_then_mutate(self):
        tree = make_tree(page_size=256)
        tree.bulk_load([(k, k) for k in range(500)])
        for k in range(500, 700):
            tree.insert(k, k)
        for k in range(0, 500, 3):
            assert tree.delete(k, k)
        tree.check_invariants()
        want = sorted(set(range(700)) - set(range(0, 500, 3)))
        assert [k for k, _ in tree.items()] == want

    def test_bulk_empty(self):
        tree = make_tree()
        tree.bulk_load([])
        assert list(tree.items()) == []


class TestAugmentation:
    """The SPB-tree's MBB maintenance rides on these summaries."""

    @staticmethod
    def _minmax_augmentation():
        return Augmentation(
            from_entry=lambda key, value: (key, key),
            merge=lambda xs: (min(x[0] for x in xs), max(x[1] for x in xs)),
        )

    def _assert_summaries(self, tree):
        """Every internal aux must equal the true (min, max) of its subtree."""

        def check(page_id):
            node = tree.read_node(page_id)
            if node.is_leaf:
                if not node.keys:
                    return None
                return (min(node.keys), max(node.keys))
            result = None
            for child, aux in zip(node.children, node.aux):
                truth = check(child)
                if truth is not None:
                    assert aux == truth, f"stale aux {aux} != {truth}"
                    result = (
                        truth
                        if result is None
                        else (min(result[0], truth[0]), max(result[1], truth[1]))
                    )
            return result

        check(tree.root_page)

    def test_bulk_load_summaries(self):
        tree = BPlusTree(
            Pager(page_size=256), augmentation=self._minmax_augmentation()
        )
        tree.bulk_load([(k, k) for k in range(500)])
        self._assert_summaries(tree)

    def test_insert_maintains_summaries(self):
        tree = BPlusTree(
            Pager(page_size=256), augmentation=self._minmax_augmentation()
        )
        rng = random.Random(2)
        for _ in range(600):
            tree.insert(rng.randint(0, 10_000), 0)
        self._assert_summaries(tree)

    def test_delete_keeps_summaries_conservative(self):
        tree = BPlusTree(
            Pager(page_size=256), augmentation=self._minmax_augmentation()
        )
        keys = list(range(400))
        tree.bulk_load([(k, k) for k in keys])
        rng = random.Random(3)
        rng.shuffle(keys)
        for k in keys[:300]:
            tree.delete(k, k)

        # summaries must still *cover* the remaining keys (may be stale-wide)
        def check(page_id, keys_below):
            node = tree.read_node(page_id)
            if node.is_leaf:
                return list(node.keys)
            collected = []
            for child, aux in zip(node.children, node.aux):
                child_keys = check(child, keys_below)
                if child_keys and aux is not None:
                    assert aux[0] <= min(child_keys)
                    assert aux[1] >= max(child_keys)
                collected.extend(child_keys)
            return collected

        check(tree.root_page, None)


class TestPropertyBased:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["ins", "del"]), st.integers(0, 60)),
            max_size=300,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_sorted_list_model(self, ops):
        tree = make_tree(page_size=256)
        model: list[tuple[int, int]] = []
        serial = 0
        for op, key in ops:
            if op == "ins":
                tree.insert(key, serial)
                model.append((key, serial))
                serial += 1
            else:
                victims = [v for k, v in model if k == key]
                expected = bool(victims)
                got = tree.delete(key)
                assert got == expected
                if victims:
                    # the tree deletes the first stored duplicate; the model
                    # only tracks the multiset, so remove any one
                    removed = None
                    for i, (k, v) in enumerate(model):
                        if k == key:
                            removed = i
                            break
                    model.pop(removed)
        assert sorted(k for k, _ in model) == [k for k, _ in tree.items()]
        tree.check_invariants()
