"""Space-filling curves: bijectivity, locality, bounds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfc import HilbertCurve, ZOrderCurve


@pytest.mark.parametrize("curve_cls", [HilbertCurve, ZOrderCurve])
class TestCurveCommon:
    def test_full_bijection_small(self, curve_cls):
        curve = curve_cls(bits=3, dims=2)
        seen = set()
        for key in range(64):
            coords = curve.decode(key)
            assert curve.encode(coords) == key
            seen.add(coords)
        assert len(seen) == 64

    def test_out_of_range_coordinate(self, curve_cls):
        curve = curve_cls(bits=4, dims=2)
        with pytest.raises(ValueError):
            curve.encode((16, 0))
        with pytest.raises(ValueError):
            curve.encode((-1, 0))

    def test_out_of_range_key(self, curve_cls):
        curve = curve_cls(bits=2, dims=2)
        with pytest.raises(ValueError):
            curve.decode(16)
        with pytest.raises(ValueError):
            curve.decode(-1)

    def test_dimension_mismatch(self, curve_cls):
        curve = curve_cls(bits=4, dims=3)
        with pytest.raises(ValueError):
            curve.encode((1, 2))

    def test_invalid_parameters(self, curve_cls):
        with pytest.raises(ValueError):
            curve_cls(bits=0, dims=2)
        with pytest.raises(ValueError):
            curve_cls(bits=4, dims=0)

    def test_encode_many(self, curve_cls):
        curve = curve_cls(bits=4, dims=2)
        coords = np.array([[0, 0], [3, 7], [15, 15]])
        keys = curve.encode_many(coords)
        assert keys == [curve.encode(row) for row in coords]

    @given(data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_random(self, curve_cls, data):
        bits = data.draw(st.integers(1, 8))
        dims = data.draw(st.integers(1, 4))
        curve = curve_cls(bits=bits, dims=dims)
        key = data.draw(st.integers(0, curve.max_key))
        assert curve.encode(curve.decode(key)) == key


class TestHilbertLocality:
    def test_adjacent_keys_are_adjacent_cells(self):
        """Consecutive Hilbert keys differ by exactly one grid step."""
        curve = HilbertCurve(bits=4, dims=2)
        prev = np.asarray(curve.decode(0))
        for key in range(1, 256):
            cur = np.asarray(curve.decode(key))
            assert np.abs(cur - prev).sum() == 1
            prev = cur

    def test_hilbert_beats_zorder_on_mean_jump(self):
        """The SPB-tree's reason for Hilbert: smaller neighbour jumps."""
        h = HilbertCurve(bits=4, dims=2)
        z = ZOrderCurve(bits=4, dims=2)

        def mean_jump(curve):
            coords = [np.asarray(curve.decode(k)) for k in range(256)]
            return np.mean(
                [np.abs(coords[i + 1] - coords[i]).sum() for i in range(255)]
            )

        assert mean_jump(h) < mean_jump(z)

    def test_corner_cases(self):
        curve = HilbertCurve(bits=5, dims=3)
        assert curve.decode(0) is not None
        assert curve.encode(curve.decode(curve.max_key)) == curve.max_key
