"""Shared fixtures: small datasets, pivots, and index builders.

Index construction is the slow part of the suite, so built indexes are
cached per (dataset, index) in session scope; query tests share them.
Tests that mutate an index build their own copies.
"""

from __future__ import annotations

import pytest

from repro import (
    CostCounters,
    MetricSpace,
    make_color,
    make_la,
    make_synthetic,
    make_words,
    select_pivots,
)
from repro.bench.runner import build_index

N_SMALL = 400
N_PIVOTS = 4

DATASET_MAKERS = {
    "LA": lambda: make_la(N_SMALL, seed=11),
    "Words": lambda: make_words(N_SMALL, seed=11),
    "Color": lambda: make_color(200, seed=11),
    "Synthetic": lambda: make_synthetic(N_SMALL, seed=11),
}

# a radius with moderate selectivity per dataset family (pre-calibrated to
# keep fixtures deterministic and cheap)
RADIUS = {"LA": 900.0, "Words": 5.0, "Color": 9000.0, "Synthetic": 2500.0}

CONTINUOUS_INDEXES = (
    "AESA",
    "LAESA",
    "EPT",
    "EPT*",
    "CPT",
    "VPT",
    "MVPT",
    "PM-tree",
    "Omni-seq",
    "OmniB+",
    "OmniR-tree",
    "M-index",
    "M-index*",
    "SPB-tree",
)
DISCRETE_ONLY_INDEXES = ("BKT", "FQT", "FQA")
DISCRETE_DATASETS = ("Words", "Synthetic")


def indexes_for(dataset_name: str) -> tuple[str, ...]:
    """Index names applicable to a dataset (paper Tables 4/6 blanks)."""
    if dataset_name in DISCRETE_DATASETS:
        return CONTINUOUS_INDEXES + DISCRETE_ONLY_INDEXES
    return CONTINUOUS_INDEXES


@pytest.fixture(scope="session")
def datasets():
    return {name: maker() for name, maker in DATASET_MAKERS.items()}


@pytest.fixture(scope="session")
def pivots(datasets):
    out = {}
    for name, dataset in datasets.items():
        out[name] = select_pivots(
            MetricSpace(dataset), N_PIVOTS, strategy="hfi", seed=3
        )
    return out


@pytest.fixture(scope="session")
def built_indexes(datasets, pivots):
    """Lazy cache of built indexes: call with (dataset_name, index_name)."""
    cache: dict[tuple[str, str], object] = {}

    def get(dataset_name: str, index_name: str):
        key = (dataset_name, index_name)
        if key not in cache:
            space = MetricSpace(datasets[dataset_name], CostCounters())
            cache[key] = build_index(
                index_name,
                space,
                pivots[dataset_name],
                workload_name=dataset_name,
                seed=5,
                **({"maxnum": 64} if index_name in ("M-index", "M-index*") else {}),
            )
        return cache[key]

    return get


def fresh_index(datasets, pivots, dataset_name: str, index_name: str):
    """A brand-new index instance for mutation tests."""
    space = MetricSpace(datasets[dataset_name], CostCounters())
    kwargs = {"maxnum": 64} if index_name in ("M-index", "M-index*") else {}
    return build_index(
        index_name,
        space,
        pivots[dataset_name],
        workload_name=dataset_name,
        seed=5,
        **kwargs,
    )
