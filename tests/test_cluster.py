"""Multi-process cluster layer: split snapshots, router, supervisor.

Covers the tentpole contracts:

* ``ShardedIndex.split()`` parts answer in global ids and reassemble via
  ``merge`` / the static merge helpers bit-for-bit;
* ``save_split`` / ``load_cluster_manifest`` / ``split_snapshot`` write
  and validate the per-shard snapshot set ``repro cluster`` consumes;
* shard-mode scatter-gather answers are bit-for-bit the single-process
  ``ShardedIndex`` answers for MRQ and MkNNQ, over both wire codecs;
* replica mode load-balances least-in-flight, survives a backend killed
  mid-burst (answers stay exact, the dead backend is marked down, a
  restart on the same port is marked back up);
* a dead shard is a clear 503 naming the missing shard id;
* rolling ``POST /admin/reload`` swaps every backend with zero downtime
  for concurrent readers;
* bearer-token auth guards mutation/admin paths at the router edge and
  is forwarded to the backends;
* ``ClusterSupervisor`` spawns real backend processes from a split
  snapshot set and drains them cleanly.
"""

from __future__ import annotations

import json
import threading

import pytest

from conftest import RADIUS
from repro import (
    CostCounters,
    MetricSpace,
    QueryService,
    save_index,
    select_pivots,
)
from repro.cli import main
from repro.core.sharded import ShardedIndex
from repro.service.cluster import (
    ClusterError,
    ClusterRouter,
    ClusterSupervisor,
    load_cluster_manifest,
    save_split,
    split_snapshot,
)
from repro.service.http import HttpQueryServer, ServiceClient, ServiceClientError
from repro.tables import LAESA

K = 5
N_SHARDS = 3


def _build_shard(space):
    return LAESA.build(space, select_pivots(space, 3, strategy="hfi", seed=0))


def _sharded_words(datasets, n=200, n_shards=N_SHARDS):
    dataset = datasets["Words"].subset(range(n))
    space = MetricSpace(dataset, CostCounters())
    return dataset, ShardedIndex.build(space, _build_shard, n_shards=n_shards, seed=1)


def _serve(index, port=0, **service_kwargs):
    service = QueryService(index, cache_size=0, use_dispatcher=False, **service_kwargs)
    return HttpQueryServer(service, port=port).start()


@pytest.fixture
def shard_cluster(datasets):
    """3 shard backends behind a shard-mode router (prober off: tests
    drive membership with ``probe_now`` so nothing is timing-dependent)."""
    dataset, sharded = _sharded_words(datasets)
    backends = [_serve(part) for part in sharded.split()]
    router = ClusterRouter(
        backends=[(b.host, b.port) for b in backends],
        mode="shard",
        probe_interval_s=0,
    ).start()
    yield dataset, sharded, backends, router
    router.close()
    for backend in backends:
        backend.close()


@pytest.fixture
def replica_cluster(datasets):
    """2 full replicas (independent index instances) behind a replica router."""
    dataset = datasets["Words"].subset(range(150))
    indexes = [
        _build_shard(MetricSpace(dataset.subset(range(len(dataset))), CostCounters()))
        for _ in range(2)
    ]
    backends = [_serve(index) for index in indexes]
    router = ClusterRouter(
        backends=[(b.host, b.port) for b in backends],
        mode="replica",
        probe_interval_s=0,
    ).start()
    yield dataset, indexes, backends, router
    router.close()
    for backend in backends:
        backend.close()


# ---------------------------------------------------------------------------
# split / merge / manifests
# ---------------------------------------------------------------------------


def test_split_parts_answer_global_ids_and_merge_roundtrip(datasets):
    dataset, sharded = _sharded_words(datasets)
    radius = RADIUS["Words"]
    queries = [dataset[i] for i in range(6)]
    parts = sharded.split()
    assert len(parts) == N_SHARDS
    for q in queries:
        per_part_range = [part.range_query(q, radius) for part in parts]
        assert ShardedIndex.merge_range_answers(per_part_range) == (
            sharded.range_query(q, radius)
        )
        per_part_knn = [part.knn_query(q, K) for part in parts]
        assert ShardedIndex.merge_knn_answers(per_part_knn, K) == (
            sharded.knn_query(q, K)
        )
    merged = ShardedIndex.merge(sharded.space, parts)
    assert merged.range_query_many(queries, radius) == (
        sharded.range_query_many(queries, radius)
    )
    assert merged.knn_query_many(queries, K) == sharded.knn_query_many(queries, K)


def test_merge_rejects_non_covering_parts(datasets):
    _, sharded = _sharded_words(datasets)
    parts = sharded.split()
    with pytest.raises(ValueError, match="disjointly cover"):
        ShardedIndex.merge(sharded.space, parts[:-1])  # one shard missing
    with pytest.raises(ValueError, match="disjointly cover"):
        ShardedIndex.merge(sharded.space, parts + parts[:1])  # duplicated ids


def test_save_split_writes_per_shard_snapshots_and_manifest(datasets, tmp_path):
    dataset, sharded = _sharded_words(datasets)
    manifest_path = save_split(sharded, tmp_path / "words.snap")
    assert manifest_path == tmp_path / "words.cluster.json"
    manifest = load_cluster_manifest(manifest_path)
    assert manifest["kind"] == "repro-cluster"
    assert manifest["n_objects"] == len(dataset)
    assert len(manifest["shards"]) == N_SHARDS
    assert sum(s["objects"] for s in manifest["shards"]) == len(dataset)
    # the resolved per-shard snapshots restore parts that reproduce the
    # single-process answers through the shared merge helpers
    from repro import load_index

    parts = [load_index(s["snapshot"]) for s in manifest["shards"]]
    q, radius = dataset[0], RADIUS["Words"]
    assert ShardedIndex.merge_range_answers(
        [p.range_query(q, radius) for p in parts]
    ) == sharded.range_query(q, radius)
    assert ShardedIndex.merge_knn_answers(
        [p.knn_query(q, K) for p in parts], K
    ) == sharded.knn_query(q, K)


def test_split_snapshot_roundtrip_and_rejections(datasets, tmp_path):
    dataset, sharded = _sharded_words(datasets, n=120)
    whole = tmp_path / "whole.snap"
    save_index(sharded, whole)
    manifest_path = split_snapshot(whole, tmp_path / "split" / "words.snap")
    assert load_cluster_manifest(manifest_path)["index"] == sharded.name

    # a non-sharded snapshot cannot be split
    flat = tmp_path / "flat.snap"
    save_index(_build_shard(MetricSpace(dataset, CostCounters())), flat)
    with pytest.raises(ClusterError, match="ShardedIndex"):
        split_snapshot(flat, tmp_path / "nope.snap")
    # save_split checks its input type too
    with pytest.raises(ClusterError, match="ShardedIndex"):
        save_split(object(), tmp_path / "nope.snap")


def test_load_cluster_manifest_rejects_bad_files(tmp_path):
    missing = tmp_path / "missing.cluster.json"
    with pytest.raises(ClusterError, match="cannot read"):
        load_cluster_manifest(missing)
    junk = tmp_path / "junk.cluster.json"
    junk.write_text("{not json")
    with pytest.raises(ClusterError, match="cannot read"):
        load_cluster_manifest(junk)
    wrong_kind = tmp_path / "other.cluster.json"
    wrong_kind.write_text(json.dumps({"kind": "something-else"}))
    with pytest.raises(ClusterError, match="not a repro cluster manifest"):
        load_cluster_manifest(wrong_kind)
    dangling = tmp_path / "dangling.cluster.json"
    dangling.write_text(
        json.dumps(
            {"kind": "repro-cluster", "shards": [{"snapshot": "nowhere.snap"}]}
        )
    )
    with pytest.raises(ClusterError, match="missing shard snapshot"):
        load_cluster_manifest(dangling)


# ---------------------------------------------------------------------------
# shard mode: scatter-gather exactness
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("binary", [False, True], ids=["json", "binary"])
def test_shard_router_bit_for_bit_vs_sharded_index(shard_cluster, binary):
    dataset, sharded, backends, router = shard_cluster
    radius = RADIUS["Words"]
    queries = [dataset[i] for i in range(8)]
    want_range = sharded.range_query_many(queries, radius)
    want_knn = sharded.knn_query_many(queries, K)
    with ServiceClient(router.host, router.port, binary=binary) as client:
        assert client.range_query_many(queries, radius) == want_range
        assert client.knn_query_many(queries, K) == want_knn
        assert client.range_query(queries[0], radius) == want_range[0]
        assert client.knn_query(queries[0], K) == want_knn[0]
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["role"] == "router"
        assert health["live_backends"] == list(range(N_SHARDS))


def test_shard_router_rejects_bad_requests(shard_cluster):
    dataset, sharded, backends, router = shard_cluster
    with ServiceClient(router.host, router.port) as client:
        with pytest.raises(ServiceClientError, match="404"):
            client._request("POST", "/no/such", {})
        with pytest.raises(ServiceClientError, match="400"):
            client.knn_query(dataset[0], 0)
        with pytest.raises(ServiceClientError, match="400"):
            client._request("POST", "/range", {"radius": 2.0})  # no query


def test_shard_mode_mutations_are_501(shard_cluster):
    dataset, sharded, backends, router = shard_cluster
    with ServiceClient(router.host, router.port) as client:
        for call in (lambda: client.insert(dataset[0]), lambda: client.delete(3)):
            with pytest.raises(ServiceClientError) as excinfo:
                call()
            assert excinfo.value.status == 501


def test_dead_shard_is_clear_503_then_recovers(shard_cluster):
    dataset, sharded, backends, router = shard_cluster
    radius = RADIUS["Words"]
    q = dataset[0]
    expected = sharded.range_query(q, radius)
    victim_port = backends[1].port
    victim_part = backends[1].service.index
    with ServiceClient(router.host, router.port) as client:
        assert client.range_query(q, radius) == expected
        backends[1].close()
        router.probe_now()
        with pytest.raises(ServiceClientError) as excinfo:
            client.range_query(q, radius)
        assert excinfo.value.status == 503
        assert "1" in str(excinfo.value)  # the missing shard is named
        health = client.healthz()
        assert health["status"] == "degraded"
        assert health["live_backends"] == [0, 2]
        # restart the shard on the same port: the next probe readmits it
        backends[1] = _serve(victim_part, port=victim_port)
        router.probe_now()
        assert client.healthz()["status"] == "ok"
        assert client.range_query(q, radius) == expected


# ---------------------------------------------------------------------------
# replica mode: balancing + failover
# ---------------------------------------------------------------------------


def test_replica_router_balances_and_matches(replica_cluster):
    dataset, indexes, backends, router = replica_cluster
    radius = RADIUS["Words"]
    queries = [dataset[i] for i in range(8)]
    want = indexes[0].range_query_many(queries, radius)
    want_knn = indexes[0].knn_query_many(queries, K)
    with ServiceClient(router.host, router.port, binary=True) as client:
        for _ in range(4):
            assert client.range_query_many(queries, radius) == want
        assert client.knn_query_many(queries, K) == want_knn
        served = [b["served"] for b in client.stats()["backends"]]
        assert all(s > 0 for s in served), served  # both replicas took traffic


def test_replica_failover_kill_mid_burst_then_rejoin(replica_cluster):
    dataset, indexes, backends, router = replica_cluster
    radius = RADIUS["Words"]
    queries = [dataset[i] for i in range(8)]
    expected = [indexes[0].range_query(q, radius) for q in queries]
    victim_port = backends[0].port
    victim_index = backends[0].service.index
    with ServiceClient(router.host, router.port) as client:
        assert client.range_query(queries[0], radius) == expected[0]
        # kill one replica mid-burst: every answer stays bit-for-bit (the
        # router retries the idempotent query on the surviving replica)
        backends[0].close()
        for i, q in enumerate(queries * 3):
            assert client.range_query(q, radius) == expected[i % len(queries)]
        router.probe_now()
        health = client.healthz()
        assert health["status"] == "ok"  # degraded capacity, still serving
        assert health["live_backends"] == [1]
        stats = client.stats()
        dead = next(b for b in stats["backends"] if b["backend"] == 0)
        assert dead["up"] is False and dead["markdowns"] >= 1
        # restart on the same port: the probe marks it back up and it
        # serves again
        backends[0] = _serve(victim_index, port=victim_port)
        router.probe_now()
        assert client.healthz()["live_backends"] == [0, 1]
        for _ in range(6):
            assert client.range_query(queries[0], radius) == expected[0]
        served = [b["served"] for b in client.stats()["backends"]]
        assert all(s > 0 for s in served), served


def test_all_replicas_down_is_503(replica_cluster):
    dataset, indexes, backends, router = replica_cluster
    for backend in backends:
        backend.close()
    router.probe_now()
    with ServiceClient(router.host, router.port) as client:
        assert client.healthz()["status"] == "unavailable"
        with pytest.raises(ServiceClientError) as excinfo:
            client.range_query(dataset[0], RADIUS["Words"])
        assert excinfo.value.status == 503


def test_replica_mutations_fan_out_to_all(replica_cluster):
    dataset, indexes, backends, router = replica_cluster
    radius = RADIUS["Words"]
    victim = 3
    q = dataset[victim]  # distance 0 to itself: victim is in its own ball
    with ServiceClient(router.host, router.port) as client:
        # auto-assigned ids would diverge across replicas: explicit id only
        with pytest.raises(ServiceClientError) as excinfo:
            client.insert(q)
        assert excinfo.value.status == 400
        # the paper's update pattern, fanned out: delete then re-register
        # under the same slot, visible on *every* replica at each step
        client.delete(victim)
        for backend in backends:
            with ServiceClient(backend.host, backend.port) as direct:
                assert victim not in direct.range_query(q, radius)
        assert client.insert(q, object_id=victim) == victim
        for backend in backends:
            with ServiceClient(backend.host, backend.port) as direct:
                assert victim in direct.range_query(q, radius)
        # a mutation with a replica down would fork the set: refused
        backends[1].close()
        router.probe_now()
        with pytest.raises(ServiceClientError) as excinfo:
            client.delete(victim)
        assert excinfo.value.status == 503
        assert "replica" in str(excinfo.value)


# ---------------------------------------------------------------------------
# rolling reload
# ---------------------------------------------------------------------------


def test_rolling_reload_zero_downtime(datasets, tmp_path):
    """Swap both replicas to a larger snapshot while readers hammer the
    router: no reader ever sees an error, and afterwards every answer is
    the new snapshot's."""
    small = datasets["Words"].subset(range(80))
    large = datasets["Words"].subset(range(200))
    index_small = _build_shard(MetricSpace(small, CostCounters()))
    index_large = _build_shard(MetricSpace(large, CostCounters()))
    path_small = tmp_path / "small.snap"
    path_large = tmp_path / "large.snap"
    save_index(index_small, path_small)
    save_index(index_large, path_large)
    radius = RADIUS["Words"]
    q = small[0]
    before = index_small.range_query(q, radius)
    after = index_large.range_query(q, radius)
    assert before != after, "fixture subsets too similar to distinguish"

    backends = [
        HttpQueryServer(
            QueryService.from_snapshot(path_small, cache_size=0, use_dispatcher=False)
        ).start()
        for _ in range(2)
    ]
    router = ClusterRouter(
        backends=[(b.host, b.port) for b in backends],
        mode="replica",
        probe_interval_s=0,
    ).start()
    try:
        errors: list[Exception] = []
        stop = threading.Event()

        def hammer():
            with ServiceClient(router.host, router.port) as c:
                while not stop.is_set():
                    try:
                        answer = c.range_query(q, radius)
                    except Exception as exc:  # any error = downtime
                        errors.append(exc)
                        return
                    assert answer in (before, after)

        readers = [threading.Thread(target=hammer) for _ in range(2)]
        for t in readers:
            t.start()
        with ServiceClient(router.host, router.port) as client:
            out = client.reload(path_large)
            assert [r["backend"] for r in out["reloaded"]] == [0, 1]
            assert all(r["objects"] == 200 for r in out["reloaded"])
            stop.set()
            for t in readers:
                t.join(timeout=20)
            assert not errors, errors
            assert client.range_query(q, radius) == after
            assert client.healthz()["live_backends"] == [0, 1]
    finally:
        stop.set()
        router.close()
        for backend in backends:
            backend.close()


# ---------------------------------------------------------------------------
# auth: router edge + end-to-end forwarding
# ---------------------------------------------------------------------------


def test_router_auth_guards_edge_and_forwards_to_backends(datasets):
    dataset = datasets["Words"].subset(range(100))
    token = "cluster-secret"
    indexes = [
        _build_shard(MetricSpace(dataset.subset(range(len(dataset))), CostCounters()))
        for _ in range(2)
    ]
    backends = [
        HttpQueryServer(
            QueryService(index, cache_size=0, use_dispatcher=False), auth_token=token
        ).start()
        for index in indexes
    ]
    router = ClusterRouter(
        backends=[(b.host, b.port) for b in backends],
        mode="replica",
        probe_interval_s=0,
        auth_token=token,
    ).start()
    try:
        radius = RADIUS["Words"]
        victim = 0
        q = dataset[victim]
        with ServiceClient(router.host, router.port) as anon:
            # queries and observability stay open without credentials
            assert anon.range_query(q, radius) == indexes[0].range_query(q, radius)
            assert anon.healthz()["status"] == "ok"
            # mutations are refused at the router's edge
            with pytest.raises(ServiceClientError) as excinfo:
                anon.delete(victim)
            assert excinfo.value.status == 401
        with ServiceClient(router.host, router.port, auth_token="wrong") as bad:
            with pytest.raises(ServiceClientError) as excinfo:
                bad.delete(victim)
            assert excinfo.value.status == 401
        with ServiceClient(router.host, router.port, auth_token=token) as ok:
            # the credential is forwarded, so the token-guarded *backends*
            # accept the fanned-out mutation too
            ok.delete(victim)
            assert victim not in ok.range_query(q, radius)
            assert ok.insert(q, object_id=victim) == victim
            assert victim in ok.range_query(q, radius)
    finally:
        router.close()
        for backend in backends:
            backend.close()


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------


def test_router_stats_shape_and_metrics(datasets):
    from repro.obs.metrics import MetricsRegistry

    dataset, sharded = _sharded_words(datasets, n=120)
    registry = MetricsRegistry()
    backends = [_serve(part) for part in sharded.split()]
    router = ClusterRouter(
        backends=[(b.host, b.port) for b in backends],
        mode="shard",
        probe_interval_s=0,
        metrics=registry,
    ).start()
    try:
        with ServiceClient(router.host, router.port) as client:
            client.range_query(dataset[0], RADIUS["Words"])
            stats = client.stats()
            assert stats["role"] == "router" and stats["mode"] == "shard"
            assert stats["http"]["served"] >= 1
            for row in stats["backends"]:
                assert set(row) >= {
                    "backend",
                    "address",
                    "up",
                    "inflight",
                    "served",
                    "markdowns",
                    "connections_opened",
                    "retries",
                    "pooled",
                }
                assert row["up"] is True and row["served"] >= 1
        rendered = registry.render()
        assert "repro_router_fanout_ms" in rendered
        assert "repro_router_backend_up" in rendered
    finally:
        router.close()
        for backend in backends:
            backend.close()


def test_router_rejects_bad_topologies():
    with pytest.raises(ClusterError, match="at least one backend"):
        ClusterRouter(backends=[])
    with pytest.raises(ClusterError, match="mode"):
        ClusterRouter(backends=[("127.0.0.1", 1)], mode="quorum")
    with pytest.raises(ClusterError, match="host:port"):
        ClusterRouter(backends=["not-an-address"])


# ---------------------------------------------------------------------------
# the supervisor + CLI front door
# ---------------------------------------------------------------------------


def test_cli_snapshot_split_verify(tmp_path):
    """`repro snapshot --split N --verify` writes the manifest set and its
    self-check passes."""
    out = tmp_path / "words.snap"
    assert (
        main(
            [
                "snapshot",
                "--dataset",
                "Words",
                "--n",
                "120",
                "--index",
                "LAESA",
                "--pivots",
                "3",
                "--out",
                str(out),
                "--split",
                "2",
                "--verify",
            ]
        )
        == 0
    )
    manifest = load_cluster_manifest(tmp_path / "words.cluster.json")
    assert len(manifest["shards"]) == 2
    assert manifest["n_objects"] == 120


def test_supervisor_spawns_real_backends_and_drains(datasets, tmp_path):
    """End to end minus the CLI loop: split snapshots -> ClusterSupervisor
    spawns `repro serve` children -> routed answers are bit-for-bit ->
    close() drains everything."""
    dataset, sharded = _sharded_words(datasets, n=150, n_shards=2)
    manifest_path = save_split(sharded, tmp_path / "words.snap")
    manifest = load_cluster_manifest(manifest_path)
    radius = RADIUS["Words"]
    queries = [dataset[i] for i in range(4)]
    want_range = sharded.range_query_many(queries, radius)
    want_knn = sharded.knn_query_many(queries, K)

    supervisor = ClusterSupervisor(
        snapshots=[s["snapshot"] for s in manifest["shards"]],
        mode="shard",
        probe_interval_s=0,
        startup_timeout_s=120.0,
    )
    with supervisor:
        router = supervisor.router
        assert supervisor.poll() == []  # all children alive
        assert len(supervisor.backend_ports) == 2
        with ServiceClient(router.host, router.port, binary=True) as client:
            assert client.healthz()["status"] == "ok"
            assert client.range_query_many(queries, radius) == want_range
            assert client.knn_query_many(queries, K) == want_knn
    assert supervisor.router is None  # drained
    assert supervisor.poll() == []  # children list cleared


def test_supervisor_rejects_missing_snapshots(tmp_path):
    with pytest.raises(ClusterError, match="does not exist"):
        ClusterSupervisor(snapshots=[str(tmp_path / "missing.snap")])
    with pytest.raises(ClusterError, match="at least one backend"):
        ClusterSupervisor(snapshots=[])
